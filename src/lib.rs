//! Umbrella crate for the `secflow` workspace: re-exports every layer so the
//! examples and integration tests can use one import root.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! experiment index.

pub use oodb_engine as engine;
pub use oodb_lang as lang;
pub use oodb_model as model;
pub use secflow as analysis;
pub use secflow_dynamic as dynamic;
pub use secflow_workloads as workloads;
