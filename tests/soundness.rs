//! Differential soundness (experiment E3 in miniature): across a seeded
//! corpus of random policies, every capability the bounded concrete
//! attacker realises must have been flagged by `A(R)` — Theorem 1.
//!
//! Plus mutation testing of the certifying proof checker: corrupting any
//! recorded derivation must make [`Closure::certify`] fail with a
//! structured [`CheckError`] naming the bad step — no corruption may slip
//! through as a valid certificate.

use secflow::checker::CheckError;
use secflow::closure::Closure;
use secflow::rules::RuleConfig;
use secflow::term::Term;
use secflow::unfold::NProgram;
use secflow_dynamic::differential::{classify, DiffOutcome, DiffReport};
use secflow_dynamic::strategy::StrategySpec;
use secflow_dynamic::AttackerConfig;
use secflow_workloads::random::{random_case, RandomSpec};

fn config() -> AttackerConfig {
    AttackerConfig {
        strategies: StrategySpec {
            max_steps: 2,
            max_assignments: 2048,
            max_shapes: 64,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    }
}

#[test]
fn no_dynamic_only_cases_in_corpus() {
    let spec = RandomSpec::default();
    let cfg = config();
    let mut report = DiffReport::default();
    for seed in 0..120u64 {
        let case = random_case(seed, &spec);
        for req in &case.requirements {
            let res = classify(&case.schema, req, &cfg);
            if let Ok(c) = &res {
                assert_ne!(
                    c.outcome,
                    DiffOutcome::DynamicOnly,
                    "SOUNDNESS VIOLATION seed {seed}: {} ({:?})",
                    c.requirement,
                    c.witness
                );
            }
            report.record(res);
        }
    }
    // The corpus must be non-trivial: some true positives and some
    // negatives, or the test proves nothing.
    assert!(report.both > 0, "corpus has no realised flaws: {report}");
    assert!(report.neither > 0, "corpus has no safe cases: {report}");
    assert!(report.is_sound());
}

/// The paper's stockbroker fixture, unfolded for the flawed clerk.
fn clerk_program() -> NProgram {
    let schema = oodb_lang::parse_schema(
        r#"
        class Broker { name: string, salary: int, budget: int, profit: int }
        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }
        user clerk { checkBudget, w_budget }
        "#,
    )
    .unwrap();
    oodb_lang::check_schema(&schema).unwrap();
    let caps = schema.user_str("clerk").unwrap();
    NProgram::unfold(&schema, caps).unwrap()
}

/// Mutation sweep: for *every* term of the closure, corrupt its derivation
/// by making the term its own (only) premise. No rule of Table 2 admits
/// its conclusion among the premises in that slot, so each mutant must be
/// rejected — as a malformed step or, if the shape happens to fit, as a
/// proof cycle. The original derivation is restored before the next mutant
/// so exactly one corruption is live at a time.
#[test]
fn every_corrupted_derivation_is_rejected() {
    let prog = clerk_program();
    let cfg = RuleConfig::default();
    let mut closure = Closure::compute(&prog).unwrap();
    closure
        .certify(&prog, &cfg)
        .expect("pristine closure certifies");
    let terms: Vec<Term> = closure.iter().collect();
    assert!(!terms.is_empty());
    for t in &terms {
        let orig = closure.proof(t).expect("every term has a proof").clone();
        assert!(closure.replace_proof(t, orig.rule, vec![*t]));
        let err = closure
            .certify(&prog, &cfg)
            .expect_err(&format!("self-premise mutant of {t} certified"));
        match &err {
            CheckError::BadStep { term, .. } => assert_eq!(term, t, "wrong step blamed"),
            CheckError::Cyclic { .. } => {}
            other => panic!("mutant of {t}: unexpected error class {other}"),
        }
        assert!(closure.replace_proof(t, orig.rule, orig.premises.clone()));
    }
    // All mutants restored: the closure certifies again.
    closure
        .certify(&prog, &cfg)
        .expect("restored closure certifies");
}

/// Targeted corruptions hit each structured error class by name.
#[test]
fn corruption_classes_map_to_structured_errors() {
    let prog = clerk_program();
    let cfg = RuleConfig::default();

    // A derived (non-axiom) term relabelled as an axiom: BadStep naming it.
    let mut c = Closure::compute(&prog).unwrap();
    let derived = c
        .iter()
        .find(|t| !c.proof(t).unwrap().premises.is_empty() || matches!(t, Term::Pa(_)))
        .expect("closure has a derived term");
    assert!(c.replace_proof(&derived, "axiom", vec![]));
    match c.certify(&prog, &cfg).unwrap_err() {
        CheckError::BadStep { term, .. } => assert_eq!(term, derived),
        other => panic!("expected BadStep, got {other}"),
    }

    // A premise outside the closure: DanglingPremise naming both terms.
    let mut c = Closure::compute(&prog).unwrap();
    let ghost = Term::Ta(9_999);
    assert!(!c.contains(&ghost));
    let victim = c.iter().next().unwrap();
    let rule = c.proof(&victim).unwrap().rule;
    assert!(c.replace_proof(&victim, rule, vec![ghost]));
    match c.certify(&prog, &cfg).unwrap_err() {
        CheckError::DanglingPremise { term, premise } => {
            assert_eq!(term, victim);
            assert_eq!(premise, ghost);
        }
        other => panic!("expected DanglingPremise, got {other}"),
    }

    // A two-term proof cycle between equal-shaped steps: Cyclic (or the
    // step check fires first — either way certification fails).
    let mut c = Closure::compute(&prog).unwrap();
    let eqs: Vec<Term> = c
        .iter()
        .filter(|t| matches!(t, Term::Eq(_, _)))
        .take(2)
        .collect();
    if let [a, b] = eqs[..] {
        let (ra, rb) = (c.proof(&a).unwrap().rule, c.proof(&b).unwrap().rule);
        assert!(c.replace_proof(&a, ra, vec![b]));
        assert!(c.replace_proof(&b, rb, vec![a]));
        assert!(
            c.certify(&prog, &cfg).is_err(),
            "cyclic proof pair certified"
        );
    }
}

#[test]
fn deeper_probes_stay_sound_on_small_corpus() {
    let spec = RandomSpec {
        attrs: 2,
        functions: 2,
        depth: 1,
        ..RandomSpec::default()
    };
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: 3,
            max_assignments: 4096,
            max_shapes: 128,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };
    for seed in 1000..1020u64 {
        let case = random_case(seed, &spec);
        for req in &case.requirements {
            if let Ok(c) = classify(&case.schema, req, &cfg) {
                assert_ne!(
                    c.outcome,
                    DiffOutcome::DynamicOnly,
                    "seed {seed}: {} ({:?})",
                    c.requirement,
                    c.witness
                );
            }
        }
    }
}
