//! Differential soundness (experiment E3 in miniature): across a seeded
//! corpus of random policies, every capability the bounded concrete
//! attacker realises must have been flagged by `A(R)` — Theorem 1.

use secflow_dynamic::differential::{classify, DiffOutcome, DiffReport};
use secflow_dynamic::strategy::StrategySpec;
use secflow_dynamic::AttackerConfig;
use secflow_workloads::random::{random_case, RandomSpec};

fn config() -> AttackerConfig {
    AttackerConfig {
        strategies: StrategySpec {
            max_steps: 2,
            max_assignments: 2048,
            max_shapes: 64,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    }
}

#[test]
fn no_dynamic_only_cases_in_corpus() {
    let spec = RandomSpec::default();
    let cfg = config();
    let mut report = DiffReport::default();
    for seed in 0..120u64 {
        let case = random_case(seed, &spec);
        for req in &case.requirements {
            let res = classify(&case.schema, req, &cfg);
            if let Ok(c) = &res {
                assert_ne!(
                    c.outcome,
                    DiffOutcome::DynamicOnly,
                    "SOUNDNESS VIOLATION seed {seed}: {} ({:?})",
                    c.requirement,
                    c.witness
                );
            }
            report.record(res);
        }
    }
    // The corpus must be non-trivial: some true positives and some
    // negatives, or the test proves nothing.
    assert!(report.both > 0, "corpus has no realised flaws: {report}");
    assert!(report.neither > 0, "corpus has no safe cases: {report}");
    assert!(report.is_sound());
}

#[test]
fn deeper_probes_stay_sound_on_small_corpus() {
    let spec = RandomSpec {
        attrs: 2,
        functions: 2,
        depth: 1,
        ..RandomSpec::default()
    };
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: 3,
            max_assignments: 4096,
            max_shapes: 128,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };
    for seed in 1000..1020u64 {
        let case = random_case(seed, &spec);
        for req in &case.requirements {
            if let Ok(c) = classify(&case.schema, req, &cfg) {
                assert_ne!(
                    c.outcome,
                    DiffOutcome::DynamicOnly,
                    "seed {seed}: {} ({:?})",
                    c.requirement,
                    c.witness
                );
            }
        }
    }
}
