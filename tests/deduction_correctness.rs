//! Deduction correctness: whatever the dynamic inference engines claim to
//! know must be *true* — the actual execution values always lie inside the
//! deduced candidate sets, and a `ti` claim always names the actual value.
//!
//! This is the semantic counterpart of the paper's Definitions 4/5: the
//! engines may under-deduce (they are bounded) but must never mis-deduce.

use oodb_model::Value;
use proptest::prelude::*;
use secflow::unfold::NProgram;
use secflow_dynamic::eval::eval_outer;
use secflow_dynamic::idealized::{infer_idealized, IDom};
use secflow_dynamic::infer::{infer, Probe};
use secflow_dynamic::worlds::{enumerate_worlds, WorldSpec};
use secflow_workloads::random::{random_case, RandomSpec};

/// Build deterministic probes for a case: every outer invoked once or
/// twice with argument values drawn from the seed.
fn probes_for(prog: &NProgram, world: &oodb_engine::Database, seed: u64) -> Vec<Probe> {
    let mut probes = Vec::new();
    let n = prog.outers.len();
    for step in 0..(2 * n).min(4) {
        let outer_idx = (seed as usize + step) % n;
        let outer = &prog.outers[outer_idx];
        let args: Vec<Value> = outer
            .params
            .iter()
            .enumerate()
            .map(|(i, (_, ty))| match ty {
                t if t.is_basic() => match t {
                    oodb_model::Type::Basic(oodb_model::BasicType::Int) => {
                        Value::Int(((seed as i64) + step as i64 + i as i64) % 3)
                    }
                    oodb_model::Type::Basic(oodb_model::BasicType::Bool) => {
                        Value::Bool((seed + step as u64 + i as u64).is_multiple_of(2))
                    }
                    _ => Value::str("s"),
                },
                oodb_model::Type::Class(c) => world
                    .extent(c)
                    .first()
                    .copied()
                    .map(Value::Obj)
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            })
            .collect();
        probes.push(Probe {
            outer: outer_idx,
            args,
        });
    }
    probes
}

/// The actual per-step site values of the instance.
fn actual_sites(
    prog: &NProgram,
    probes: &[Probe],
    world: &oodb_engine::Database,
) -> Vec<Option<std::collections::HashMap<u32, Value>>> {
    let mut db = world.clone();
    probes
        .iter()
        .map(|p| {
            eval_outer(&mut db, prog, p.outer, &p.args)
                .ok()
                .map(|(_, s)| s)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The finite I(E) engine never excludes the true value.
    #[test]
    fn finite_ie_is_truthful(seed in 0u64..3000) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let worlds = enumerate_worlds(&case.schema, &WorldSpec::default()).unwrap();
        let world = &worlds[(seed as usize) % worlds.len()];
        let probes = probes_for(&prog, world, seed);
        let actual = actual_sites(&prog, &probes, world);

        let d = infer(&prog, &probes, world, &worlds);
        for (t, step) in actual.iter().enumerate() {
            let Some(sites) = step else { continue };
            for (e, v) in sites {
                if let Some(c) = d.candidates((t, *e)) {
                    prop_assert!(
                        c.contains(v),
                        "I(E) excluded the true value {v} of site ({t},{e}): {c:?}"
                    );
                }
                if d.is_total((t, *e)) {
                    prop_assert_eq!(d.value((t, *e)), Some(v));
                }
            }
        }
    }

    /// The idealized engine never excludes the true value either — its
    /// half-planes and finite sets always contain the actual execution.
    #[test]
    fn idealized_is_truthful(seed in 0u64..3000) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let worlds = enumerate_worlds(&case.schema, &WorldSpec::default()).unwrap();
        let world = &worlds[(seed as usize) % worlds.len()];
        let probes = probes_for(&prog, world, seed);
        let actual = actual_sites(&prog, &probes, world);

        let d = infer_idealized(&prog, &probes, world);
        for (t, step) in actual.iter().enumerate() {
            let Some(sites) = step else { continue };
            for (e, v) in sites {
                let Some(dom) = d.domain((t, *e)) else { continue };
                match (dom, v) {
                    (IDom::Int(z), Value::Int(i)) => {
                        prop_assert!(
                            !z.excludes(*i),
                            "idealized excluded true value {i} at ({t},{e}): {z:?}"
                        );
                    }
                    (IDom::Vals(s), other) => {
                        prop_assert!(
                            s.contains(other),
                            "idealized excluded true value {other} at ({t},{e}): {s:?}"
                        );
                    }
                    (IDom::Top, _) => {}
                    // Type mismatch between abstract domain and value would
                    // itself be a bug.
                    (IDom::Int(_), other) => {
                        prop_assert!(false, "int domain for non-int value {other}");
                    }
                }
            }
        }
    }

    /// The finite engine is at least as strong as the idealized one on
    /// totals (it knows the bounded world priors), never weaker the other
    /// way: anything the idealized engine pins, the finite engine pins too.
    #[test]
    fn idealized_totals_are_a_subset(seed in 0u64..1500) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let worlds = enumerate_worlds(&case.schema, &WorldSpec::default()).unwrap();
        let world = &worlds[(seed as usize) % worlds.len()];
        let probes = probes_for(&prog, world, seed);
        let actual = actual_sites(&prog, &probes, world);

        let fin = infer(&prog, &probes, world, &worlds);
        let ideal = infer_idealized(&prog, &probes, world);
        for (t, step) in actual.iter().enumerate() {
            if step.is_none() {
                continue;
            }
            let Some(sites) = step else { continue };
            for e in sites.keys() {
                if ideal.is_total((t, *e)) {
                    prop_assert!(
                        fin.is_total((t, *e)),
                        "idealized pinned ({t},{e}) but the finite engine did not"
                    );
                }
            }
        }
    }
}
