//! Corner-case integration tests across the crates: constructor targets,
//! set-valued sources, ambiguous attributes, multi-occurrence targets,
//! and requirement semantics at the edges.

use oodb_engine::exec::run_query;
use oodb_engine::Database;
use oodb_lang::{check_schema, parse_query, parse_schema};
use oodb_model::{FnRef, UserName, Value};
use secflow::algorithm::{analyze, occurrences};
use secflow::unfold::NProgram;

#[test]
fn constructor_as_requirement_target() {
    // A user holding `new C` supplies every attribute directly: ta on any
    // constructor argument is axiomatically achievable.
    let s = parse_schema(
        r#"
        class C { secret: int }
        user maker { new C }
        require (maker, new C(v: ta))
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    let v = analyze(&s, &s.requirements[0]).unwrap();
    assert!(v.is_violated(), "the maker controls what gets constructed");

    // A user who merely triggers a constant-valued construction does not.
    let s = parse_schema(
        r#"
        class C { secret: int }
        fn mk(x: int): C { new C(0) }
        user trigger { mk }
        require (trigger, new C(v: ta))
        require (trigger, new C(v: pa))
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    for req in &s.requirements {
        assert!(
            !analyze(&s, req).unwrap().is_violated(),
            "{req}: the constructed value is the constant 0"
        );
    }
}

#[test]
fn multiple_occurrences_any_one_violates() {
    // The target appears twice; only the second occurrence is fed by the
    // user's argument — one violating occurrence suffices.
    let s = parse_schema(
        r#"
        class C { a: int, b: int }
        fn two(c: C, x: int): null {
          let u = w_a(c, 0), v = w_b(c, x) in u end
        }
        user u { two }
        require (u, w_b(x, v: ta))
        require (u, w_a(x, v: pa))
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    assert!(analyze(&s, &s.requirements[0]).unwrap().is_violated());
    assert!(
        !analyze(&s, &s.requirements[1]).unwrap().is_violated(),
        "w_a's value is the constant 0"
    );
}

#[test]
fn ambiguous_attribute_checks_every_class() {
    // `v` lives in two classes; the requirement ranges over both
    // implementations (paper §3.1's subtyping discussion).
    let s = parse_schema(
        r#"
        class A { v: int }
        class B { v: int }
        fn leakA(a: A): int { r_v(a) }
        user u { leakA }
        require (u, r_v(x) : ti)
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    // The A-implementation leaks (direct return), so the requirement —
    // which ranges over all implementations — is violated.
    assert!(analyze(&s, &s.requirements[0]).unwrap().is_violated());

    // occurrences() sees the read inside leakA only (B has no reads).
    let caps = s.user_str("u").unwrap();
    let prog = NProgram::unfold(&s, caps).unwrap();
    assert_eq!(occurrences(&prog, &FnRef::read("v")).len(), 1);
}

#[test]
fn set_valued_function_as_from_source() {
    let s = parse_schema(
        r#"
        class Team { name: string, members: {Person} }
        class Person { name: string, age: int }
        fn roster(t: Team): {Person} { r_members(t) }
        user hr { roster, r_name, r_age }
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    let mut db = Database::new(s).unwrap();
    let p1 = db
        .create("Person", vec![Value::str("Ann"), Value::Int(34)])
        .unwrap();
    let p2 = db
        .create("Person", vec![Value::str("Bob"), Value::Int(29)])
        .unwrap();
    db.create(
        "Team",
        vec![
            Value::str("core"),
            Value::set(vec![Value::Obj(p1), Value::Obj(p2)]),
        ],
    )
    .unwrap();
    // A user-defined set-valued function in the from clause.
    let q =
        parse_query("select r_name(m) from t in Team, m in roster(t) where r_age(m) > 30").unwrap();
    let out = run_query(&mut db, Some(&UserName::new("hr")), &q).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].0[0], Value::str("Ann"));
}

#[test]
fn requirement_on_arguments_of_access_function() {
    // Caps on the *arguments* of an inner access-function occurrence: the
    // binding expression carries them.
    let s = parse_schema(
        r#"
        class C { a: int }
        fn inner(x: int): int { x + 1 }
        fn outerFixed(c: C): int { inner(2) }
        fn outerFree(c: C, y: int): int { inner(y) }
        user fixed { outerFixed }
        user free { outerFree }
        require (fixed, inner(x: ta) : ti)
        require (free, inner(x: ta) : ti)
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    // outerFixed passes the constant 2: no alterability.
    assert!(!analyze(&s, &s.requirements[0]).unwrap().is_violated());
    // outerFree routes the user's own argument in: ta + observed result.
    assert!(analyze(&s, &s.requirements[1]).unwrap().is_violated());
}

#[test]
fn null_and_set_attributes_round_trip_through_engine() {
    let s = parse_schema(
        r#"
        class Node { next: Node, tags: {int} }
        user u { r_next, r_tags, w_next, w_tags, new Node }
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    let mut db = Database::new(s).unwrap();
    let n1 = db
        .create("Node", vec![Value::Null, Value::set(vec![Value::Int(1)])])
        .unwrap();
    let n2 = db
        .create(
            "Node",
            vec![
                Value::Obj(n1),
                Value::set(vec![Value::Int(2), Value::Int(3)]),
            ],
        )
        .unwrap();
    let v2 = Value::Obj(n2);
    assert_eq!(db.read_attr(&v2, &"next".into()).unwrap(), Value::Obj(n1));
    let tags = db.read_attr(&v2, &"tags".into()).unwrap();
    assert_eq!(tags, Value::set(vec![Value::Int(2), Value::Int(3)]));
    // Null is a legal object-typed value.
    db.write_attr(&v2, &"next".into(), Value::Null).unwrap();
    assert_eq!(db.read_attr(&v2, &"next".into()).unwrap(), Value::Null);
}

#[test]
fn pi_requirement_weaker_than_ti() {
    // Wherever ti is violated, pi must be too (ti ⇒ pi).
    let s = parse_schema(
        r#"
        class C { a: int }
        user direct { r_a }
        require (direct, r_a(x) : ti)
        require (direct, r_a(x) : pi)
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    let ti = analyze(&s, &s.requirements[0]).unwrap();
    let pi = analyze(&s, &s.requirements[1]).unwrap();
    assert!(ti.is_violated());
    assert!(pi.is_violated());
}

#[test]
fn requirement_with_caps_on_multiple_positions() {
    // All caps must co-occur on ONE occurrence: ta on the value AND pi on
    // the return of the same read... use a write: ta on value and pa on
    // receiver simultaneously.
    let s = parse_schema(
        r#"
        class C { a: int }
        fn setA(c: C, v: int): null { w_a(c, v) }
        user u { setA }
        require (u, w_a(x: pa, v: ta))
        "#,
    )
    .unwrap();
    check_schema(&s).unwrap();
    // The receiver is the user's object argument (pa ✓ via ta axiom) and
    // the value flows from the int argument (ta ✓): violated.
    assert!(analyze(&s, &s.requirements[0]).unwrap().is_violated());

    let s2 = parse_schema(
        r#"
        class C { a: int }
        fn resetA(c: C): null { w_a(c, 0) }
        user u { resetA }
        require (u, w_a(x: pa, v: ta))
        "#,
    )
    .unwrap();
    check_schema(&s2).unwrap();
    // pa on the receiver holds, ta on the constant value does not: the
    // conjunction fails.
    assert!(!analyze(&s2, &s2.requirements[0]).unwrap().is_violated());
}
