//! Differential testing of the fast-path closure engine against the
//! retained slow-path reference (`secflow::reference`).
//!
//! The fast engine interns terms, uses dense capability tables and an Fx
//! hasher, and skips proof recording on `analyze`; the reference keeps the
//! historical hash-map representation with SipHash and always-on proofs.
//! Both are supposed to run the *same* deterministic traversal, so on every
//! workload the closure term sets must be identical — not merely equal as
//! sets of verdicts — and every `analyze` verdict (including witness terms
//! inside violations) must match exactly.

use proptest::prelude::*;
use secflow::algorithm::{analyze_with_config, AnalysisConfig};
use secflow::closure::{Closure, ProofMode, SaturationMode, DEFAULT_TERM_LIMIT};
use secflow::reference::{analyze_ref, RefClosure};
use secflow::rules::RuleConfig;
use secflow::term::Term;
use secflow::unfold::{ExprId, NProgram};
use secflow_workloads::random::{random_case, RandomSpec};
use secflow_workloads::scale;

/// Both engines on one unfolded program: identical term sets, rounds and
/// per-occurrence witnesses.
fn assert_closures_identical(prog: &NProgram, label: &str) {
    let fast = Closure::compute(prog).unwrap_or_else(|e| panic!("{label}: fast engine: {e}"));
    let slow = RefClosure::compute(prog).unwrap_or_else(|e| panic!("{label}: reference: {e}"));
    assert_eq!(fast.len(), slow.len(), "{label}: term counts differ");
    assert_eq!(fast.rounds(), slow.rounds(), "{label}: rounds differ");
    let mut tf: Vec<Term> = fast.iter().collect();
    let mut ts: Vec<Term> = slow.iter().collect();
    tf.sort();
    ts.sort();
    assert_eq!(tf, ts, "{label}: closure term sets differ");
    for e in 1..=prog.len() as ExprId {
        assert_eq!(
            fast.ti_witness(e),
            slow.ti_witness(e),
            "{label}: ti witness differs at {e}"
        );
        assert_eq!(
            fast.pi_witness(e),
            slow.pi_witness(e),
            "{label}: pi witness differs at {e}"
        );
        assert_eq!(fast.has_ta(e), slow.has_ta(e), "{label}: ta differs at {e}");
        assert_eq!(fast.has_pa(e), slow.has_pa(e), "{label}: pa differs at {e}");
    }
}

/// Naive full-sweep saturation vs the semi-naive delta engine vs the
/// chunked-kernel engine on one program: the delta bookkeeping must not
/// change the insertion sequence, so term sets, rounds, witnesses and
/// proofs all match — and the chunked engine must track the scalar
/// baseline in *exact insertion order*, not just as a set.
fn assert_saturation_modes_identical(prog: &NProgram, label: &str) {
    let cfg = RuleConfig::default();
    let naive = Closure::compute_with_saturation(
        prog,
        &cfg,
        DEFAULT_TERM_LIMIT,
        ProofMode::Full,
        SaturationMode::Naive,
    )
    .unwrap_or_else(|e| panic!("{label}: naive: {e}"));
    let semi = Closure::compute_with_saturation(
        prog,
        &cfg,
        DEFAULT_TERM_LIMIT,
        ProofMode::Full,
        SaturationMode::SemiNaive,
    )
    .unwrap_or_else(|e| panic!("{label}: semi-naive: {e}"));
    let chunked = Closure::compute_with_saturation(
        prog,
        &cfg,
        DEFAULT_TERM_LIMIT,
        ProofMode::Full,
        SaturationMode::Chunked,
    )
    .unwrap_or_else(|e| panic!("{label}: chunked: {e}"));
    assert_eq!(
        semi.iter().collect::<Vec<Term>>(),
        chunked.iter().collect::<Vec<Term>>(),
        "{label}: chunked insertion order diverges from the scalar baseline"
    );
    assert_eq!(
        semi.rounds(),
        chunked.rounds(),
        "{label}: chunked rounds differ"
    );
    for e in 1..=prog.len() as ExprId {
        assert_eq!(
            semi.ti_witness(e),
            chunked.ti_witness(e),
            "{label}: chunked ti witness differs at {e}"
        );
        assert_eq!(
            semi.pi_witness(e),
            chunked.pi_witness(e),
            "{label}: chunked pi witness differs at {e}"
        );
    }
    for t in semi.iter() {
        assert_eq!(
            semi.proof(&t),
            chunked.proof(&t),
            "{label}: chunked proof differs for {t}"
        );
    }
    assert_eq!(naive.len(), semi.len(), "{label}: term counts differ");
    assert_eq!(naive.rounds(), semi.rounds(), "{label}: rounds differ");
    let mut tn: Vec<Term> = naive.iter().collect();
    let mut ts: Vec<Term> = semi.iter().collect();
    tn.sort();
    ts.sort();
    assert_eq!(tn, ts, "{label}: closure term sets differ");
    for e in 1..=prog.len() as ExprId {
        assert_eq!(
            naive.ti_witness(e),
            semi.ti_witness(e),
            "{label}: ti witness differs at {e}"
        );
        assert_eq!(
            naive.pi_witness(e),
            semi.pi_witness(e),
            "{label}: pi witness differs at {e}"
        );
    }
    for t in naive.iter() {
        assert_eq!(
            naive.proof(&t),
            semi.proof(&t),
            "{label}: proof differs for {t}"
        );
    }
    // All runs recorded proofs, so all must certify: every derivation
    // re-validates against the Table-2 schemas independently of the engine.
    for (mode, c) in [
        ("naive", &naive),
        ("semi-naive", &semi),
        ("chunked", &chunked),
    ] {
        let cert = c
            .certify(prog, &cfg)
            .unwrap_or_else(|e| panic!("{label}: {mode} closure fails certification: {e}"));
        assert_eq!(
            cert.terms_checked,
            c.len(),
            "{label}: {mode} certificate covers every term"
        );
    }
}

/// A schema whose probe bodies repeat one subexpression (`r_a0(c) + x`)
/// `reuse` times across `fns` functions: after unfolding, the same shape
/// occurs at many distinct `ExprId`s with cross-occurrence equalities —
/// the case where delta-frontier bookkeeping diverges from full re-firing
/// if a dirty mark is dropped or double-cleared.
fn shared_subexpr_case(fns: usize, reuse: usize, grant_write: bool) -> oodb_lang::Schema {
    use std::fmt::Write as _;
    let mut src = String::from("class C { a0: int, a1: int }\n");
    for i in 0..fns {
        let mut body = String::from("(r_a0(c) + x)");
        for _ in 1..reuse {
            body = format!("({body} + (r_a0(c) + x))");
        }
        writeln!(src, "fn f{i}(x: int, c: C): bool {{ {body} >= {i} }}").unwrap();
    }
    let grants: Vec<String> = (0..fns)
        .map(|i| format!("f{i}"))
        .chain(grant_write.then(|| "w_a0".to_owned()))
        .collect();
    writeln!(src, "user u {{ {} }}", grants.join(", ")).unwrap();
    let schema = oodb_lang::parse_schema(&src).expect("generated schema parses");
    oodb_lang::check_schema(&schema).expect("generated schema checks");
    schema
}

#[test]
fn scale_families_are_engine_identical() {
    let cases = [
        ("call_chain", scale::call_chain(8)),
        ("wide_grants", scale::wide_grants(16)),
        ("deep_expr", scale::deep_expr(4)),
        ("attr_fanout", scale::attr_fanout(8)),
    ];
    let config = AnalysisConfig::default();
    for (label, case) in cases {
        let caps = case.schema.user_str("u").unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        assert_closures_identical(&prog, label);
        assert_saturation_modes_identical(&prog, label);
        // End-to-end verdicts agree, witnesses included (Verdict: PartialEq).
        let fast = analyze_with_config(&case.schema, &case.requirement, &config);
        let slow = analyze_ref(&case.schema, &case.requirement, &config);
        assert_eq!(fast, slow, "{label}: verdicts differ");
    }
}

#[test]
fn refiring_heavy_families_are_mode_identical() {
    // The two saturation-experiment families, at sizes past the smoke
    // tier: wide equality fan-out and dense `=`-cliques with multi-origin
    // joint constraints — the workloads the delta engine reworks hardest.
    for (label, case) in [
        ("wide_grants", scale::wide_grants(24)),
        ("dense_equalities", scale::dense_equalities(6)),
    ] {
        let caps = case.schema.user_str("u").unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        assert_closures_identical(&prog, label);
        assert_saturation_modes_identical(&prog, label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random corpus: the interned dense engine and the reference engine
    /// derive byte-identical closures and verdicts.
    #[test]
    fn random_cases_are_engine_identical(seed in 0u64..2000) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let fast = Closure::compute(&prog).unwrap();
        let slow = RefClosure::compute(&prog).unwrap();
        let mut tf: Vec<Term> = fast.iter().collect();
        let mut ts: Vec<Term> = slow.iter().collect();
        tf.sort();
        ts.sort();
        prop_assert_eq!(tf, ts, "closure term sets differ for seed {}", seed);
        prop_assert_eq!(fast.rounds(), slow.rounds());
        let config = AnalysisConfig::default();
        for req in &case.requirements {
            let vf = analyze_with_config(&case.schema, req, &config);
            let vs = analyze_ref(&case.schema, req, &config);
            prop_assert_eq!(&vf, &vs, "verdict differs for seed {} req {}", seed, req);
        }
    }

}

proptest! {
    // Each case saturates three engines over a shared-subexpression clique;
    // the instances grow fast, so fewer, smaller cases than the random
    // corpus above.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shared-subexpression corpus: one subexpression repeated across
    /// occurrences and functions, shrinkable over repetition count, fan-out
    /// and the write grant. Both the reference engine and the naive
    /// saturation mode must agree with the semi-naive default.
    #[test]
    fn shared_subexpr_cases_are_engine_and_mode_identical(
        fns in 1usize..3,
        reuse in 1usize..4,
        grant_write in any::<bool>(),
    ) {
        let schema = shared_subexpr_case(fns, reuse, grant_write);
        let caps = schema.user_str("u").unwrap();
        let prog = NProgram::unfold(&schema, caps).unwrap();
        let label = format!("fns={fns} reuse={reuse} grant={grant_write}");
        assert_closures_identical(&prog, &label);
        assert_saturation_modes_identical(&prog, &label);
    }
}
