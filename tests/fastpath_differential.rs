//! Differential testing of the fast-path closure engine against the
//! retained slow-path reference (`secflow::reference`).
//!
//! The fast engine interns terms, uses dense capability tables and an Fx
//! hasher, and skips proof recording on `analyze`; the reference keeps the
//! historical hash-map representation with SipHash and always-on proofs.
//! Both are supposed to run the *same* deterministic traversal, so on every
//! workload the closure term sets must be identical — not merely equal as
//! sets of verdicts — and every `analyze` verdict (including witness terms
//! inside violations) must match exactly.

use proptest::prelude::*;
use secflow::algorithm::{analyze_with_config, AnalysisConfig};
use secflow::closure::Closure;
use secflow::reference::{analyze_ref, RefClosure};
use secflow::term::Term;
use secflow::unfold::{ExprId, NProgram};
use secflow_workloads::random::{random_case, RandomSpec};
use secflow_workloads::scale;

/// Both engines on one unfolded program: identical term sets, rounds and
/// per-occurrence witnesses.
fn assert_closures_identical(prog: &NProgram, label: &str) {
    let fast = Closure::compute(prog).unwrap_or_else(|e| panic!("{label}: fast engine: {e}"));
    let slow = RefClosure::compute(prog).unwrap_or_else(|e| panic!("{label}: reference: {e}"));
    assert_eq!(fast.len(), slow.len(), "{label}: term counts differ");
    assert_eq!(fast.rounds(), slow.rounds(), "{label}: rounds differ");
    let mut tf: Vec<Term> = fast.iter().collect();
    let mut ts: Vec<Term> = slow.iter().collect();
    tf.sort();
    ts.sort();
    assert_eq!(tf, ts, "{label}: closure term sets differ");
    for e in 1..=prog.len() as ExprId {
        assert_eq!(
            fast.ti_witness(e),
            slow.ti_witness(e),
            "{label}: ti witness differs at {e}"
        );
        assert_eq!(
            fast.pi_witness(e),
            slow.pi_witness(e),
            "{label}: pi witness differs at {e}"
        );
        assert_eq!(fast.has_ta(e), slow.has_ta(e), "{label}: ta differs at {e}");
        assert_eq!(fast.has_pa(e), slow.has_pa(e), "{label}: pa differs at {e}");
    }
}

#[test]
fn scale_families_are_engine_identical() {
    let cases = [
        ("call_chain", scale::call_chain(8)),
        ("wide_grants", scale::wide_grants(16)),
        ("deep_expr", scale::deep_expr(4)),
        ("attr_fanout", scale::attr_fanout(8)),
    ];
    let config = AnalysisConfig::default();
    for (label, case) in cases {
        let caps = case.schema.user_str("u").unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        assert_closures_identical(&prog, label);
        // End-to-end verdicts agree, witnesses included (Verdict: PartialEq).
        let fast = analyze_with_config(&case.schema, &case.requirement, &config);
        let slow = analyze_ref(&case.schema, &case.requirement, &config);
        assert_eq!(fast, slow, "{label}: verdicts differ");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random corpus: the interned dense engine and the reference engine
    /// derive byte-identical closures and verdicts.
    #[test]
    fn random_cases_are_engine_identical(seed in 0u64..2000) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let fast = Closure::compute(&prog).unwrap();
        let slow = RefClosure::compute(&prog).unwrap();
        let mut tf: Vec<Term> = fast.iter().collect();
        let mut ts: Vec<Term> = slow.iter().collect();
        tf.sort();
        ts.sort();
        prop_assert_eq!(tf, ts, "closure term sets differ for seed {}", seed);
        prop_assert_eq!(fast.rounds(), slow.rounds());
        let config = AnalysisConfig::default();
        for req in &case.requirements {
            let vf = analyze_with_config(&case.schema, req, &config);
            let vs = analyze_ref(&case.schema, req, &config);
            prop_assert_eq!(&vf, &vs, "verdict differs for seed {} req {}", seed, req);
        }
    }
}
