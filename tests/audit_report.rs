//! The audit report contract: the JSON shape is pinned by a golden file
//! (versioned `secflow.audit/1`), every reported path is backed by a
//! certifier-accepted derivation, and the trace stream is valid Chrome
//! `trace_event` JSON.

use secflow::{ProvenanceOptions, Term, WalkMode};
use secflow_cli::{
    audit_batch, exit, render_audit, run_on_source_with_obs, AuditFormat, AuditOptions, Command,
    MetricsFormat, ObsOptions, TraceOptions,
};
use secflow_obs::{Json, TraceFormat};

const GOLDEN: &str = include_str!("golden/audit_stockbroker.json");

fn stockbroker_source() -> String {
    std::fs::read_to_string(format!(
        "{}/policies/stockbroker.sfl",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap()
}

fn stockbroker_opts() -> AuditOptions {
    AuditOptions {
        // Pinned relative path: the report echoes it, and the golden file
        // must not depend on where the checkout lives.
        policy: "policies/stockbroker.sfl".into(),
        format: AuditFormat::Json,
        severity: None,
        provenance: ProvenanceOptions::default(),
    }
}

#[test]
fn audit_json_matches_the_golden_file() {
    let schema = secflow_cli::load_str(&stockbroker_source()).unwrap();
    let outcome = audit_batch(&schema, 1);
    let (out, code) = render_audit(&schema, &outcome, &stockbroker_opts());
    assert_eq!(code, exit::VIOLATION);
    assert_eq!(
        out, GOLDEN,
        "audit JSON drifted from tests/golden/audit_stockbroker.json; \
         if the change is intentional, bump the schema version and \
         regenerate with: cargo run -p secflow-cli -- audit \
         policies/stockbroker.sfl --format=json"
    );
}

#[test]
fn golden_file_is_valid_and_schema_versioned() {
    let doc = Json::parse(GOLDEN).expect("golden file parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(secflow_cli::AUDIT_SCHEMA)
    );
    assert_eq!(doc.get("violated").and_then(Json::as_u64), Some(2));
    // Every path walks sink-to-source with contiguous depths.
    let violations = doc.get("violations").and_then(Json::as_arr).unwrap();
    assert_eq!(violations.len(), 2);
    for v in violations {
        for w in v.get("witnesses").and_then(Json::as_arr).unwrap() {
            for p in w.get("paths").and_then(Json::as_arr).unwrap() {
                let steps = p.get("steps").and_then(Json::as_arr).unwrap();
                for (i, s) in steps.iter().enumerate() {
                    assert_eq!(s.get("depth").and_then(Json::as_u64), Some(i as u64));
                }
            }
        }
    }
}

#[test]
fn every_reported_path_is_backed_by_accepted_derivations() {
    let schema = secflow_cli::load_str(&stockbroker_source()).unwrap();
    let outcome = audit_batch(&schema, 1);
    let mut checked = 0usize;
    for (i, verdict) in outcome.verdicts.iter().enumerate() {
        let Ok(secflow::Verdict::Violated(violations)) = verdict else {
            continue;
        };
        let g = outcome
            .groups
            .iter()
            .find(|g| g.req_indexes.contains(&i))
            .unwrap();
        let (prog, closure) = g.artifacts.as_ref().unwrap();
        // The certifier accepts the whole store…
        closure
            .certify(prog, &secflow::rules::RuleConfig::default())
            .expect("audit closures certify");
        // …and each path's consecutive steps follow recorded premise edges.
        for v in violations {
            for w in &v.witnesses {
                let paths = secflow::flaw_paths(closure, w, &ProvenanceOptions::default()).unwrap();
                assert!(!paths.is_empty());
                for p in &paths {
                    for pair in p.steps.windows(2) {
                        let d = closure.proof(&pair[0].term).unwrap();
                        assert!(d.premises.contains(&pair[1].term));
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 0, "the stockbroker policy has flaw paths");
}

#[test]
fn corrupting_one_proof_rejects_the_whole_report() {
    let schema = secflow_cli::load_str(&stockbroker_source()).unwrap();
    let mut outcome = audit_batch(&schema, 1);
    let (_, closure) = outcome.groups[0].artifacts.as_mut().unwrap();
    let t = closure
        .iter()
        .find(|t| matches!(t, Term::Ta(_)))
        .expect("closure has a ta term");
    assert!(closure.replace_proof(&t, "rule for =", vec![]));
    let (out, code) = render_audit(&schema, &outcome, &stockbroker_opts());
    assert_eq!(code, exit::CERTIFY);
    let doc = Json::parse(&out).unwrap();
    assert_eq!(doc.get("certified"), Some(&Json::Bool(false)));
    assert!(
        doc.get("violations").is_none(),
        "an uncertified store must not yield flaw paths"
    );
}

#[test]
fn forward_mode_report_reverses_the_steps() {
    let schema = secflow_cli::load_str(&stockbroker_source()).unwrap();
    let outcome = audit_batch(&schema, 1);
    let mut opts = stockbroker_opts();
    opts.provenance.mode = WalkMode::Forward;
    let (out, code) = render_audit(&schema, &outcome, &opts);
    assert_eq!(code, exit::VIOLATION);
    let doc = Json::parse(&out).unwrap();
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("forward"));
    for v in doc.get("violations").and_then(Json::as_arr).unwrap() {
        for w in v.get("witnesses").and_then(Json::as_arr).unwrap() {
            for p in w.get("paths").and_then(Json::as_arr).unwrap() {
                let steps = p.get("steps").and_then(Json::as_arr).unwrap();
                assert_eq!(
                    steps[0].get("term").and_then(Json::as_str),
                    p.get("source").and_then(Json::as_str),
                    "forward paths start at the source"
                );
            }
        }
    }
}

#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let out = run_on_source_with_obs(
        &Command::Audit {
            file: "-".into(),
            format: AuditFormat::Json,
            severity: None,
            mode: WalkMode::Backward,
            max_depth: 64,
            max_paths: 16,
            jobs: 2,
        },
        &stockbroker_source(),
        &ObsOptions {
            metrics: Some(MetricsFormat::Json),
            trace: Some(TraceOptions {
                file: Some("audit.trace.json".into()),
                format: TraceFormat::Chrome,
            }),
        },
    );
    assert_eq!(out.code, exit::VIOLATION);
    let trace = out
        .trace_output
        .expect("trace captured for the file target");
    let doc = Json::parse(&trace).expect("chrome trace parses");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap();
        assert!(matches!(ph, "X" | "i"), "unexpected phase {ph}");
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("ts").and_then(Json::as_u64).is_some());
        assert_eq!(ev.get("pid").and_then(Json::as_u64), Some(1));
        assert!(ev.get("tid").and_then(Json::as_u64).is_some());
        match ph {
            "X" => assert!(ev.get("dur").and_then(Json::as_u64).is_some()),
            _ => assert_eq!(ev.get("s").and_then(Json::as_str), Some("t")),
        }
    }
    // One lane per analysis group plus the driver lane.
    let lanes: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    assert!(lanes.len() >= 2, "driver lane plus at least one group lane");
    // The metrics stream stays a separate, valid document.
    assert!(Json::parse(&out.stderr).is_ok());
}
