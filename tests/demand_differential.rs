//! Differential testing of the demand-driven engine against full
//! saturation.
//!
//! The demand engine restricts axiom seeding and rule firing to a
//! conservative relevance slice of `S'(F)` and stops as soon as every
//! target occurrence's verdict is decided. Its contract is *exactness on
//! the slice*: the restricted run derives precisely the full closure's
//! terms whose mentioned expressions all lie inside the slice, in the same
//! worklist order — so verdicts, witness terms (first derivation origins)
//! and even `TermLimit` aborts must be byte-identical to full saturation.

use proptest::prelude::*;
use secflow::algorithm::{
    analyze_batch, analyze_full, analyze_with_config, AnalysisConfig, AnalysisError, BatchOptions,
    ClosureCache,
};
use secflow::algorithm::{analyze_batch_cached, occurrences};
use secflow::closure::{Closure, SaturationMode, DEFAULT_TERM_LIMIT};
use secflow::demand::DemandPlan;
use secflow::term::Term;
use secflow::unfold::{ExprId, NProgram};
use secflow_workloads::random::{random_case, RandomSpec};
use secflow_workloads::scale;

/// The demand engine on one plan vs. the full engine on the same program:
/// the demand closure must contain exactly the slice-restricted subset of
/// the full closure, with identical per-expression witnesses inside the
/// slice.
fn assert_demand_is_sliced_full(prog: &NProgram, plan: &DemandPlan, label: &str) {
    let full = Closure::compute(prog).unwrap_or_else(|e| panic!("{label}: full engine: {e}"));
    // The full run records proofs: certify them. The demand run below is
    // proof-free by design, so certification must refuse it (checked once
    // after it is computed).
    full.certify(prog, &secflow::rules::RuleConfig::default())
        .unwrap_or_else(|e| panic!("{label}: full closure fails certification: {e}"));
    let demand = Closure::compute_demand(
        prog,
        &secflow::rules::RuleConfig::default(),
        secflow::closure::DEFAULT_TERM_LIMIT,
        plan,
    )
    .unwrap_or_else(|e| panic!("{label}: demand engine: {e}"));
    assert_eq!(
        demand.certify(prog, &secflow::rules::RuleConfig::default()),
        Err(secflow::checker::CheckError::NoProofs),
        "{label}: proof-free demand closures must be uncertifiable"
    );
    if demand.early_exited() {
        // An early-exited run is a prefix of the sliced run; subset only.
        let mut td: Vec<Term> = demand.iter().collect();
        td.sort();
        for t in &td {
            assert!(plan.covers(t), "{label}: demand derived out-of-slice {t:?}");
        }
        return;
    }
    let mut td: Vec<Term> = demand.iter().collect();
    let mut tf: Vec<Term> = full.iter().filter(|t| plan.covers(t)).collect();
    td.sort();
    tf.sort();
    assert_eq!(td, tf, "{label}: demand closure ≠ slice-restricted full");
    for e in 1..=prog.len() as ExprId {
        if !plan.covers_expr(e) {
            continue;
        }
        assert_eq!(
            demand.ti_witness(e),
            full.ti_witness(e),
            "{label}: ti witness differs at {e}"
        );
        assert_eq!(
            demand.pi_witness(e),
            full.pi_witness(e),
            "{label}: pi witness differs at {e}"
        );
        assert_eq!(
            demand.has_ta(e),
            full.has_ta(e),
            "{label}: ta differs at {e}"
        );
        assert_eq!(
            demand.has_pa(e),
            full.has_pa(e),
            "{label}: pa differs at {e}"
        );
    }
}

/// The demand engine in every saturation mode on one plan: the delta
/// bookkeeping must not change the sliced insertion sequence either, so
/// the runs match in term sets, rounds, early-exit behaviour and
/// witnesses — with the chunked engine tracking the scalar baseline in
/// exact insertion order.
fn assert_demand_modes_identical(prog: &NProgram, plan: &DemandPlan, label: &str) {
    let cfg = secflow::rules::RuleConfig::default();
    let naive = Closure::compute_demand_saturation(
        prog,
        &cfg,
        DEFAULT_TERM_LIMIT,
        plan,
        SaturationMode::Naive,
    )
    .unwrap_or_else(|e| panic!("{label}: naive demand: {e}"));
    let semi = Closure::compute_demand_saturation(
        prog,
        &cfg,
        DEFAULT_TERM_LIMIT,
        plan,
        SaturationMode::SemiNaive,
    )
    .unwrap_or_else(|e| panic!("{label}: semi-naive demand: {e}"));
    let chunked = Closure::compute_demand_saturation(
        prog,
        &cfg,
        DEFAULT_TERM_LIMIT,
        plan,
        SaturationMode::Chunked,
    )
    .unwrap_or_else(|e| panic!("{label}: chunked demand: {e}"));
    assert_eq!(
        semi.iter().collect::<Vec<Term>>(),
        chunked.iter().collect::<Vec<Term>>(),
        "{label}: chunked demand insertion order diverges from the scalar baseline"
    );
    assert_eq!(
        semi.rounds(),
        chunked.rounds(),
        "{label}: chunked demand rounds differ"
    );
    assert_eq!(
        semi.early_exited(),
        chunked.early_exited(),
        "{label}: chunked early-exit behaviour differs"
    );
    for e in 1..=prog.len() as ExprId {
        assert_eq!(
            semi.ti_witness(e),
            chunked.ti_witness(e),
            "{label}: chunked ti witness differs at {e}"
        );
        assert_eq!(
            semi.pi_witness(e),
            chunked.pi_witness(e),
            "{label}: chunked pi witness differs at {e}"
        );
    }
    assert_eq!(naive.len(), semi.len(), "{label}: term counts differ");
    assert_eq!(naive.rounds(), semi.rounds(), "{label}: rounds differ");
    assert_eq!(
        naive.early_exited(),
        semi.early_exited(),
        "{label}: early-exit behaviour differs"
    );
    let mut tn: Vec<Term> = naive.iter().collect();
    let mut ts: Vec<Term> = semi.iter().collect();
    tn.sort();
    ts.sort();
    assert_eq!(tn, ts, "{label}: demand closures differ");
    for e in 1..=prog.len() as ExprId {
        assert_eq!(
            naive.ti_witness(e),
            semi.ti_witness(e),
            "{label}: ti witness differs at {e}"
        );
        assert_eq!(
            naive.pi_witness(e),
            semi.pi_witness(e),
            "{label}: pi witness differs at {e}"
        );
    }
}

#[test]
fn scale_families_verdicts_and_closures_identical() {
    let cases = [
        ("call_chain", scale::call_chain(8)),
        ("wide_grants", scale::wide_grants(16)),
        ("deep_expr", scale::deep_expr(4)),
        ("attr_fanout", scale::attr_fanout(8)),
        ("dense_equalities", scale::dense_equalities(5)),
    ];
    let config = AnalysisConfig::default();
    for (label, case) in cases {
        let demand = analyze_with_config(&case.schema, &case.requirement, &config);
        let full = analyze_full(&case.schema, &case.requirement, &config);
        assert_eq!(demand, full, "{label}: verdicts differ");
        let caps = case.schema.user_str("u").unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let plan = DemandPlan::for_requirement(&prog, &case.requirement);
        assert_demand_is_sliced_full(&prog, &plan, label);
        assert_demand_modes_identical(&prog, &plan, label);
    }
}

#[test]
fn multi_user_batch_demand_matches_full_saturation() {
    let case = scale::multi_user(4, 8);
    let config = AnalysisConfig::default();
    for jobs in [1, 4] {
        let demand = analyze_batch(
            &case.schema,
            &case.requirements,
            &config,
            &BatchOptions {
                jobs,
                ..BatchOptions::default()
            },
        );
        let full = analyze_batch(
            &case.schema,
            &case.requirements,
            &config,
            &BatchOptions {
                jobs,
                full_saturation: true,
                ..BatchOptions::default()
            },
        );
        assert_eq!(demand.verdicts, full.verdicts, "jobs={jobs}");
    }
}

#[test]
fn cached_batches_stay_identical_across_calls() {
    let case = scale::multi_user(4, 8);
    let config = AnalysisConfig::default();
    let cache = ClosureCache::new(8);
    let opts = BatchOptions::default();
    let baseline: Vec<_> = case
        .requirements
        .iter()
        .map(|r| analyze_full(&case.schema, r, &config))
        .collect();
    for round in 0..3 {
        let out = analyze_batch_cached(
            &case.schema,
            &case.requirements,
            &config,
            &opts,
            Some(&cache),
        );
        assert_eq!(out.verdicts, baseline, "round {round}");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 4, "one cold miss per user group");
    assert_eq!(stats.hits, 8, "rounds two and three fully cached");
    assert_eq!(stats.union_recomputes, 0, "repeat rounds never widen goals");
}

/// `TermLimit` aborts identically: the demand engine's inserts are a
/// subsequence of the full engine's, so whenever demand hits the budget the
/// full engine (same budget) must as well — and the CLI's error surface
/// stays mode-independent for every policy that errors.
#[test]
fn term_limit_aborts_agree_on_the_paper_fixture() {
    let schema = oodb_lang::parse_schema(
        r#"
        class Broker { name: string, salary: int, budget: int, profit: int }
        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }
        user clerk { checkBudget, w_budget }
        "#,
    )
    .unwrap();
    oodb_lang::check_schema(&schema).unwrap();
    let req = oodb_lang::parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
    for limit in [1, 3, 5, 8, 1000] {
        let config = AnalysisConfig {
            term_limit: limit,
            ..AnalysisConfig::default()
        };
        let demand = analyze_with_config(&schema, &req, &config);
        let full = analyze_full(&schema, &req, &config);
        match (&demand, &full) {
            // Demand hitting the budget implies full hits it (subsequence).
            (Err(AnalysisError::Closure(_)), f) => assert!(
                matches!(f, Err(AnalysisError::Closure(_))),
                "limit={limit}: demand aborted but full saturation did not"
            ),
            // Full aborting while demand fits is the optimisation working.
            (_, Err(AnalysisError::Closure(_))) => {}
            _ => assert_eq!(demand, full, "limit={limit}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random corpus: demand verdicts — witness terms included — are
    /// byte-identical to full saturation for every requirement.
    #[test]
    fn random_cases_demand_matches_full(seed in 0u64..2000) {
        let case = random_case(seed, &RandomSpec::default());
        let config = AnalysisConfig::default();
        for req in &case.requirements {
            let demand = analyze_with_config(&case.schema, req, &config);
            let full = analyze_full(&case.schema, req, &config);
            prop_assert_eq!(&demand, &full, "verdict differs for seed {} req {}", seed, req);
        }
    }

    /// Random corpus, engine level: the demand closure is exactly the
    /// slice-restricted subset of the full closure (same witnesses) when
    /// the worklist drains, and a subset of the slice when it exits early.
    #[test]
    fn random_cases_demand_closure_is_sliced_full(seed in 500u64..900) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        for req in &case.requirements {
            let occs = occurrences(&prog, &req.target);
            let plan = DemandPlan::build(&prog, [(req, occs.as_slice())]);
            assert_demand_is_sliced_full(&prog, &plan, &format!("seed {seed} req {req}"));
        }
    }

    /// Random corpus with a tight term budget: demand aborting implies the
    /// full run aborts, and when neither aborts the verdicts agree.
    #[test]
    fn random_cases_term_limit_is_mode_independent(seed in 0u64..300) {
        let case = random_case(seed, &RandomSpec::default());
        let config = AnalysisConfig {
            term_limit: 40,
            ..AnalysisConfig::default()
        };
        for req in &case.requirements {
            let demand = analyze_with_config(&case.schema, req, &config);
            let full = analyze_full(&case.schema, req, &config);
            match (&demand, &full) {
                // Demand aborting implies full aborts: demand's inserts are
                // a subsequence of full's, so it reaches any budget later.
                (Err(AnalysisError::Closure(_)), f) => prop_assert!(
                    matches!(f, Err(AnalysisError::Closure(_))),
                    "seed {}: demand aborted but full did not", seed
                ),
                // The converse is the optimisation working as intended: the
                // sliced run can fit a budget the full closure exceeds.
                (_, Err(AnalysisError::Closure(_))) => {}
                _ => prop_assert_eq!(&demand, &full, "seed {} req {}", seed, req),
            }
        }
    }
}
