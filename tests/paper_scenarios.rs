//! End-to-end reproduction of the paper's scenarios: the live attack runs
//! against the engine, and the static analysis flags exactly the flawed
//! policies.

use oodb_engine::Session;
use oodb_lang::parse_requirement;
use oodb_model::Value;
use secflow::algorithm::analyze;
use secflow_workloads::fixtures::{hospital, person, stockbroker, stockbroker_db};

/// §3.1's probing attack, executed for real: the clerk pins John's salary
/// by moving the budget and watching checkBudget.
#[test]
fn live_probing_attack_recovers_salary() {
    let mut db = stockbroker_db();
    let mut session = Session::open(&mut db, "clerk");
    let (mut lo, mut hi) = (0i64, 4096i64);
    while lo < hi {
        let mid = (lo + hi) / 2;
        // The clerk holds only {checkBudget, w_budget}, so the probe scans
        // the whole extent; John is the first broker (row 0).
        let out = session
            .query(&format!(
                "select w_budget(b, {mid}), checkBudget(b) from b in Broker"
            ))
            .expect("every probe is authorized");
        if out.rows[0].0[1] == Value::Bool(true) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // John's salary is 150 → threshold 1500.
    assert_eq!(lo, 1500);
    assert!(session.log().len() <= 13, "binary search is logarithmic");
}

/// §1's payroll attack: choose the salary the update writes.
#[test]
fn live_payroll_attack_chooses_salary() {
    let mut db = stockbroker_db();
    {
        let mut session = Session::open(&mut db, "payroll");
        // calcSalary(budget, profit) = budget/10 + profit/2; John's profit
        // is 50 → to pay 777: budget = (777 - 25) * 10.
        // payroll holds only {updateSalary, w_budget}: update every broker,
        // steering John's (row 0) salary via his budget.
        session
            .query("select w_budget(b, 7520), updateSalary(b) from b in Broker")
            .expect("authorized");
    }
    let john = Value::Obj(db.extent(&"Broker".into())[0]);
    assert_eq!(
        db.read_attr(&john, &"salary".into()).unwrap(),
        Value::Int(777)
    );
}

/// The static verdicts for every fixture requirement match the paper.
#[test]
fn static_verdicts_match_paper() {
    let schema = stockbroker();
    let cases = [
        ("(clerk, r_salary(x) : ti)", true),
        ("(payroll, w_salary(x, v: ta))", true),
        ("(safe_clerk, r_salary(x) : ti)", false),
        ("(safe_payroll, w_salary(x, v: ta))", false),
        // A pi requirement on the clerk is also violated (ti ⇒ pi).
        ("(clerk, r_salary(x) : pi)", true),
        // The clerk cannot touch names.
        ("(clerk, r_name(x) : pi)", false),
        ("(clerk, w_name(x, v: pa))", false),
    ];
    for (text, expect) in cases {
        let req = parse_requirement(text).unwrap();
        let verdict = analyze(&schema, &req).unwrap();
        assert_eq!(verdict.is_violated(), expect, "{text}");
    }
}

/// The admin holds everything: every requirement on granted reads is
/// trivially violated through the direct-grant occurrence.
#[test]
fn admin_violates_everything_reachable() {
    let schema = stockbroker();
    for attr in ["name", "salary", "budget", "profit"] {
        let req = parse_requirement(&format!("(admin, r_{attr}(x) : ti)")).unwrap();
        assert!(analyze(&schema, &req).unwrap().is_violated(), "r_{attr}");
        let req = parse_requirement(&format!("(admin, w_{attr}(x, v: ta))")).unwrap();
        assert!(analyze(&schema, &req).unwrap().is_violated(), "w_{attr}");
    }
}

/// Hospital scenario (same flaw shape, different domain).
#[test]
fn hospital_scenario() {
    let schema = hospital();
    let cases = [
        ("(auditor, r_bill(x) : ti)", true),
        ("(safe_auditor, r_bill(x) : ti)", false),
        // bill > cap compares two secrets: a joint constraint with no
        // marginal content — not even pi (contrast the person scenario,
        // where the threshold is a *known constant*).
        ("(safe_auditor, r_bill(x) : pi)", false),
    ];
    for (text, expect) in cases {
        let req = parse_requirement(text).unwrap();
        assert_eq!(
            analyze(&schema, &req).unwrap().is_violated(),
            expect,
            "{text}"
        );
    }
}

/// Person scenario: profile reveals the name (granted), and isAdult leaks
/// one bit of the age — but u was only required not to learn the age
/// exactly.
#[test]
fn person_scenario() {
    let schema = person();
    let req = parse_requirement("(u, r_age(x) : ti)").unwrap();
    assert!(!analyze(&schema, &req).unwrap().is_violated());
    let req = parse_requirement("(u, r_age(x) : pi)").unwrap();
    assert!(
        analyze(&schema, &req).unwrap().is_violated(),
        "isAdult is a one-bit leak"
    );
}

/// The engine refuses what the capability list does not grant — the
/// access-control boundary the whole paper builds on.
#[test]
fn engine_denies_ungranted_functions() {
    let mut db = stockbroker_db();
    let mut session = Session::open(&mut db, "clerk");
    let err = session
        .query("select r_salary(b) from b in Broker")
        .unwrap_err();
    assert!(err.to_string().contains("not authorized"));
}
