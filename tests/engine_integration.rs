//! Cross-crate integration tests for the OODB substrate: schema text →
//! parse → check → database → sessions → queries, including the paper's §2
//! examples verbatim.

use oodb_engine::exec::run_query;
use oodb_engine::{Database, Session};
use oodb_lang::{parse_query, parse_schema};
use oodb_model::{UserName, Value};

fn person_db() -> Database {
    let schema = parse_schema(
        r#"
        class Person { name: string, age: int, child: {Person} }
        fn profile(p: Person): string { "name: " ++ r_name(p) }
        user u { profile, r_name, r_age, r_child }
        "#,
    )
    .unwrap();
    let mut db = Database::new(schema).unwrap();
    let kid1 = db
        .create(
            "Person",
            vec![Value::str("Ann"), Value::Int(12), Value::set(vec![])],
        )
        .unwrap();
    let kid2 = db
        .create(
            "Person",
            vec![Value::str("Bob"), Value::Int(9), Value::set(vec![])],
        )
        .unwrap();
    db.create(
        "Person",
        vec![
            Value::str("John"),
            Value::Int(41),
            Value::set(vec![Value::Obj(kid1), Value::Obj(kid2)]),
        ],
    )
    .unwrap();
    db.create(
        "Person",
        vec![Value::str("Mia"), Value::Int(25), Value::set(vec![])],
    )
    .unwrap();
    db
}

/// §2's first query: names and profiles of persons over 20.
#[test]
fn paper_query_select_where() {
    let mut db = person_db();
    let q =
        parse_query("select r_name(p), profile(p) from p in Person where r_age(p) > 20").unwrap();
    let out = run_query(&mut db, Some(&UserName::new("u")), &q).unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0].0[0], Value::str("John"));
    assert_eq!(out.rows[0].0[1], Value::str("name: John"));
    assert_eq!(out.rows[1].0[0], Value::str("Mia"));
}

/// §2's nested query: names of John's children.
#[test]
fn paper_nested_query() {
    let mut db = person_db();
    let q = parse_query(
        "select (select r_name(q) from q in r_child(p)) from p in Person \
         where r_name(p) == \"John\"",
    )
    .unwrap();
    let out = run_query(&mut db, Some(&UserName::new("u")), &q).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(
        out.rows[0].0[0],
        Value::set(vec![Value::str("Ann"), Value::str("Bob")])
    );
}

/// Two from-clause bindings form a cross product; the same variable can be
/// routed into two argument positions (the equality the analysis leans on).
#[test]
fn cross_product_and_shared_variable() {
    let mut db = person_db();
    let q = parse_query(
        "select r_name(p), r_name(q) from p in Person, q in Person \
         where r_age(p) >= r_age(q)",
    )
    .unwrap();
    let out = run_query(&mut db, Some(&UserName::new("u")), &q).unwrap();
    // 4 persons → 16 pairs, filtered to age(p) >= age(q): exact count
    // depends on the ages (41, 12, 9, 25 are all distinct → 6 strict pairs
    // + 4 reflexive = 10).
    assert_eq!(out.rows.len(), 10);
}

/// Session log records exactly the user-visible observations.
#[test]
fn session_log_is_user_visible_only() {
    let mut db = person_db();
    let mut s = Session::open(&mut db, "u");
    s.query("select profile(p) from p in Person where r_age(p) > 30")
        .unwrap();
    assert_eq!(s.log().len(), 1);
    let entry = &s.log()[0];
    assert!(entry.result.contains("name: John"));
    // No OIDs anywhere in what the user sees.
    assert!(!entry.result.contains("Oid"));
}

/// Mutations made through queries persist across sessions.
#[test]
fn updates_persist_across_sessions() {
    let schema = parse_schema(
        r#"
        class Counter { n: int }
        user writer { w_n }
        user reader { r_n }
        "#,
    )
    .unwrap();
    let mut db = Database::new(schema).unwrap();
    db.create("Counter", vec![Value::Int(0)]).unwrap();
    {
        let mut w = Session::open(&mut db, "writer");
        w.query("select w_n(c, 41) from c in Counter").unwrap();
        w.query("select w_n(c, 42) from c in Counter").unwrap();
    }
    let mut r = Session::open(&mut db, "reader");
    let out = r.query("select r_n(c) from c in Counter").unwrap();
    assert_eq!(out.rows[0].0[0], Value::Int(42));
}

/// A runtime error (division by zero) surfaces as a session error and does
/// not poison the database.
#[test]
fn runtime_errors_are_recoverable() {
    let schema = parse_schema(
        r#"
        class C { a: int }
        fn bad(c: C): int { r_a(c) / 0 }
        user u { bad, r_a }
        "#,
    )
    .unwrap();
    let mut db = Database::new(schema).unwrap();
    db.create("C", vec![Value::Int(5)]).unwrap();
    let mut s = Session::open(&mut db, "u");
    assert!(s.query("select bad(c) from c in C").is_err());
    let out = s.query("select r_a(c) from c in C").unwrap();
    assert_eq!(out.rows[0].0[0], Value::Int(5));
}
