//! Property-based tests for the cross-crate invariants of DESIGN.md §6.

use oodb_engine::Database;
use oodb_lang::ast::{BasicOp, Expr, Literal};
use oodb_lang::{parse_expr, parse_requirement};
use oodb_model::{FnRef, Value};
use proptest::prelude::*;
use secflow::algorithm::analyze;
use secflow::closure::Closure;
use secflow::unfold::NProgram;
use secflow_workloads::random::{random_case, RandomSpec};

// ---------------------------------------------------------------- P6: parser

/// Generator for closed integer expressions over a variable `x`.
fn int_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(|i| Expr::Const(Literal::Int(i))),
        Just(Expr::var("x")),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BasicOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BasicOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BasicOp::Mul, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BasicOp::Div, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BasicOp::Mod, a, b)),
            // Mirror the parser's constant folding: `-` on an int literal
            // is a negative constant, not a Neg node.
            inner.clone().prop_map(|a| match a {
                Expr::Const(Literal::Int(n)) => Expr::Const(Literal::Int(-n)),
                other => Expr::Basic(BasicOp::Neg, vec![other]),
            }),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Let {
                bindings: vec![("y".into(), a)],
                body: Box::new(Expr::bin(BasicOp::Add, Expr::var("y"), b)),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// P6: pretty-print then re-parse is the identity.
    #[test]
    fn parser_round_trip(e in int_expr(4)) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("re-parse failed on `{printed}`: {err}"));
        prop_assert_eq!(reparsed, e);
    }
}

// ------------------------------------------------- P1: unfolding ≡ engine

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P1: evaluating the unfolded numbered program gives the same result
    /// as the engine's nested evaluation, for random bodies.
    #[test]
    fn unfolding_preserves_semantics(e in int_expr(3), x in -20i64..20) {
        let mut schema = oodb_lang::Schema::new();
        schema.functions.insert(
            "f".into(),
            oodb_lang::AccessFnDef {
                name: "f".into(),
                params: vec![("x".into(), oodb_model::Type::INT)],
                ret: oodb_model::Type::INT,
                body: e,
            },
        );
        let caps: oodb_model::CapabilityList =
            [FnRef::access("f")].into_iter().collect();
        schema.users.insert("u".into(), caps.clone());
        prop_assume!(oodb_lang::check_schema(&schema).is_ok());

        let prog = NProgram::unfold(&schema, &caps).unwrap();
        let mut db1 = Database::new_unchecked(schema.clone());
        let mut db2 = Database::new_unchecked(schema);
        let via_engine = db1.invoke(&FnRef::access("f"), vec![Value::Int(x)]);
        let via_prog =
            secflow_dynamic::eval::eval_outer(&mut db2, &prog, 0, &[Value::Int(x)])
                .map(|(v, _)| v);
        match (via_engine, via_prog) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // Errors (division by zero / overflow) must agree too.
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "divergence: {:?} vs {:?}", a, b),
        }
    }
}

// --------------------------------------- P3/P4: closure invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// P3 (determinism) and P4 (capability lattice) over the random corpus.
    #[test]
    fn closure_invariants(seed in 0u64..5000) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let c1 = Closure::compute(&prog).unwrap();
        let c2 = Closure::compute(&prog).unwrap();
        // P3: deterministic.
        let mut t1: Vec<_> = c1.iter().collect();
        let mut t2: Vec<_> = c2.iter().collect();
        t1.sort();
        t2.sort();
        prop_assert_eq!(t1, t2);
        // P4: ta ⇒ pa and ti ⇒ pi on every occurrence.
        for e in prog.iter() {
            if c1.has_ta(e.id) {
                prop_assert!(c1.has_pa(e.id), "ta without pa on {}", e.id);
            }
            if c1.has_ti(e.id) {
                prop_assert!(c1.has_pi(e.id), "ti without pi on {}", e.id);
            }
        }
    }
}

// --------------------------------------------------- P8: monotonicity

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// P8: granting strictly more capabilities never turns a violated
    /// verdict into a satisfied one.
    #[test]
    fn analysis_monotone_in_grants(seed in 0u64..5000) {
        let case = random_case(seed, &RandomSpec::default());
        let mut bigger = case.schema.clone();
        // Grow the user's list with every attribute's read.
        let mut caps = bigger.user_str(&case.user).unwrap().clone();
        let class = bigger.classes.iter().next().unwrap().clone();
        for attr in &class.attrs {
            caps.grant(FnRef::read(attr.name.clone()));
        }
        bigger.users.insert(case.user.clone().into(), caps);

        for req in &case.requirements {
            let small = analyze(&case.schema, req).unwrap();
            let big = analyze(&bigger, req).unwrap();
            if small.is_violated() {
                prop_assert!(big.is_violated(), "{req} lost its violation after granting more");
            }
        }
    }
}

// --------------------------------------------- requirement parsing totality

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Requirement display/parse round-trip.
    #[test]
    fn requirement_round_trip(
        attr in "[a-c]",
        user in "[uv]",
        cap in prop_oneof![Just("ti"), Just("pi"), Just("ta"), Just("pa")],
    ) {
        let text = format!("({user}, r_{attr}(x) : {cap})");
        let req = parse_requirement(&text).unwrap();
        let printed = req.to_string();
        let reparsed = parse_requirement(&printed).unwrap();
        prop_assert_eq!(req, reparsed);
    }
}

// ------------------------------------------- P9: certification totality

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// P9: every proof-carrying closure over the random corpus certifies,
    /// and the certificate accounts for every term exactly once.
    #[test]
    fn random_closures_certify(seed in 0u64..5000) {
        let case = random_case(seed, &RandomSpec::default());
        let caps = case.schema.user_str(&case.user).unwrap();
        let prog = NProgram::unfold(&case.schema, caps).unwrap();
        let closure = Closure::compute(&prog).unwrap();
        let cert = closure
            .certify(&prog, &secflow::rules::RuleConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: certification failed: {e}"));
        prop_assert_eq!(cert.terms_checked, closure.len());
        prop_assert_eq!(cert.axioms + cert.derived, cert.terms_checked);
        let counted: u64 = cert.rule_checks.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(counted as usize, cert.terms_checked);
    }
}

// --------------------------------------------- JSON string round-trips

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary strings — astral-plane characters included — survive a
    /// write/parse round-trip through the metrics JSON codec, in both the
    /// raw-UTF-8 form the writer emits and the `\uXXXX` surrogate-pair
    /// escape form other producers emit.
    #[test]
    fn json_strings_round_trip(s in ".{0,40}", astral in 0u32..0x14_0000) {
        use secflow_obs::Json;
        let mut text = s;
        if let Some(c) = char::from_u32(astral) {
            text.push(c);
        }
        let v = Json::str(&text);
        prop_assert_eq!(Json::parse(&v.to_string()).unwrap(), v.clone());
        // Re-encode every char as an escape (surrogate pairs beyond the
        // BMP), which the parser must decode back to the same string.
        let mut escaped = String::from("\"");
        for c in text.chars() {
            let mut units = [0u16; 2];
            for unit in c.encode_utf16(&mut units) {
                escaped.push_str(&format!("\\u{:04X}", unit));
            }
        }
        escaped.push('"');
        prop_assert_eq!(Json::parse(&escaped).unwrap(), v);
    }
}
