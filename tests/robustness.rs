//! Robustness properties: no public entry point may panic on arbitrary
//! input — parsers return errors, the evaluator returns `RuntimeError`s.

use oodb_engine::ops::eval_basic;
use oodb_lang::{parse_expr, parse_query, parse_requirement, parse_schema, BasicOp};
use oodb_model::Value;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The schema parser never panics, whatever the input.
    #[test]
    fn schema_parser_total(src in ".{0,200}") {
        let _ = parse_schema(&src);
    }

    /// Near-miss inputs built from the language's own token vocabulary.
    #[test]
    fn schema_parser_total_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("class"), Just("fn"), Just("user"), Just("require"),
                Just("let"), Just("in"), Just("end"), Just("select"),
                Just("from"), Just("where"), Just("new"), Just("("),
                Just(")"), Just("{"), Just("}"), Just(","), Just(":"),
                Just("="), Just("=="), Just(">="), Just("+"), Just("*"),
                Just("x"), Just("C"), Just("f"), Just("r_a"), Just("w_a"),
                Just("int"), Just("bool"), Just("42"), Just("\"s\""),
            ],
            0..24,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_schema(&src);
        let _ = parse_expr(&src);
        let _ = parse_query(&src);
        let _ = parse_requirement(&src);
    }

    /// Basic-function evaluation is total over arbitrary i64 arguments:
    /// division by zero and overflow come back as errors, never panics or
    /// silent wraps.
    #[test]
    fn eval_basic_total_on_ints(a in any::<i64>(), b in any::<i64>()) {
        for op in [
            BasicOp::Add, BasicOp::Sub, BasicOp::Mul, BasicOp::Div,
            BasicOp::Mod, BasicOp::Ge, BasicOp::Gt, BasicOp::Le,
            BasicOp::Lt, BasicOp::EqOp, BasicOp::NeOp,
        ] {
            let _ = eval_basic(op, &[Value::Int(a), Value::Int(b)]);
        }
        let _ = eval_basic(BasicOp::Neg, &[Value::Int(a)]);
    }

    /// Checked arithmetic agrees with i128 ground truth whenever it
    /// succeeds.
    #[test]
    fn eval_basic_matches_wide_arithmetic(a in any::<i64>(), b in any::<i64>()) {
        let cases = [
            (BasicOp::Add, (a as i128) + (b as i128)),
            (BasicOp::Sub, (a as i128) - (b as i128)),
            (BasicOp::Mul, (a as i128) * (b as i128)),
        ];
        for (op, wide) in cases {
            match eval_basic(op, &[Value::Int(a), Value::Int(b)]) {
                Ok(Value::Int(r)) => prop_assert_eq!(r as i128, wide),
                Ok(other) => prop_assert!(false, "non-int result {other}"),
                Err(_) => {
                    // Overflow: the wide result must indeed not fit.
                    prop_assert!(
                        wide > i64::MAX as i128 || wide < i64::MIN as i128,
                        "spurious overflow for {op:?}({a},{b})"
                    );
                }
            }
        }
    }

    /// Expression parsing of arbitrary operator soup never panics, and a
    /// successful parse always pretty-prints to something that re-parses.
    #[test]
    fn parse_print_parse_stability(src in "[a-c0-9+*()<>= ]{0,48}") {
        if let Ok(e) = parse_expr(&src) {
            let printed = e.to_string();
            let again = parse_expr(&printed);
            prop_assert!(again.is_ok(), "printed form failed: `{printed}`");
            prop_assert_eq!(again.unwrap(), e);
        }
    }
}

#[test]
fn deeply_nested_parens_do_not_overflow() {
    // 64 levels parse fine…
    let src = format!("{}1{}", "(".repeat(64), ")".repeat(64));
    assert!(parse_expr(&src).is_ok());
    // …thousands are rejected with a depth error instead of a stack
    // overflow (found by this very test; see parse::MAX_DEPTH).
    let src = format!("{}1{}", "(".repeat(2_000), ")".repeat(2_000));
    let err = parse_expr(&src).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
    // Same guard for set types and let-chains.
    let src = format!(
        "class C {{ x: {}int{} }}",
        "{".repeat(3_000),
        "}".repeat(3_000)
    );
    assert!(parse_schema(&src).is_err());
}

#[test]
fn unicode_and_binary_input_is_rejected_cleanly() {
    for src in ["λx.x", "класс C {}", "\u{0}\u{1}\u{2}", "🦀🦀🦀"] {
        assert!(parse_schema(src).is_err(), "{src:?} should not parse");
    }
}
