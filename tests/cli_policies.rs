//! End-to-end CLI runs over the checked-in policy files in `policies/`.

use secflow_cli::{run, Command};

fn policy(name: &str) -> String {
    format!("{}/policies/{name}.sfl", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_stockbroker_policy_file() {
    let (report, code) = run(&Command::Check {
        file: policy("stockbroker"),
        explain: true,
        jobs: 1,
        full_saturation: false,
    });
    assert_eq!(code, 1);
    assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
    assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
    assert!(report.contains("FLAW  (payroll, w_salary(x, v:ta))"));
    assert!(report.contains("ok    (safe_payroll, w_salary(x, v:ta))"));
    // --explain prints a Figure-1 style derivation.
    assert!(report.contains("(axiom for =)"));
    assert!(report.contains("4 requirement(s), 2 violated"));
}

#[test]
fn check_hospital_policy_file() {
    let (report, code) = run(&Command::Check {
        file: policy("hospital"),
        explain: false,
        jobs: 1,
        full_saturation: false,
    });
    assert_eq!(code, 1);
    assert!(report.contains("FLAW  (auditor, r_bill(x):ti)"));
    assert!(report.contains("ok    (safe_auditor, r_bill(x):ti)"));
}

#[test]
fn bank_policy_shows_pessimism() {
    // The static check flags the self-referential bumpLimit (the paper's
    // §3.3 always-equal assumption)…
    let (report, code) = run(&Command::Check {
        file: policy("bank"),
        explain: false,
        jobs: 1,
        full_saturation: false,
    });
    assert_eq!(code, 1);
    assert!(report.contains("FLAW  (teller, r_balance(x):ti)"));
    assert!(report.contains("FLAW  (flawed_teller, r_balance(x):ti)"));
    assert!(report.contains("ok    (teller, w_limit(x, v:ta))"));

    // …while the bounded attacker only realises the raw-write variant.
    let (report, code) = run(&Command::Attack {
        file: policy("bank"),
        steps: 4,
    });
    assert_eq!(code, 1);
    assert!(report.contains("not realised (teller, r_balance(x):ti)"));
    assert!(report.contains("REALISED (flawed_teller, r_balance(x):ti)"));
}

#[test]
fn unfold_stockbroker_policy_file() {
    let (report, code) = run(&Command::Unfold {
        file: policy("stockbroker"),
        user: "clerk".into(),
    });
    assert_eq!(code, 0);
    assert!(report.contains("7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker)))"));
}

#[test]
fn fix_stockbroker_policy_file() {
    let (report, code) = run(&Command::Fix {
        file: policy("stockbroker"),
    });
    assert_eq!(code, 1);
    assert!(report.contains("revoke {w_budget}"));
}

#[test]
fn missing_file_exits_two() {
    let (report, code) = run(&Command::Check {
        file: policy("does_not_exist"),
        explain: false,
        jobs: 1,
        full_saturation: false,
    });
    assert_eq!(code, 2);
    assert!(report.contains("cannot read"));
}

#[test]
fn full_saturation_matches_demand_on_policy_files() {
    for name in ["stockbroker", "hospital", "bank"] {
        let demand = run(&Command::Check {
            file: policy(name),
            explain: false,
            jobs: 1,
            full_saturation: false,
        });
        let full = run(&Command::Check {
            file: policy(name),
            explain: false,
            jobs: 1,
            full_saturation: true,
        });
        assert_eq!(demand, full, "{name}: --full-saturation changed the output");
    }
}

#[test]
fn usage_documents_full_saturation() {
    assert!(secflow_cli::USAGE.contains("--full-saturation"));
}

#[test]
fn fmt_policy_files_round_trip() {
    for name in ["stockbroker", "hospital", "bank"] {
        let (report, code) = run(&Command::Fmt { file: policy(name) });
        assert_eq!(code, 0, "{name}");
        // The pretty-printed output re-parses and re-checks.
        secflow_cli::load_str(&report).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
