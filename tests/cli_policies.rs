//! End-to-end CLI runs over the checked-in policy files in `policies/`.

use secflow_cli::{run, Command};

fn policy(name: &str) -> String {
    format!("{}/policies/{name}.sfl", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_stockbroker_policy_file() {
    let (report, code) = run(&Command::Check {
        file: policy("stockbroker"),
        explain: true,
        jobs: 1,
        full_saturation: false,
        certify: false,
        stream: false,
        ndjson: false,
    });
    assert_eq!(code, 1);
    assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
    assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
    assert!(report.contains("FLAW  (payroll, w_salary(x, v:ta))"));
    assert!(report.contains("ok    (safe_payroll, w_salary(x, v:ta))"));
    // --explain prints a Figure-1 style derivation.
    assert!(report.contains("(axiom for =)"));
    assert!(report.contains("4 requirement(s), 2 violated"));
}

#[test]
fn check_hospital_policy_file() {
    let (report, code) = run(&Command::Check {
        file: policy("hospital"),
        explain: false,
        jobs: 1,
        full_saturation: false,
        certify: false,
        stream: false,
        ndjson: false,
    });
    assert_eq!(code, 1);
    assert!(report.contains("FLAW  (auditor, r_bill(x):ti)"));
    assert!(report.contains("ok    (safe_auditor, r_bill(x):ti)"));
}

#[test]
fn bank_policy_shows_pessimism() {
    // The static check flags the self-referential bumpLimit (the paper's
    // §3.3 always-equal assumption)…
    let (report, code) = run(&Command::Check {
        file: policy("bank"),
        explain: false,
        jobs: 1,
        full_saturation: false,
        certify: false,
        stream: false,
        ndjson: false,
    });
    assert_eq!(code, 1);
    assert!(report.contains("FLAW  (teller, r_balance(x):ti)"));
    assert!(report.contains("FLAW  (flawed_teller, r_balance(x):ti)"));
    assert!(report.contains("ok    (teller, w_limit(x, v:ta))"));

    // …while the bounded attacker only realises the raw-write variant.
    let (report, code) = run(&Command::Attack {
        file: policy("bank"),
        steps: 4,
    });
    assert_eq!(code, 1);
    assert!(report.contains("not realised (teller, r_balance(x):ti)"));
    assert!(report.contains("REALISED (flawed_teller, r_balance(x):ti)"));
}

#[test]
fn unfold_stockbroker_policy_file() {
    let (report, code) = run(&Command::Unfold {
        file: policy("stockbroker"),
        user: "clerk".into(),
    });
    assert_eq!(code, 0);
    assert!(report.contains("7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker)))"));
}

#[test]
fn fix_stockbroker_policy_file() {
    let (report, code) = run(&Command::Fix {
        file: policy("stockbroker"),
    });
    assert_eq!(code, 1);
    assert!(report.contains("revoke {w_budget}"));
}

#[test]
fn missing_file_exits_three() {
    // Input errors get their own exit code, distinct from usage errors (2)
    // and policy violations (1).
    let (report, code) = run(&Command::Check {
        file: policy("does_not_exist"),
        explain: false,
        jobs: 1,
        full_saturation: false,
        certify: false,
        stream: false,
        ndjson: false,
    });
    assert_eq!(code, secflow_cli::exit::INPUT);
    assert!(report.contains("cannot read"));
}

#[test]
fn exit_codes_are_distinct_per_outcome_class() {
    use secflow_cli::exit;
    // 0: a policy whose requirements are all satisfied.
    let (_, ok) = run(&Command::Check {
        file: policy("stockbroker_safe"),
        explain: false,
        jobs: 1,
        full_saturation: false,
        certify: false,
        stream: false,
        ndjson: false,
    });
    // 1: a policy with a flaw.
    let (_, violated) = run(&Command::Check {
        file: policy("stockbroker"),
        explain: false,
        jobs: 1,
        full_saturation: false,
        certify: false,
        stream: false,
        ndjson: false,
    });
    // 2: a usage error (unknown flag) — rejected at parse time; the binary
    // shim maps this to exit::USAGE.
    let usage = secflow_cli::parse_args(&["check".into(), "p.sfl".into(), "--bogus-flag".into()]);
    // 3: an unreadable input file.
    let (_, input) = run(&Command::Check {
        file: policy("does_not_exist"),
        explain: false,
        jobs: 1,
        full_saturation: false,
        certify: false,
        stream: false,
        ndjson: false,
    });
    assert_eq!(ok, exit::OK);
    assert_eq!(violated, exit::VIOLATION);
    assert!(usage.is_err(), "unknown flags must be usage errors");
    assert_eq!(input, exit::INPUT);
    // The five documented codes are pairwise distinct.
    let codes = [
        exit::OK,
        exit::VIOLATION,
        exit::USAGE,
        exit::INPUT,
        exit::CERTIFY,
    ];
    for (i, a) in codes.iter().enumerate() {
        for b in &codes[i + 1..] {
            assert_ne!(a, b, "exit codes must stay distinct");
        }
    }
}

#[test]
fn certify_passes_on_every_policy_file() {
    for name in ["stockbroker", "hospital", "bank"] {
        let plain = run(&Command::Check {
            file: policy(name),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        });
        let (report, code) = run(&Command::Check {
            file: policy(name),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: true,
            stream: false,
            ndjson: false,
        });
        assert_eq!(code, plain.1, "{name}: --certify changed the exit code");
        assert!(
            report.starts_with(&plain.0),
            "{name}: --certify changed the verdict lines"
        );
        assert!(
            report.contains("certified: "),
            "{name}: missing certify summary"
        );
    }
}

#[test]
fn full_saturation_matches_demand_on_policy_files() {
    for name in ["stockbroker", "hospital", "bank"] {
        let demand = run(&Command::Check {
            file: policy(name),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        });
        let full = run(&Command::Check {
            file: policy(name),
            explain: false,
            jobs: 1,
            full_saturation: true,
            certify: false,
            stream: false,
            ndjson: false,
        });
        assert_eq!(demand, full, "{name}: --full-saturation changed the output");
    }
}

#[test]
fn usage_documents_full_saturation() {
    assert!(secflow_cli::USAGE.contains("--full-saturation"));
}

#[test]
fn fmt_policy_files_round_trip() {
    for name in ["stockbroker", "hospital", "bank"] {
        let (report, code) = run(&Command::Fmt { file: policy(name) });
        assert_eq!(code, 0, "{name}");
        // The pretty-printed output re-parses and re-checks.
        secflow_cli::load_str(&report).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

fn audit(file: String, format: secflow_cli::AuditFormat) -> (String, i32) {
    run(&Command::Audit {
        file,
        format,
        severity: None,
        mode: secflow::WalkMode::Backward,
        max_depth: 64,
        max_paths: 16,
        jobs: 1,
    })
}

#[test]
fn audit_exit_codes_cover_every_outcome_class() {
    use secflow_cli::{exit, AuditFormat};
    // 0: clean policy, nothing to report.
    let (out, clean) = audit(policy("stockbroker_safe"), AuditFormat::Text);
    assert_eq!(clean, exit::OK, "{out}");
    assert!(out.contains("0 flaw path(s)"));
    // 1: the paper's flawed policy, with rendered provenance.
    let (out, flawed) = audit(policy("stockbroker"), AuditFormat::Text);
    assert_eq!(flawed, exit::VIOLATION);
    assert!(out.contains("FLAW  (clerk, r_salary(x):ti)"));
    assert!(out.contains("<- sink"));
    assert!(out.contains("<- source"));
    // 3: unreadable input.
    let (out, missing) = audit(policy("no_such_policy"), AuditFormat::Text);
    assert_eq!(missing, exit::INPUT);
    assert!(out.contains("error"));
    // 4: a corrupted proof store (driven through the library surface, the
    // only way to corrupt memory between analysis and rendering).
    let src = std::fs::read_to_string(policy("stockbroker")).unwrap();
    let schema = secflow_cli::load_str(&src).unwrap();
    let mut outcome = secflow_cli::audit_batch(&schema, 1);
    let (_, closure) = outcome.groups[0].artifacts.as_mut().unwrap();
    let t = closure
        .iter()
        .find(|t| matches!(t, secflow::Term::Ta(_)))
        .expect("closure has a ta term");
    assert!(closure.replace_proof(&t, "rule for =", vec![]));
    let opts = secflow_cli::AuditOptions {
        policy: policy("stockbroker"),
        format: AuditFormat::Text,
        severity: None,
        provenance: secflow::ProvenanceOptions::default(),
    };
    let (out, corrupted) = secflow_cli::render_audit(&schema, &outcome, &opts);
    assert_eq!(corrupted, exit::CERTIFY);
    assert!(out.contains("certification FAILED"));
    assert!(!out.contains("<- sink"), "no paths from uncertified proofs");
}

#[test]
fn audit_agrees_with_check_on_every_policy_file() {
    use secflow_cli::AuditFormat;
    for name in ["stockbroker", "stockbroker_safe", "hospital", "bank"] {
        let (_, check_code) = run(&Command::Check {
            file: policy(name),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        });
        let (_, audit_code) = audit(policy(name), AuditFormat::Text);
        assert_eq!(
            audit_code, check_code,
            "{name}: audit and check verdicts diverge"
        );
    }
}

#[test]
fn usage_documents_audit() {
    assert!(secflow_cli::USAGE.contains("audit"));
    assert!(secflow_cli::USAGE.contains("--severity"));
    assert!(secflow_cli::USAGE.contains("--trace"));
}

#[test]
fn stream_ndjson_artifact_flags_stay_usage_errors() {
    // `--stream --format=ndjson` buffers no per-group artifacts, so the
    // artifact-hungry flags must keep being rejected at parse time — the
    // binary shim maps these to exit 2 (USAGE), never to a late runtime
    // failure with a different class.
    fn args(extra: &str) -> Vec<String> {
        ["check", "p.sfl", "--stream", "--format=ndjson", extra]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
    let explain = secflow_cli::parse_args(&args("--explain"));
    let certify = secflow_cli::parse_args(&args("--certify"));
    assert!(explain.is_err(), "--stream --explain must be a usage error");
    assert!(certify.is_err(), "--stream --certify must be a usage error");
    // The message names the conflicting flag so scripts fail loudly.
    assert!(explain.unwrap_err().contains("--stream"));
    assert!(certify.unwrap_err().contains("--stream"));
    // `--format=ndjson` without `--stream` is equally a parse-time reject.
    let bare: Vec<String> = ["check", "p.sfl", "--format=ndjson"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(secflow_cli::parse_args(&bare).is_err());
}

#[test]
fn serve_exit_code_classes_are_preserved() {
    use secflow_cli::exit;
    // Usage errors (exit 2 via the shim): missing file, stray flag.
    assert!(secflow_cli::parse_args(&["serve".into()]).is_err());
    assert!(secflow_cli::parse_args(&["serve".into(), "p.sfl".into(), "--jobs".into()]).is_err());
    // Input error (exit 3): unreadable policy file.
    let (report, code) = run(&Command::Serve {
        file: policy("does_not_exist"),
    });
    assert_eq!(code, exit::INPUT);
    assert!(report.contains("cannot read"));
    // A bad *request* is not a process failure: the session answers with an
    // error record and still exits 0 on shutdown.
    let src = std::fs::read_to_string(policy("stockbroker")).unwrap();
    let schema = secflow_cli::load_str(&src).unwrap();
    let (out, code) =
        secflow_cli::serve_session(&schema, [r#"{"op":"frobnicate"}"#, r#"{"op":"shutdown"}"#]);
    assert_eq!(code, exit::OK);
    assert!(out.contains("\"error\":"));
    assert!(out.contains("\"shutdown\":"));
}

#[test]
fn serve_session_maintains_stockbroker_verdicts() {
    // Drive the real stockbroker policy through a grant/revoke session:
    // revoking the flaw-carrying capability flips the verdict delta, and
    // re-granting it flips it back — the scripted CI smoke runs the same
    // session through the binary.
    let src = std::fs::read_to_string(policy("stockbroker")).unwrap();
    let schema = secflow_cli::load_str(&src).unwrap();
    let (out, code) = secflow_cli::serve_session(
        &schema,
        [
            r#"{"op":"check","user":"clerk"}"#,
            r#"{"op":"revoke","user":"clerk","fn":"w_budget"}"#,
            r#"{"op":"grant","user":"clerk","fn":"w_budget"}"#,
            r#"{"op":"shutdown"}"#,
        ],
    );
    assert_eq!(code, secflow_cli::exit::OK);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 5, "ready + 4 responses:\n{out}");
    assert!(lines[1].contains("\"status\":\"violated\""));
    assert!(lines[2].contains("\"changed\":true"));
    assert!(lines[2].contains("\"status\":\"satisfied\""));
    assert!(lines[3].contains("\"status\":\"violated\""));
}

#[test]
fn usage_documents_serve() {
    assert!(secflow_cli::USAGE.contains("serve"));
    assert!(secflow_cli::USAGE.contains("shutdown"));
}
