//! Differential testing of the work-stealing batch scheduler and the
//! streaming verdict path.
//!
//! The determinism contract of the population-scale pipeline: per-group
//! analysis is a pure function of the group, so the *non-streaming*
//! `analyze_batch` output must be byte-identical whatever the `jobs` count
//! or schedule — and identical to running `analyze` per requirement, which
//! is the semantics the pre-pool driver pinned. Streamed records may
//! arrive in any completion order, but reassembling them by `group_index`
//! must reproduce the buffered verdict vector exactly. The closure-cache
//! LRU upgrade is pinned here too: on a Zipf-skewed population with an
//! undersized cache, touch-on-hit retention must beat a FIFO replay of the
//! same access sequence.

use proptest::prelude::*;
use secflow::algorithm::{
    analyze, analyze_batch, analyze_batch_streaming, AnalysisConfig, BatchOptions, BatchSchedule,
    ClosureCache, GroupRecord,
};
use secflow::report::Verdict;
use secflow_workloads::fixtures;
use secflow_workloads::scale::{
    clustered_giants, multi_user, multi_user_deep, skewed_groups, zipf_population, BatchCase,
};
use std::sync::Mutex;

/// Canonical rendering of a batch verdict vector: the full `Debug` form,
/// witnesses included, so any drift in violation content — not just the
/// flag — fails the comparison.
fn render_verdicts(verdicts: &[Result<Verdict, secflow::algorithm::AnalysisError>]) -> String {
    format!("{verdicts:?}")
}

/// Every workload family the repo ships, at differential-test sizes.
fn families() -> Vec<(&'static str, BatchCase)> {
    let stock = fixtures::stockbroker();
    let stock_reqs = stock.requirements.clone();
    vec![
        ("multi_user", multi_user(6, 8)),
        ("multi_user_deep", multi_user_deep(5, 6)),
        ("zipf_population", zipf_population(300, 16, 0xBEEF)),
        ("skewed_groups", skewed_groups(17, 24, 4)),
        ("clustered_giants", clustered_giants(19, 4, 16, 3)),
        (
            "stockbroker",
            BatchCase {
                schema: stock,
                requirements: stock_reqs,
            },
        ),
    ]
}

/// The pre-pool anchor: `analyze` per requirement, in input order.
fn serial_reference(case: &BatchCase) -> String {
    let verdicts: Vec<_> = case
        .requirements
        .iter()
        .map(|r| analyze(&case.schema, r))
        .collect();
    render_verdicts(&verdicts)
}

/// Buffered batch output under an explicit jobs/schedule pair.
fn batch_under(case: &BatchCase, jobs: usize, schedule: BatchSchedule) -> String {
    let opts = BatchOptions {
        jobs,
        schedule,
        ..BatchOptions::default()
    };
    let out = analyze_batch(
        &case.schema,
        &case.requirements,
        &AnalysisConfig::default(),
        &opts,
    );
    render_verdicts(&out.verdicts)
}

/// Streamed records reassembled into the buffered verdict order.
fn streamed_under(case: &BatchCase, jobs: usize, schedule: BatchSchedule) -> String {
    let opts = BatchOptions {
        jobs,
        schedule,
        ..BatchOptions::default()
    };
    let sink: Mutex<Vec<GroupRecord>> = Mutex::new(Vec::new());
    let summary = analyze_batch_streaming(
        &case.schema,
        &case.requirements,
        &AnalysisConfig::default(),
        &opts,
        None,
        &sink,
    );
    let records = sink.into_inner().expect("no panics hold the sink lock");
    assert_eq!(
        records.len(),
        summary.groups,
        "every group must emit exactly one record"
    );
    let mut verdicts: Vec<Option<Result<Verdict, secflow::algorithm::AnalysisError>>> =
        (0..case.requirements.len()).map(|_| None).collect();
    for record in records {
        for (i, v) in record.verdicts {
            assert!(verdicts[i].is_none(), "requirement {i} delivered twice");
            verdicts[i] = Some(v);
        }
    }
    let verdicts: Vec<_> = verdicts
        .into_iter()
        .map(|v| v.expect("every requirement delivered"))
        .collect();
    render_verdicts(&verdicts)
}

#[test]
fn batch_is_byte_identical_across_jobs_and_schedules() {
    for (name, case) in families() {
        let reference = serial_reference(&case);
        for jobs in [1usize, 2, 3, 8] {
            for schedule in [BatchSchedule::Fixed, BatchSchedule::WorkStealing] {
                assert_eq!(
                    batch_under(&case, jobs, schedule),
                    reference,
                    "{name}: batch output drifted at jobs={jobs}, {schedule:?}"
                );
            }
        }
    }
}

#[test]
fn streaming_reassembles_to_the_buffered_output() {
    for (name, case) in families() {
        let reference = serial_reference(&case);
        for jobs in [1usize, 4] {
            for schedule in [BatchSchedule::Fixed, BatchSchedule::WorkStealing] {
                assert_eq!(
                    streamed_under(&case, jobs, schedule),
                    reference,
                    "{name}: streamed records drifted at jobs={jobs}, {schedule:?}"
                );
            }
        }
    }
}

/// Aggregate closure stats must not depend on the schedule: totals and
/// maxima are folded per-worker and merged at join, and the merge contract
/// (sum vs max vs sticky, pinned field-by-field in the core suite) makes
/// the fold order invisible.
#[test]
fn streamed_stats_totals_are_schedule_invariant() {
    let case = skewed_groups(17, 24, 4);
    let totals = |jobs: usize, schedule: BatchSchedule| {
        let opts = BatchOptions {
            jobs,
            schedule,
            collect_stats: true,
            ..BatchOptions::default()
        };
        let sink: Mutex<Vec<GroupRecord>> = Mutex::new(Vec::new());
        let summary = analyze_batch_streaming(
            &case.schema,
            &case.requirements,
            &AnalysisConfig::default(),
            &opts,
            None,
            &sink,
        );
        (
            summary.closure.total_terms(),
            summary.closure.derive_calls,
            summary.closure.rounds,
            summary.closure.worklist_peak,
            summary.occurrences,
        )
    };
    let reference = totals(1, BatchSchedule::WorkStealing);
    for jobs in [2usize, 8] {
        for schedule in [BatchSchedule::Fixed, BatchSchedule::WorkStealing] {
            assert_eq!(
                totals(jobs, schedule),
                reference,
                "stats totals drifted at jobs={jobs}, {schedule:?}"
            );
        }
    }
}

/// FIFO replay of a keyed access sequence at a fixed capacity — the
/// eviction policy the cache had before the LRU upgrade.
fn fifo_hits(keys: &[usize], capacity: usize) -> u64 {
    let mut resident: Vec<usize> = Vec::new();
    let mut hits = 0u64;
    for &k in keys {
        if resident.contains(&k) {
            hits += 1;
            continue;
        }
        if resident.len() == capacity {
            resident.remove(0);
        }
        resident.push(k);
    }
    hits
}

/// The LRU upgrade earns its keep on exactly the population workload: with
/// fewer cache slots than fingerprints, touch-on-hit keeps the Zipf-hot
/// profiles resident while FIFO churns them out on schedule.
#[test]
fn lru_beats_fifo_on_the_zipf_population() {
    let users = 3_000;
    let fingerprints = 64;
    let capacity = 16;
    let case = zipf_population(users, fingerprints, 0x5EED);
    // Each user's requirement goal names its profile's probed attribute, so
    // the requirement list in group order doubles as the cache key
    // sequence (serial jobs=1 keeps the access order deterministic).
    let keys: Vec<usize> = case
        .requirements
        .iter()
        .map(|r| {
            let t = r.target.to_string();
            let digits: String = t.chars().filter(|c| c.is_ascii_digit()).collect();
            digits.parse().expect("profile index in the goal name")
        })
        .collect();
    assert_eq!(keys.len(), users);

    let cache = ClosureCache::with_shards(capacity, 1);
    let opts = BatchOptions {
        jobs: 1,
        ..BatchOptions::default()
    };
    analyze_batch_streaming(
        &case.schema,
        &case.requirements,
        &AnalysisConfig::default(),
        &opts,
        Some(&cache),
        &Mutex::new(Vec::new()),
    );
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        users as u64,
        "one lookup per group"
    );
    assert!(stats.evictions > 0, "undersized cache must evict");

    let fifo = fifo_hits(&keys, capacity);
    assert!(
        stats.hits > fifo,
        "LRU must beat FIFO on the Zipf population: lru={} fifo={fifo}",
        stats.hits
    );
}

proptest! {
    /// Random batch shapes — including the pathological one-giant-group
    /// skew — agree across `jobs` ∈ {1, 2, 8}, both schedules, and
    /// streaming vs. buffered delivery.
    #[test]
    fn random_batches_agree_across_schedulers(
        family in 0usize..3,
        users in 1usize..10,
        a in 2usize..12,
        b in 1usize..6,
        seed in 0u64..1u64 << 48,
    ) {
        let case = match family {
            0 => multi_user(users, a),
            // One giant group (width a + tiny floor) among tiny ones.
            1 => skewed_groups(users, a + 8, b),
            _ => zipf_population(users * 20, a, seed),
        };
        let reference = serial_reference(&case);
        for jobs in [1usize, 2, 8] {
            for schedule in [BatchSchedule::Fixed, BatchSchedule::WorkStealing] {
                prop_assert_eq!(
                    &batch_under(&case, jobs, schedule),
                    &reference,
                    "family {} drifted buffered at jobs={}, {:?}",
                    family, jobs, schedule
                );
                prop_assert_eq!(
                    &streamed_under(&case, jobs, schedule),
                    &reference,
                    "family {} drifted streamed at jobs={}, {:?}",
                    family, jobs, schedule
                );
            }
        }
    }
}
