//! Differential testing of the chunked bitset kernels against the
//! retained scalar reference (`secflow::kernels::reference`).
//!
//! The chunked kernels process rows in fixed [`CHUNK_WORDS`]-lane blocks
//! with the exception set precompiled into branch-free `(word, mask)`
//! slots; the reference keeps the original word-at-a-time loops with a
//! linear exception scan. Both must agree bit-for-bit on every row pair
//! and exception set, so random duels pin the kernels to the scalar
//! semantics the delta engine was verified against.

use proptest::prelude::*;
use secflow::kernels::{self, padded_words, reference, ExceptMask, CHUNK_BITS, CHUNK_WORDS};

/// A chunk-padded row with the given bits set.
fn row_with(bits: &[usize], words: usize) -> Vec<u64> {
    let mut row = vec![0u64; words];
    for &b in bits {
        row[b / 64] |= 1u64 << (b % 64);
    }
    row
}

/// Materialize `a \ (b ∪ except)` the slow, obvious way: bit by bit.
fn naive_diff(a: &[u64], b: &[u64], except: &[usize], words: usize) -> Vec<u64> {
    let mut out = vec![0u64; words];
    for bit in 0..words * 64 {
        let get = |row: &[u64]| row[bit / 64] >> (bit % 64) & 1 != 0;
        if get(a) && !get(b) && !except.contains(&bit) {
            out[bit / 64] |= 1u64 << (bit % 64);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `row_diff_is_empty` agrees with the scalar reference on random
    /// rows and exception sets of every supported arity (0, 1, 2).
    #[test]
    fn diff_emptiness_duels_the_scalar_reference(
        a_bits in proptest::collection::vec(0usize..CHUNK_BITS * 3, 0..24),
        b_bits in proptest::collection::vec(0usize..CHUNK_BITS * 3, 0..24),
        except in proptest::collection::vec(0usize..CHUNK_BITS * 3, 0..3),
    ) {
        let words = padded_words(CHUNK_BITS * 3);
        prop_assert_eq!(words % CHUNK_WORDS, 0);
        let a = row_with(&a_bits, words);
        let b = row_with(&b_bits, words);
        let chunked = kernels::row_diff_is_empty(&a, &b, ExceptMask::from_bits(&except));
        let scalar = reference::row_diff_is_empty(&a, &b, &except);
        prop_assert_eq!(chunked, scalar, "a={:?} b={:?} except={:?}", a_bits, b_bits, except);
    }

    /// `row_diff_into` materializes exactly the difference the bit-by-bit
    /// model computes, and its emptiness flag matches `row_diff_is_empty`.
    #[test]
    fn materialized_diff_matches_the_bitwise_model(
        a_bits in proptest::collection::vec(0usize..CHUNK_BITS * 2, 0..24),
        b_bits in proptest::collection::vec(0usize..CHUNK_BITS * 2, 0..24),
        except in proptest::collection::vec(0usize..CHUNK_BITS * 2, 0..3),
    ) {
        let words = padded_words(CHUNK_BITS * 2);
        let a = row_with(&a_bits, words);
        let b = row_with(&b_bits, words);
        let mask = ExceptMask::from_bits(&except);
        let mut out = Vec::new();
        let any = kernels::row_diff_into(&a, &b, mask, &mut out);
        let expected = naive_diff(&a, &b, &except, words);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(any, expected.iter().any(|w| *w != 0));
        prop_assert_eq!(any, !kernels::row_diff_is_empty(&a, &b, mask));
    }

    /// `row_copy_except_into` is `row_diff_into` against an all-zero
    /// subtrahend.
    #[test]
    fn copy_except_is_diff_against_zero(
        a_bits in proptest::collection::vec(0usize..CHUNK_BITS * 2, 0..24),
        except in proptest::collection::vec(0usize..CHUNK_BITS * 2, 0..3),
    ) {
        let words = padded_words(CHUNK_BITS * 2);
        let a = row_with(&a_bits, words);
        let zero = vec![0u64; words];
        let mask = ExceptMask::from_bits(&except);
        let mut via_copy = Vec::new();
        let mut via_diff = Vec::new();
        let any_copy = kernels::row_copy_except_into(&a, mask, &mut via_copy);
        let any_diff = kernels::row_diff_into(&a, &zero, mask, &mut via_diff);
        prop_assert_eq!(via_copy, via_diff);
        prop_assert_eq!(any_copy, any_diff);
    }

    /// `row_or_into` agrees with the scalar reference.
    #[test]
    fn row_or_duels_the_scalar_reference(
        a_bits in proptest::collection::vec(0usize..CHUNK_BITS * 2, 0..24),
        b_bits in proptest::collection::vec(0usize..CHUNK_BITS * 2, 0..24),
    ) {
        let words = padded_words(CHUNK_BITS * 2);
        let src = row_with(&b_bits, words);
        let mut chunked = row_with(&a_bits, words);
        let mut scalar = chunked.clone();
        kernels::row_or_into(&mut chunked, &src);
        reference::row_or_into(&mut scalar, &src);
        prop_assert_eq!(chunked, scalar);
    }

    /// Single-bit probes and clears round-trip through the row helpers.
    #[test]
    fn bit_probe_and_clear_are_inverse(
        bits in proptest::collection::vec(0usize..CHUNK_BITS, 1..8),
    ) {
        let mut bits = bits;
        bits.sort_unstable();
        bits.dedup();
        let words = padded_words(CHUNK_BITS);
        let mut row = row_with(&bits, words);
        for &b in &bits {
            prop_assert!(kernels::row_bit(&row, b));
            kernels::row_clear_bit(&mut row, b);
            prop_assert!(!kernels::row_bit(&row, b));
        }
        prop_assert!(row.iter().all(|w| *w == 0), "every set bit was cleared");
    }
}

/// The exception mask holds at most two slots — the widest set the engine
/// compiles (`end`/`via` in the pi* join) — and coinciding slots behave
/// like a single exception.
#[test]
fn except_mask_slots_may_coincide() {
    let words = padded_words(CHUNK_BITS);
    let a = row_with(&[7, 9], words);
    let b = row_with(&[], words);
    assert!(kernels::row_diff_is_empty(&a, &b, ExceptMask::two(7, 9)));
    assert!(!kernels::row_diff_is_empty(&a, &b, ExceptMask::two(7, 7)));
    assert!(kernels::row_diff_is_empty(
        &row_with(&[7], words),
        &b,
        ExceptMask::two(7, 7)
    ));
}
