//! Differential testing of incremental grant/revoke maintenance against
//! from-scratch recomputation.
//!
//! The contract of [`IncrementalUser`] is *identity*: after any sequence of
//! edits, the maintained closure holds exactly the same term **set** as a
//! fresh full saturation of the edited capability list (insertion order
//! legitimately differs — retraction replays survivors before the frontier),
//! its recorded proofs pass the certifying checker, and verdicts — read
//! through [`CanonicalView`] on *both* sides, so witness selection is
//! order-independent — match byte-for-byte. All of it in both delta
//! saturation modes, `SemiNaive` and `Chunked`.

use proptest::prelude::*;
use secflow::algorithm::{check_with_occurrences, occurrences, AnalysisConfig};
use secflow::closure::{Closure, ProofMode, SaturationMode};
use secflow::incremental::{CanonicalView, IncrementalUser};
use secflow::term::Term;
use secflow::unfold::NProgram;
use secflow_workloads::fixtures;
use secflow_workloads::scale::{self, EditOp};

/// Recompute the user's closure from scratch for the *current* capability
/// list and assert the incremental state matches: term set, certification,
/// and canonical verdict.
fn assert_matches_scratch_with(
    schema: &oodb_lang::Schema,
    inc: &IncrementalUser,
    config: &AnalysisConfig,
    req: &oodb_lang::requirement::Requirement,
    label: &str,
) {
    let prog = NProgram::unfold_with_limit(schema, inc.caps(), config.node_limit)
        .unwrap_or_else(|e| panic!("{label}: scratch unfold: {e}"));
    let scratch = Closure::compute_with_saturation(
        &prog,
        &config.rules,
        config.term_limit,
        ProofMode::Full,
        config.saturation,
    )
    .unwrap_or_else(|e| panic!("{label}: scratch closure: {e}"));

    // Term-set identity.
    let mut a: Vec<Term> = inc.closure().iter().collect();
    let mut b: Vec<Term> = scratch.iter().collect();
    a.sort();
    b.sort();
    assert_eq!(
        a.len(),
        b.len(),
        "{label}: incremental has {} terms, scratch {}",
        a.len(),
        b.len()
    );
    assert_eq!(a, b, "{label}: closures diverge as term sets");

    // The translated/absorbed proofs must still be valid rule instances of
    // the *edited* program.
    inc.closure()
        .certify(inc.program(), &config.rules)
        .unwrap_or_else(|e| panic!("{label}: incremental closure fails certification: {e}"));

    // Verdict identity through canonical witness selection on both sides.
    let occs = occurrences(&prog, &req.target);
    let want = check_with_occurrences(&prog, &CanonicalView(&scratch), req, &occs);
    let got = inc.check(req);
    assert_eq!(got, want, "{label}: verdicts diverge");
}

/// Replay an edit-trace case in one saturation mode, checking identity
/// after every single edit.
fn replay(case: &scale::EditTraceCase, sat: SaturationMode, label: &str) {
    let config = AnalysisConfig {
        saturation: sat,
        ..AnalysisConfig::default()
    };
    let mut inc = IncrementalUser::new(&case.schema, &case.requirement.user, &config)
        .unwrap_or_else(|e| panic!("{label}: materialize: {e}"));
    assert_matches_scratch_with(&case.schema, &inc, &config, &case.requirement, label);
    for (i, op) in case.edits.iter().enumerate() {
        let step = format!("{label}, edit {i} ({op:?})");
        let outcome = match op {
            EditOp::Grant(f) => inc.grant(&case.schema, f),
            EditOp::Revoke(f) => inc.revoke(&case.schema, f),
        }
        .unwrap_or_else(|e| panic!("{step}: edit failed: {e}"));
        assert!(outcome.changed, "{step}: script ops always change the list");
        assert_matches_scratch_with(&case.schema, &inc, &config, &case.requirement, &step);
    }
}

#[test]
fn edit_trace_identity_semi_naive() {
    let case = scale::edit_trace(8, 24, 11);
    replay(&case, SaturationMode::SemiNaive, "edit_trace(8,24,11) semi");
}

#[test]
fn edit_trace_identity_chunked() {
    let case = scale::edit_trace(8, 24, 11);
    replay(
        &case,
        SaturationMode::Chunked,
        "edit_trace(8,24,11) chunked",
    );
}

/// The dense equality-clique family: a block of always-granted functions
/// whose bodies all read `a0` and compare against a shared `int` parameter,
/// so derived-equality chains cross outer boundaries. Retraction must hold
/// identity here too, not just on the sparse probe family.
#[test]
fn edit_trace_dense_identity_semi_naive() {
    for seed in 0..3u64 {
        let case = scale::edit_trace_dense(3, 4, 6, seed);
        replay(
            &case,
            SaturationMode::SemiNaive,
            &format!("edit_trace_dense(3,4,6,{seed}) semi"),
        );
    }
}

#[test]
fn edit_trace_dense_identity_chunked() {
    for seed in 0..3u64 {
        let case = scale::edit_trace_dense(3, 4, 6, seed);
        replay(
            &case,
            SaturationMode::Chunked,
            &format!("edit_trace_dense(3,4,6,{seed}) chunked"),
        );
    }
}

/// Grant/revoke against the paper's stockbroker fixture: special functions
/// (`r_`/`w_`) and access functions mixed, including revoking a function
/// whose terms feed the flagged verdict — the verdict must flip exactly as
/// a recompute says.
#[test]
fn stockbroker_grant_revoke_round_trip() {
    use oodb_model::FnRef;
    let schema = fixtures::stockbroker();
    let (user, req) = schema
        .requirements
        .first()
        .map(|r| (r.user.clone(), r.clone()))
        .expect("stockbroker declares requirements");
    for sat in [SaturationMode::SemiNaive, SaturationMode::Chunked] {
        let config = AnalysisConfig {
            saturation: sat,
            ..AnalysisConfig::default()
        };
        let mut inc = IncrementalUser::new(&schema, &user, &config).expect("materialize");
        let base_caps = inc.caps().clone();
        let granted: Vec<FnRef> = base_caps.iter().cloned().collect();
        // Revoke everything one by one (closure shrinks to axioms of the
        // remainder), then grant it all back: the final closure must be
        // byte-identical to the starting one.
        let mut start: Vec<Term> = inc.closure().iter().collect();
        start.sort();
        for f in &granted {
            let out = inc.revoke(&schema, f).expect("revoke");
            assert!(out.changed);
            assert_matches_scratch_with(&schema, &inc, &config, &req, &format!("revoke {f}"));
        }
        assert!(inc.caps().is_empty());
        for f in &granted {
            let out = inc.grant(&schema, f).expect("grant");
            assert!(out.changed);
            assert_matches_scratch_with(&schema, &inc, &config, &req, &format!("grant {f}"));
        }
        let mut end: Vec<Term> = inc.closure().iter().collect();
        end.sort();
        assert_eq!(start, end, "{sat:?}: round trip changed the closure");
        assert_eq!(inc.caps(), &base_caps);
    }
}

/// No-op edits (granting a held function, revoking an absent one) must not
/// touch the closure.
#[test]
fn noop_edits_leave_closure_alone() {
    use oodb_model::FnRef;
    let case = scale::edit_trace(4, 0, 3);
    let config = AnalysisConfig::default();
    let mut inc =
        IncrementalUser::new(&case.schema, &case.requirement.user, &config).expect("materialize");
    let before: Vec<Term> = inc.closure().iter().collect();
    let held = FnRef::access("p0");
    let absent = FnRef::access("p5");
    let out = inc.grant(&case.schema, &held).expect("noop grant");
    assert!(!out.changed);
    let out = inc.revoke(&case.schema, &absent).expect("noop revoke");
    assert!(!out.changed);
    let after: Vec<Term> = inc.closure().iter().collect();
    assert_eq!(before, after);
}

/// A failed edit (unknown function) must leave the state untouched and
/// subsequent edits working.
#[test]
fn failed_edit_is_transactional() {
    use oodb_model::FnRef;
    let case = scale::edit_trace(4, 4, 9);
    let config = AnalysisConfig::default();
    let mut inc =
        IncrementalUser::new(&case.schema, &case.requirement.user, &config).expect("materialize");
    let before: Vec<Term> = inc.closure().iter().collect();
    let missing = FnRef::access("no_such_fn");
    assert!(inc.grant(&case.schema, &missing).is_err());
    let after: Vec<Term> = inc.closure().iter().collect();
    assert_eq!(before, after, "failed grant mutated state");
    // The trace still replays to identity afterwards.
    replay(&case, SaturationMode::SemiNaive, "post-failure replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random edit scripts over random widths and seeds, identity after
    /// every edit, in both delta modes.
    #[test]
    fn random_edit_scripts_match_scratch(
        width in 2usize..7,
        edits in 1usize..10,
        seed in 0u64..1_000,
        chunked in any::<bool>(),
    ) {
        let case = scale::edit_trace(width, edits, seed);
        let sat = if chunked { SaturationMode::Chunked } else { SaturationMode::SemiNaive };
        replay(&case, sat, &format!("edit_trace({width},{edits},{seed}) {sat:?}"));
    }
}
