//! Quickstart: declare a schema with a policy, state a security
//! requirement, and run the static analysis.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use oodb_lang::{check_schema, parse_requirement, parse_schema};
use secflow::algorithm::analyze;

fn main() {
    // 1. A schema in the surface syntax: one class, one access function,
    //    one user. The clerk may test accounts against a limit and may
    //    move the limit — but must never learn a balance exactly.
    let schema = parse_schema(
        r#"
        class Account { owner: string, balance: int, limit: int }

        fn overLimit(a: Account): bool {
          r_balance(a) > r_limit(a)
        }

        user clerk { overLimit, w_limit }
        "#,
    )
    .expect("schema parses");
    check_schema(&schema).expect("schema type-checks");

    // 2. A requirement in the paper's notation: the clerk should not have
    //    total inferability on the result of reading `balance`.
    let requirement = parse_requirement("(clerk, r_balance(x) : ti)").expect("requirement parses");

    // 3. Run A(R).
    let verdict = analyze(&schema, &requirement).expect("analysis runs");
    println!("requirement {requirement}: {verdict}");

    if verdict.is_violated() {
        println!();
        println!("The policy is flawed: by repeatedly moving the limit and");
        println!("probing overLimit, the clerk binary-searches the balance.");
        println!("Fix: revoke w_limit, or gate limit changes behind a");
        println!("function whose value the clerk cannot choose.");
    }

    // 4. The repaired policy passes.
    let repaired = parse_schema(
        r#"
        class Account { owner: string, balance: int, limit: int }

        fn overLimit(a: Account): bool {
          r_balance(a) > r_limit(a)
        }

        user clerk { overLimit }
        "#,
    )
    .expect("schema parses");
    check_schema(&repaired).expect("schema type-checks");
    let verdict = analyze(&repaired, &requirement).expect("analysis runs");
    println!();
    println!("after revoking w_limit: {verdict}");
}
