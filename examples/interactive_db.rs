//! Substrate demo: the OODB engine on its own — schema definition, object
//! creation, queries (including the paper's nested select), updates, and
//! capability enforcement.
//!
//! ```text
//! cargo run --example interactive_db
//! ```

use oodb_engine::{Database, Session};
use oodb_lang::parse_schema;
use oodb_model::Value;

fn main() {
    let schema = parse_schema(
        r#"
        class Person { name: string, age: int, child: {Person} }
        class Note { text: string, stars: int }

        fn profile(p: Person): string { "name: " ++ r_name(p) }
        fn isAdult(p: Person): bool { r_age(p) >= 18 }

        user app { profile, isAdult, r_name, r_age, r_child, w_age, new Note, r_text }
        user guest { profile }
        "#,
    )
    .expect("schema parses");
    let mut db = Database::new(schema).expect("schema checks");

    // Seed: John with two children.
    let ann = db
        .create(
            "Person",
            vec![Value::str("Ann"), Value::Int(12), Value::set(vec![])],
        )
        .expect("create");
    let bob = db
        .create(
            "Person",
            vec![Value::str("Bob"), Value::Int(9), Value::set(vec![])],
        )
        .expect("create");
    db.create(
        "Person",
        vec![
            Value::str("John"),
            Value::Int(41),
            Value::set(vec![Value::Obj(ann), Value::Obj(bob)]),
        ],
    )
    .expect("create");

    {
        let mut app = Session::open(&mut db, "app");
        for q in [
            // §2's first query shape.
            "select r_name(p), profile(p) from p in Person where r_age(p) > 20",
            // §2's nested query: names of John's children.
            "select (select r_name(q) from q in r_child(p)) from p in Person \
             where r_name(p) == \"John\"",
            // An update through a special function; items evaluate in order,
            // so the read sees the write.
            "select w_age(p, 13), r_age(p) from p in Person where r_name(p) == \"Ann\"",
            // Object creation from a query: one note per adult (query
            // arguments are atoms — constants or from-clause variables).
            "select new Note(\"seen an adult\", 5) from p in Person where r_age(p) >= 18",
        ] {
            match app.query(q) {
                Ok(out) => println!("app> {q}\n  => {}", out.render()),
                Err(e) => println!("app> {q}\n  !! {e}"),
            }
        }
        println!();
        println!("observation log of `app` ({} entries):", app.log().len());
        for entry in app.log() {
            println!("  {} => {}", entry.query, entry.result);
        }
    }

    println!();
    println!("notes created: {}", db.extent(&"Note".into()).len());
    println!();

    // Capability enforcement: the guest can profile people but not read
    // ages — not even inside a where clause.
    let mut guest = Session::open(&mut db, "guest");
    for q in [
        "select profile(p) from p in Person",
        "select r_age(p) from p in Person",
        "select profile(p) from p in Person where r_age(p) > 18",
    ] {
        match guest.query(q) {
            Ok(out) => println!("guest> {q}\n  => {}", out.render()),
            Err(e) => println!("guest> {q}\n  !! {e}"),
        }
    }
}
