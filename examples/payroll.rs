//! The paper's second running example (§1, §3.1): write-side
//! controllability. The payroll user runs the weekly salary update
//! (`updateSalary`) and can also adjust budgets (`w_budget`) — so by setting
//! a broker's budget first, they choose the salary the update writes.
//!
//! ```text
//! cargo run --example payroll
//! ```

use oodb_engine::Session;
use oodb_lang::parse_requirement;
use oodb_model::Value;
use secflow::algorithm::analyze;
use secflow_workloads::fixtures::{stockbroker, stockbroker_db};

fn main() {
    println!("== the live attack: choosing John's next salary ==");
    let mut db = stockbroker_db();
    let mut session = Session::open(&mut db, "payroll");

    // calcSalary(budget, profit) = budget/10 + profit/2; John's profit is
    // 50, so to pay John 1000 the payroll user sets budget = (1000-25)*10.
    let target = 1000i64;
    let budget = (target - 25) * 10;
    // payroll holds exactly {updateSalary, w_budget}: run the update over
    // the extent, steering John's (the first broker's) salary.
    session
        .query(&format!(
            "select w_budget(b, {budget}), updateSalary(b) from b in Broker"
        ))
        .expect("payroll is authorized");

    let john = Value::Obj(db.extent(&"Broker".into())[0]);
    let salary = db.read_attr(&john, &"salary".into()).expect("read salary");
    println!("John's salary after the 'update': {salary} (attacker chose {target})");
    println!();

    println!("== the static detection ==");
    let schema = stockbroker();
    let req = parse_requirement("(payroll, w_salary(x, v: ta))").expect("parses");
    let verdict = analyze(&schema, &req).expect("runs");
    println!("A(R) for {req}: {verdict}");
    println!();
    println!("The requirement forbids *total alterability* on the value");
    println!("argument of any write to `salary`. Unfolding updateSalary");
    println!("shows the written value is calcSalary(r_budget(b), …); the");
    println!("write-read equality lets ta flow from w_budget's argument");
    println!("into r_budget(b) and on through the arithmetic.");
    println!();

    let req_safe = parse_requirement("(safe_payroll, w_salary(x, v: ta))").expect("parses");
    let verdict = analyze(&schema, &req_safe).expect("runs");
    println!("after revoking w_budget (user safe_payroll): {verdict}");
    println!();
    println!("Note the repair still lets safe_payroll *run* the update —");
    println!("only the ability to steer its input is gone.");
}
