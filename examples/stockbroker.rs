//! The paper's running example end-to-end (§1, §3.1, §4.2):
//!
//! 1. run the clerk's *actual probing attack* against the live database —
//!    the engine permits it, because every invoked function is in the
//!    clerk's capability list;
//! 2. run the static analysis and print the Figure-1 derivation that
//!    detects the same flaw without executing anything.
//!
//! ```text
//! cargo run --example stockbroker
//! ```

use oodb_engine::Session;
use oodb_lang::parse_requirement;
use secflow::algorithm::{check_against, occurrences};
use secflow::closure::Closure;
use secflow::report::{explain, render_derivation};
use secflow::unfold::NProgram;
use secflow_workloads::fixtures::{stockbroker, stockbroker_db};

fn main() {
    let mut db = stockbroker_db();
    println!("== the live attack (engine permits it) ==");
    println!("John's salary is 150; the regulation threshold is 10x salary.");
    println!();

    let mut session = Session::open(&mut db, "clerk");
    // Binary search over the budget: each probe writes a candidate
    // threshold and tests it — §3.1's query shape.
    let mut lo = 0i64;
    let mut hi = 4096i64;
    while lo < hi {
        let mid = (lo + hi) / 2;
        // The clerk's capability list is exactly the paper's
        // {checkBudget, w_budget}: no name filter available, so the probe
        // scans the extent and watches John's row (the first broker).
        let q = format!("select w_budget(b, {mid}), checkBudget(b) from b in Broker");
        let out = session.query(&q).expect("clerk is authorized");
        let over = out.rows[0].0[1] == oodb_model::Value::Bool(true);
        if over {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    println!("probes issued: {}", session.log().len());
    println!("inferred 10*salary = {lo}, so John's salary = {}", lo / 10);
    println!();

    println!("== the static detection (no execution needed) ==");
    let schema = stockbroker();
    let req = parse_requirement("(clerk, r_salary(x) : ti)").expect("requirement parses");
    let caps = schema.user_str("clerk").expect("clerk exists");
    let prog = NProgram::unfold(&schema, caps).expect("unfolds");
    println!("S'(F):");
    for outer in &prog.outers {
        println!("  {}: {}", outer.fn_ref, prog.render(outer.root));
    }
    let closure = Closure::compute(&prog).expect("closure");
    let verdict = check_against(&prog, &closure, &req);
    println!();
    println!("A(R) for {req}: {verdict}");
    println!();
    println!("Figure 1 (machine-derived):");
    if let Some(goal) = closure.ti_witness(5) {
        print!("{}", render_derivation(&prog, &closure, &goal));
    }
    println!();
    println!("{}", explain(&prog, &closure, &verdict));

    // The occurrence list shows where the leak sits.
    let occ = occurrences(&prog, &req.target);
    println!("occurrences of r_salary in S'(F): {}", occ.len());

    // And the repaired policy passes.
    let req_safe = parse_requirement("(safe_clerk, r_salary(x) : ti)").expect("parses");
    let verdict = secflow::algorithm::analyze(&schema, &req_safe).expect("runs");
    println!();
    println!("after revoking w_budget (user safe_clerk): {verdict}");
}
