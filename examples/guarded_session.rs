//! The paper's §5 future-work alternative, running: **dynamic flaw
//! detection** with `secflow-guard`.
//!
//! The static analysis says the clerk's capability *list* is flawed. The
//! guard takes the other trade: let the session run, track which functions
//! the user actually exercises, and deny — before execution — the query
//! that would complete a forbidden capability combination.
//!
//! ```text
//! cargo run --example guarded_session
//! ```

use oodb_engine::Database;
use oodb_lang::parse_schema;
use oodb_model::Value;
use secflow_guard::{static_verdicts, GuardedSession};

fn main() {
    let schema = parse_schema(
        r#"
        class Broker { name: string, salary: int, budget: int }

        fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }

        user clerk { checkBudget, w_budget, r_name }

        require (clerk, r_salary(x) : ti)
        "#,
    )
    .expect("schema parses");

    println!("== static verdicts over the capability LIST ==");
    for (req, flawed) in static_verdicts(&schema).expect("analysis runs") {
        println!("  {} -> {}", req, if flawed { "FLAW" } else { "ok" });
    }
    println!();

    let mut db = Database::new(schema).expect("schema checks");
    db.create(
        "Broker",
        vec![Value::str("John"), Value::Int(150), Value::Int(1000)],
    )
    .expect("seed");

    println!("== a guarded session: benign use passes ==");
    let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
    for q in [
        "select r_name(b) from b in Broker",
        "select checkBudget(b) from b in Broker",
        "select checkBudget(b) from b in Broker",
    ] {
        match s.query(q) {
            Ok(out) => println!("  ok    {q}  => {}", out.render()),
            Err(e) => println!("  DENY  {q}\n        {e}"),
        }
    }
    println!(
        "  exercised so far: {:?}",
        s.exercised()
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
    );
    println!();

    println!("== the probing attack is denied before it executes ==");
    for q in [
        // Direct combination in one query…
        "select w_budget(b, 1500), checkBudget(b) from b in Broker",
        // …and the split version: the write alone would be fine for a
        // fresh session, but this session has already exercised the probe.
        "select w_budget(b, 1500) from b in Broker",
    ] {
        match s.query(q) {
            Ok(out) => println!("  ok    {q}  => {}", out.render()),
            Err(e) => println!("  DENY  {q}\n        {e}"),
        }
    }
    println!();
    println!("John's budget is untouched — the guard is fail-stop:");
    drop(s);
    let john = Value::Obj(db.extent(&"Broker".into())[0]);
    println!(
        "  budget = {}",
        db.read_attr(&john, &"budget".into()).expect("read")
    );
    println!();
    println!("Trade-off vs. the static check (paper §5): the static analysis");
    println!("rejects the POLICY once, offline; the guard permits more");
    println!("sessions (write-only sessions above would never be blocked)");
    println!("but pays an analysis per query and only stops flaws at the");
    println!("last moment.");
}
