//! Partial inferability and the static/dynamic comparison, on a second
//! domain (hospital billing).
//!
//! `overCap(p) = r_bill(p) > r_cap(p)` compares two secrets: the
//! observation is a *joint* constraint with no marginal content — on its
//! own it leaks nothing about the bill. The flaw appears the moment the
//! auditor can also move the cap (`w_cap`): the bit becomes a binary
//! search and the leak total. This example runs both the static analysis
//! and the bounded concrete attacker on all three policies.
//!
//! ```text
//! cargo run --example auditor
//! ```

use oodb_lang::parse_requirement;
use secflow::algorithm::analyze;
use secflow_dynamic::attack::attack_requirement;
use secflow_dynamic::strategy::StrategySpec;
use secflow_dynamic::AttackerConfig;
use secflow_workloads::fixtures::hospital;

fn main() {
    let schema = hospital();
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: 3,
            max_assignments: 8192,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };

    println!("{:<44} {:>10} {:>10}", "requirement", "static", "attacker");
    for text in [
        "(auditor, r_bill(x) : ti)",      // flaw: probe + move the cap
        "(auditor, r_bill(x) : pi)",      // implied by the above
        "(safe_auditor, r_bill(x) : ti)", // safe: one bit only
        "(safe_auditor, r_bill(x) : pi)", // still a one-bit leak!
        "(analyst, r_bill(x) : ti)",      // averageVisitCost reveals a ratio
    ] {
        let req = parse_requirement(text).expect("requirement parses");
        let verdict = analyze(&schema, &req).expect("analysis runs");
        let attack = attack_requirement(&schema, &req, &cfg).expect("attack runs");
        println!(
            "{:<44} {:>10} {:>10}",
            text,
            if verdict.is_violated() { "flaw" } else { "ok" },
            if attack.achieved { "realised" } else { "-" },
        );
    }

    println!();
    println!("Readings:");
    println!("* (auditor, ti): the cap is writable, so the auditor binary-");
    println!("  searches the bill — flagged statically, realised concretely.");
    println!("* (safe_auditor, ti/pi): revoking w_cap removes the probe;");
    println!("  a comparison of two *secrets* constrains neither one");
    println!("  marginally, so both verdicts clear the repaired policy.");
    println!("* (analyst, ti): averageVisitCost = bill/(visits+1) is a");
    println!("  lossy projection; the static analysis pessimistically");
    println!("  flags it (division is invertible when visits is known and");
    println!("  alterable), the bounded attacker shows whether the leak is");
    println!("  realisable within its budget.");
}
