//! A complete policy-review workflow, the way a database administrator
//! would use the library:
//!
//! 1. load a database from a text snapshot,
//! 2. statically check every `require` declaration (`A(R)`),
//! 3. print the Figure-1 style explanation for each flaw,
//! 4. ask the advisor for minimal revocations,
//! 5. verify the repaired policy passes — and still runs the intended
//!    queries.
//!
//! ```text
//! cargo run --example policy_review
//! ```

use oodb_engine::{snapshot, Session};
use oodb_lang::parse_schema;
use secflow::advisor::{advise, Advice, AdvisorConfig};
use secflow::algorithm::analyze;
use secflow::closure::Closure;
use secflow::report::render_derivation;
use secflow::unfold::NProgram;

const POLICY: &str = r#"
    class Broker { name: string, salary: int, budget: int, profit: int }

    fn calcSalary(budget: int, profit: int): int { budget / 10 + profit / 2 }
    fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
    fn updateSalary(b: Broker): null {
      w_salary(b, calcSalary(r_budget(b), r_profit(b)))
    }

    user clerk { checkBudget, w_budget, r_name }

    require (clerk, r_salary(x) : ti)
"#;

const SNAPSHOT: &str = r#"
object 0 Broker { name = "John", salary = 150, budget = 1000, profit = 50 }
object 1 Broker { name = "Jane", salary = 90, budget = 2000, profit = 120 }
"#;

fn main() {
    // 1. Load.
    let schema = parse_schema(POLICY).expect("policy parses");
    oodb_lang::check_schema(&schema).expect("policy checks");
    let db = snapshot::load(schema.clone(), SNAPSHOT).expect("snapshot loads");
    println!("loaded {} brokers from the snapshot", db.object_count());

    // 2. Check.
    let req = &schema.requirements[0];
    let verdict = analyze(&schema, req).expect("analysis runs");
    println!("{req}: {verdict}");

    // 3. Explain.
    if verdict.is_violated() {
        let caps = schema.user_str("clerk").expect("clerk exists");
        let prog = NProgram::unfold(&schema, caps).expect("unfolds");
        let closure = Closure::compute(&prog).expect("closure");
        if let Some(goal) = closure.ti_witness(5) {
            println!("\nwhy (Figure-1 style):");
            print!("{}", render_derivation(&prog, &closure, &goal));
        }
    }

    // 4. Repair.
    println!("\nadvisor:");
    match advise(&schema, req, &AdvisorConfig::default()).expect("advisor runs") {
        Advice::Repairs(repairs) => {
            for r in &repairs {
                println!("  option: {r}");
            }
            // 5. Apply the paper's repair (drop w_budget) and re-verify.
            let mut repaired = schema.clone();
            let mut caps = repaired.user_str("clerk").expect("clerk").clone();
            caps.revoke(&oodb_model::FnRef::write("budget"));
            repaired.users.insert("clerk".into(), caps);
            let verdict = analyze(&repaired, req).expect("analysis runs");
            println!("\nafter revoking w_budget: {verdict}");

            // The clerk's intended workflow still runs.
            let mut db2 = oodb_engine::Database::new(repaired).expect("checks");
            let text = snapshot::save(&db);
            db2 = snapshot::load(db2.schema().clone(), &text).expect("reload");
            let mut session = Session::open(&mut db2, "clerk");
            let out = session
                .query("select r_name(b), checkBudget(b) from b in Broker")
                .expect("the probe still works");
            println!("clerk's regulation report still runs: {}", out.render());
        }
        other => println!("  {other:?}"),
    }
}
