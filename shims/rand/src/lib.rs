//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] methods over primitive integer
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `rand`, but every consumer in this
//! workspace only relies on *seed determinism* (same seed ⇒ same case),
//! never on the specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

/// Uniform draw in `0..span` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> StdRng {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity with upstream `rand`'s `small_rng` feature.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..64)
            .filter(|_| StdRng::seed_from_u64(7).gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(same < 64, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-17i64..23);
            assert!((-17..23).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious bias: {heads}");
    }
}
