//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest this repo's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and `boxed`,
//! * [`prop_oneof!`], [`strategy::Just`], tuple and range strategies,
//! * regex-lite string strategies (`"[a-c]{1,8}"`, `".{0,200}"`, …),
//! * [`collection::vec`], [`arbitrary::any`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (override with `PROPTEST_SEED=<u64>`), and there is **no shrinking**
//! — a failure reports the case number and message and panics immediately.
//! Every property the workspace checks is already deterministic per seed, so
//! reproducing a failure is as simple as re-running the test.
//!
//! The sibling `<test-file>.proptest-regressions` file (upstream's
//! persistence format) **is** honoured: every `cc <hex>` line is folded
//! into a `u64` seed and replayed through a dedicated RNG before any novel
//! cases are generated. Upstream stores the exact RNG state in the digest;
//! the shim's generators differ, so the replay pins *a* deterministic case
//! per saved line rather than the byte-identical original — which keeps the
//! file's contract (saved failures re-run first, forever) without the
//! upstream internals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Config, error type and the deterministic RNG driving each test.

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
        /// Upper bound on rejected cases (via `prop_assume!`) before the
        /// test aborts as under-constrained.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is not counted.
        Reject(String),
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with a reason.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic xoshiro256++ RNG (same construction as the workspace's
    /// `rand` shim, but independent so the crates stay decoupled).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeded construction via SplitMix64.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The default test RNG: `PROPTEST_SEED` env var or a fixed seed.
        pub fn deterministic() -> TestRng {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EC_F10D);
            TestRng::seed_from_u64(seed)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `0..span` (rejection sampling; `span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }

    /// Seeds saved in the sibling `.proptest-regressions` file of a test
    /// source file, in file order.
    ///
    /// `source_file` is the `file!()` of the expanding test (relative to
    /// the package root, which is also the test binary's working
    /// directory). Each `cc <hex>` line — upstream's persistence format —
    /// is folded into a `u64` via FNV-1a over the digest text. Missing
    /// files, comments and malformed lines yield no seeds.
    pub fn regression_seeds(source_file: &str) -> Vec<u64> {
        let Some(stem) = source_file.strip_suffix(".rs") else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(format!("{stem}.proptest-regressions")) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let Some(rest) = line.trim().strip_prefix("cc ") else {
                continue;
            };
            let digest = rest.split_whitespace().next().unwrap_or("");
            if digest.is_empty() || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
                continue;
            }
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in digest.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            seeds.push(seed);
        }
        seeds
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// Something that can generate values of one type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy is just a cloneable generator function.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through a function.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> T,
        {
            Map {
                inner: self,
                f: Arc::new(f),
            }
        }

        /// Build recursive structures: `self` is the leaf strategy, `f`
        /// wraps an inner strategy into a branch strategy, and `depth`
        /// bounds the nesting. (`_desired_size` / `_expected_branch_size`
        /// are accepted for API parity and ignored.)
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // At each level: half leaves, half branches over the
                // previous level — bounded depth by construction.
                current = Union::new(vec![leaf.clone(), f(current).boxed()]).boxed();
            }
            current
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] (used by [`BoxedStrategy`]).
    trait DynStrategy<V> {
        fn dyn_new_value(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.dyn_new_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F: ?Sized> {
        inner: S,
        f: Arc<F>,
    }

    impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                inner: self.inner.clone(),
                f: Arc::clone(&self.f),
            }
        }
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Build from the (non-empty) arms.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $sample:ident),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    $sample(self.clone(), rng)
                }
            }
        )*};
    }

    fn sample_unsigned<T>(r: Range<T>, rng: &mut TestRng) -> T
    where
        T: Copy + PartialOrd + TryFrom<u64> + Into<u64>,
        <T as TryFrom<u64>>::Error: std::fmt::Debug,
    {
        assert!(r.start < r.end, "cannot sample empty range");
        let span = r.end.into() - r.start.into();
        T::try_from(r.start.into() + rng.below(span)).expect("in range")
    }

    fn sample_u(r: Range<u64>, rng: &mut TestRng) -> u64 {
        sample_unsigned(r, rng)
    }

    fn sample_u32(r: Range<u32>, rng: &mut TestRng) -> u32 {
        sample_unsigned(r, rng)
    }

    fn sample_u8(r: Range<u8>, rng: &mut TestRng) -> u8 {
        sample_unsigned(r, rng)
    }

    fn sample_usize(r: Range<usize>, rng: &mut TestRng) -> usize {
        assert!(r.start < r.end, "cannot sample empty range");
        let span = (r.end - r.start) as u64;
        r.start + rng.below(span) as usize
    }

    fn sample_signed(r: Range<i64>, rng: &mut TestRng) -> i64 {
        assert!(r.start < r.end, "cannot sample empty range");
        let span = r.end.wrapping_sub(r.start) as u64;
        r.start.wrapping_add(rng.below(span) as i64)
    }

    fn sample_i64(r: Range<i64>, rng: &mut TestRng) -> i64 {
        sample_signed(r, rng)
    }

    fn sample_i32(r: Range<i32>, rng: &mut TestRng) -> i32 {
        sample_signed(r.start as i64..r.end as i64, rng) as i32
    }

    impl_range_strategy!(
        u8 => sample_u8,
        u32 => sample_u32,
        u64 => sample_u,
        usize => sample_usize,
        i32 => sample_i32,
        i64 => sample_i64
    );

    macro_rules! impl_tuple_strategy {
        ($(($($S:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

    /// Regex-lite string strategies: `&'static str` patterns support `.`,
    /// `[a-z09_ ]` classes, and the repeaters `{n}`, `{n,m}`, `*`, `+`, `?`
    /// on the preceding unit; all other characters are literals.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::gen_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! The regex-lite generator backing `&str` strategies.

    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    enum Unit {
        /// Any printable character (`.`).
        Any,
        /// One of an explicit set (`[..]` classes and literals).
        OneOf(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => return set,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().expect("checked");
                    let hi = chars.next().expect("checked");
                    // `lo` is already in the set; add the rest of the range.
                    for x in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(x) {
                            set.push(ch);
                        }
                    }
                }
                '\\' => {
                    let esc = chars.next().unwrap_or('\\');
                    set.push(esc);
                    prev = Some(esc);
                }
                other => {
                    set.push(other);
                    prev = Some(other);
                }
            }
        }
        set
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Option<(usize, usize)> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                };
                Some((lo, hi))
            }
            Some('*') => {
                chars.next();
                Some((0, 8))
            }
            Some('+') => {
                chars.next();
                Some((1, 8))
            }
            Some('?') => {
                chars.next();
                Some((0, 1))
            }
            _ => None,
        }
    }

    /// Generate a string matching the pattern subset described on
    /// [`crate::strategy::Strategy`]'s `&str` impl.
    pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut units: Vec<(Unit, usize, usize)> = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let unit = match c {
                '.' => Unit::Any,
                '[' => Unit::OneOf(parse_class(&mut chars)),
                '\\' => Unit::OneOf(vec![chars.next().unwrap_or('\\')]),
                lit => Unit::OneOf(vec![lit]),
            };
            let (lo, hi) = parse_repeat(&mut chars).unwrap_or((1, 1));
            units.push((unit, lo, hi));
        }

        let mut out = String::new();
        for (unit, lo, hi) in units {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                match &unit {
                    Unit::Any => out.push(random_char(rng)),
                    Unit::OneOf(set) if set.is_empty() => {}
                    Unit::OneOf(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }

    /// `.` draws mostly printable ASCII with an occasional non-ASCII char,
    /// which is what the robustness tests want to throw at the parsers.
    fn random_char(rng: &mut TestRng) -> char {
        match rng.below(20) {
            0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('λ'),
            1 => '\t',
            _ => (0x20u8 + rng.below(0x5F) as u8) as char,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` strategies for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    // Mix raw values with near-boundary ones: overflow
                    // properties live at the edges.
                    match rng.below(8) {
                        0 => <$t>::MAX,
                        1 => <$t>::MIN,
                        2 => <$t>::MAX.wrapping_sub(rng.below(16) as $t),
                        3 => <$t>::MIN.wrapping_add(rng.below(16) as $t),
                        4 => rng.below(256) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// The assertion returning `TestCaseError::Fail` instead of panicking
/// directly (so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Reject the current case (not counted against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The test harness macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Replay saved regression seeds first, one fresh RNG per saved
            // line, so previously-failing cases run before any novel ones.
            for seed in $crate::test_runner::regression_seeds(file!()) {
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(
                    $crate::test_runner::TestCaseError::Fail(msg),
                ) = outcome
                {
                    panic!(
                        "proptest {}: saved regression seed {seed:#018x} failed: {msg}",
                        stringify!($name),
                    );
                }
            }
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case #{accepted}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::new_value(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = crate::strategy::Strategy::new_value(&"x[0-9]+", &mut rng);
            assert!(t.starts_with('x') && t.len() >= 2, "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_oneof_work(
            x in -5i64..5,
            s in prop_oneof![Just("a"), Just("b")],
            v in crate::collection::vec(0u32..3, 0..4),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(s == "a" || s == "b");
            prop_assert!(v.len() < 4);
            prop_assume!(x != -5); // exercise the reject path
            prop_assert_ne!(x, -5);
        }

        #[test]
        fn recursive_strategies_terminate(n in make_tree(3)) {
            prop_assert!(depth(&n) <= 4, "depth {} of {:?}", depth(&n), n);
        }
    }

    #[test]
    fn regression_files_are_parsed_and_deterministic() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("case.rs");
        std::fs::write(
            dir.join("case.proptest-regressions"),
            "# comment line\n\
             cc dfdc147865635f17ef9cab1d4e8c6fb8 # shrinks to e = ...\n\
             cc 00ff\n\
             cc not-hex\n\
             unrelated line\n",
        )
        .unwrap();
        let seeds = crate::test_runner::regression_seeds(src.to_str().unwrap());
        assert_eq!(seeds.len(), 2, "two well-formed cc lines");
        assert_ne!(seeds[0], seeds[1], "distinct digests give distinct seeds");
        // Same file, same fold: the replay order is stable across runs.
        assert_eq!(
            seeds,
            crate::test_runner::regression_seeds(src.to_str().unwrap())
        );
        // Missing files and non-.rs paths are silently empty.
        assert!(crate::test_runner::regression_seeds("no/such/file.rs").is_empty());
        assert!(crate::test_runner::regression_seeds("file.txt").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[derive(Clone, Debug)]
    enum Tree {
        #[allow(dead_code)]
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn make_tree(depth: u32) -> impl Strategy<Value = Tree> {
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(depth, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }
}
