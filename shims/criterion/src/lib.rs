//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`] and [`BenchmarkGroup::throughput`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`Throughput`], [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: after a short warm-up the routine is run in batches
//! sized to the warm-up estimate until a fixed wall-clock budget is spent;
//! the per-iteration mean, min and max are printed in criterion's familiar
//! `time: [low mean high]` shape. Under `cargo test` (cargo passes
//! `--test`) every benchmark runs exactly one iteration as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched routine's setup cost relates to the measurement batch.
/// Only a hint in upstream criterion; accepted and unused here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output: large batches.
    SmallInput,
    /// Large setup output: one setup per measurement batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units-of-work metadata attached to a group (printed with the timing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Min/max per-iteration estimates over measurement batches.
    min: Duration,
    max: Duration,
    /// One-iteration smoke-test mode (`cargo test`).
    test_mode: bool,
    budget: Duration,
}

impl Bencher {
    fn new(test_mode: bool, budget: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            min: Duration::MAX,
            max: Duration::ZERO,
            test_mode,
            budget,
        }
    }

    fn record_batch(&mut self, batch: Duration, iters: u64) {
        let per_iter = batch / (iters.max(1) as u32);
        self.elapsed += batch;
        self.iters += iters;
        self.min = self.min.min(per_iter);
        self.max = self.max.max(per_iter);
    }

    /// Measure a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            let start = Instant::now();
            black_box(routine());
            self.record_batch(start.elapsed(), 1);
            return;
        }
        // Warm-up and batch-size calibration.
        let warmup = Instant::now();
        let mut warm_iters: u64 = 0;
        while warmup.elapsed() < self.budget / 5 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warmup.elapsed() / (warm_iters.max(1) as u32);
        let batch = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.record_batch(start.elapsed(), batch);
        }
    }

    /// Measure a routine that consumes a per-iteration setup value. The
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record_batch(start.elapsed(), 1);
            return;
        }
        let deadline = Instant::now() + self.budget;
        // Warm-up: one measured round also calibrates nothing further —
        // setup dominates some workloads, so batches stay at 1 here.
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record_batch(start.elapsed(), 1);
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / (self.iters as u32)
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        // cargo passes `--test` when running bench targets under `cargo
        // test`, and `--bench` under `cargo bench`; the first free argument
        // is a substring filter.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .find(|a| !a.is_empty())
            .cloned();
        let budget = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(300));
        Criterion {
            filter,
            test_mode,
            budget,
        }
    }
}

impl Criterion {
    fn should_run(&self, id: &str) -> bool {
        match self.filter.as_deref() {
            Some(f) => id.contains(f),
            None => true,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.should_run(id) {
            return;
        }
        let mut b = Bencher::new(self.test_mode, self.budget);
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok (1 iteration, {})", fmt_duration(b.mean()));
            return;
        }
        let mean = b.mean();
        let mut line = format!(
            "{id:<40} time: [{} {} {}]",
            fmt_duration(b.min.min(mean)),
            fmt_duration(mean),
            fmt_duration(b.max.max(mean)),
        );
        if let Some(t) = throughput {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: {:.0} B/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }

    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        self.run_one(id, None, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Attach units-of-work metadata to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, |b| f(b, input));
        self
    }

    /// Run a benchmark without extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        let _ = throughput;
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("scan", 10).to_string(), "scan/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(true, Duration::from_millis(10));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(b.iters, 1);
        let mut b = Bencher::new(true, Duration::from_millis(10));
        b.iter_batched(|| 21u64, |x| x * 2, BatchSize::LargeInput);
        assert_eq!(b.iters, 1);
    }
}
