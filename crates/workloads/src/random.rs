//! Seeded random policy generator for the differential experiments.
//!
//! Every case is a small schema (one class of integer attributes), a
//! handful of access functions drawn from a grammar of reads, writes,
//! arithmetic and comparisons, a random capability list, and a requirement
//! targeting one of the attributes. Sizes are chosen so the bounded
//! concrete attacker ([`secflow_dynamic`]) can enumerate all worlds and
//! probes exhaustively.
//!
//! [`secflow_dynamic`]: ../../secflow_dynamic/index.html

use oodb_lang::ast::{AccessFnDef, BasicOp, Expr, Literal};
use oodb_lang::requirement::{Cap, Requirement};
use oodb_lang::Schema;
use oodb_model::{CapabilityList, ClassDef, FnRef, Type, VarName};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct RandomSpec {
    /// Attributes of the single class (all `int`).
    pub attrs: usize,
    /// Access functions generated.
    pub functions: usize,
    /// Maximum depth of generated integer expressions.
    pub depth: usize,
    /// Probability that a generated function is a setter (writes an attr).
    pub setter_prob: f64,
    /// Probability that each special function (`r_a`, `w_a`) is granted
    /// directly.
    pub special_grant_prob: f64,
    /// Probability that an integer leaf becomes a call to an earlier
    /// integer-returning function (exercising the unfolding machinery).
    pub call_prob: f64,
}

impl Default for RandomSpec {
    fn default() -> RandomSpec {
        RandomSpec {
            attrs: 2,
            functions: 2,
            depth: 2,
            setter_prob: 0.4,
            special_grant_prob: 0.2,
            call_prob: 0.25,
        }
    }
}

/// One generated case.
#[derive(Clone, Debug)]
pub struct RandomCase {
    /// The schema (type-checked).
    pub schema: Schema,
    /// The user under test.
    pub user: String,
    /// Requirements to check for that user.
    pub requirements: Vec<Requirement>,
}

fn attr_name(i: usize) -> String {
    format!("a{i}")
}

/// Generate one case from a seed. The same seed always yields the same
/// case.
pub fn random_case(seed: u64, spec: &RandomSpec) -> RandomCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schema = Schema::new();
    let attrs: Vec<(oodb_model::AttrName, Type)> = (0..spec.attrs)
        .map(|i| (attr_name(i).into(), Type::INT))
        .collect();
    schema
        .classes
        .insert(ClassDef::new("C", attrs).expect("distinct attr names"))
        .expect("single class");

    // Earlier int-returning getters are available as callees for later
    // function bodies (the call graph stays acyclic by construction).
    let mut int_callees: Vec<(String, bool)> = Vec::new(); // (name, takes_int)
    for f in 0..spec.functions {
        let def = gen_function(&mut rng, spec, f, &int_callees);
        if def.ret == Type::INT {
            int_callees.push((def.name.to_string(), def.params.len() > 1));
        }
        schema.functions.insert(def.name.clone(), def);
    }

    // Capability list: a non-empty random subset of the functions, plus
    // occasional direct specials.
    let mut caps = CapabilityList::new();
    let mut any = false;
    for f in 0..spec.functions {
        if rng.gen_bool(0.7) {
            caps.grant(FnRef::access(format!("f{f}")));
            any = true;
        }
    }
    if !any {
        caps.grant(FnRef::access("f0"));
    }
    for a in 0..spec.attrs {
        if rng.gen_bool(spec.special_grant_prob) {
            caps.grant(FnRef::read(attr_name(a)));
        }
        if rng.gen_bool(spec.special_grant_prob) {
            caps.grant(FnRef::write(attr_name(a)));
        }
    }
    schema.users.insert("u".into(), caps);

    // Requirements: for a random attribute, one inferability and one
    // alterability requirement.
    let a = rng.gen_range(0..spec.attrs);
    let infer_cap = if rng.gen_bool(0.5) { Cap::Ti } else { Cap::Pi };
    let alter_cap = if rng.gen_bool(0.5) { Cap::Ta } else { Cap::Pa };
    let requirements = vec![
        Requirement::on_return("u", FnRef::read(attr_name(a)), 1, vec![infer_cap]),
        Requirement::on_arg("u", FnRef::write(attr_name(a)), 2, 1, vec![alter_cap]),
    ];

    oodb_lang::check_schema(&schema).expect("generated schema always checks");
    RandomCase {
        schema,
        user: "u".to_owned(),
        requirements,
    }
}

fn gen_function(
    rng: &mut StdRng,
    spec: &RandomSpec,
    index: usize,
    callees: &[(String, bool)],
) -> AccessFnDef {
    let takes_int = rng.gen_bool(0.6);
    let mut params: Vec<(VarName, Type)> = vec![(VarName::new("c"), Type::class("C"))];
    if takes_int {
        params.push((VarName::new("x"), Type::INT));
    }
    let is_setter = rng.gen_bool(spec.setter_prob);
    let ctx = GenCtx {
        spec,
        has_x: takes_int,
        callees,
    };
    let (ret, body) = if is_setter {
        let attr = attr_name(rng.gen_range(0..spec.attrs));
        let value = gen_int(rng, &ctx, spec.depth);
        (Type::Null, Expr::write(attr, Expr::var("c"), value))
    } else if rng.gen_bool(0.5) {
        // Boolean probe: comparison of two integer expressions.
        let op = match rng.gen_range(0..4) {
            0 => BasicOp::Ge,
            1 => BasicOp::Gt,
            2 => BasicOp::EqOp,
            _ => BasicOp::Le,
        };
        (
            Type::BOOL,
            Expr::bin(
                op,
                gen_int(rng, &ctx, spec.depth),
                gen_int(rng, &ctx, spec.depth),
            ),
        )
    } else {
        // Integer getter.
        (Type::INT, gen_int(rng, &ctx, spec.depth))
    };
    AccessFnDef {
        name: format!("f{index}").into(),
        params,
        ret,
        body,
    }
}

struct GenCtx<'a> {
    spec: &'a RandomSpec,
    has_x: bool,
    callees: &'a [(String, bool)],
}

fn gen_int(rng: &mut StdRng, ctx: &GenCtx<'_>, depth: usize) -> Expr {
    // A leaf may be a call to an earlier int-returning access function —
    // the unfolded program then contains inner `let(f)` forms.
    if !ctx.callees.is_empty() && rng.gen_bool(ctx.spec.call_prob) {
        let (name, callee_takes_int) = &ctx.callees[rng.gen_range(0..ctx.callees.len())];
        let mut args = vec![Expr::var("c")];
        if *callee_takes_int {
            args.push(if depth == 0 {
                Expr::Const(Literal::Int(rng.gen_range(0..3)))
            } else {
                gen_int(rng, ctx, depth - 1)
            });
        }
        return Expr::call(name.as_str(), args);
    }
    if depth == 0 || rng.gen_bool(0.4) {
        // Leaf.
        match rng.gen_range(0..3) {
            0 if ctx.has_x => Expr::var("x"),
            1 => Expr::Const(Literal::Int(rng.gen_range(0..3))),
            _ => Expr::read(attr_name(rng.gen_range(0..ctx.spec.attrs)), Expr::var("c")),
        }
    } else {
        let op = match rng.gen_range(0..3) {
            0 => BasicOp::Add,
            1 => BasicOp::Sub,
            _ => BasicOp::Mul,
        };
        Expr::bin(
            op,
            gen_int(rng, ctx, depth - 1),
            gen_int(rng, ctx, depth - 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_case(42, &RandomSpec::default());
        let b = random_case(42, &RandomSpec::default());
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.requirements, b.requirements);
        let c = random_case(43, &RandomSpec::default());
        assert!(
            a.schema != c.schema || a.requirements != c.requirements,
            "different seeds should differ (overwhelmingly)"
        );
    }

    #[test]
    fn generated_schemas_type_check() {
        for seed in 0..200 {
            let case = random_case(seed, &RandomSpec::default());
            oodb_lang::check_schema(&case.schema).unwrap();
            assert!(!case.schema.functions.is_empty());
            assert!(!case
                .schema
                .user_str(&case.user)
                .expect("user exists")
                .is_empty());
        }
    }

    #[test]
    fn requirements_reference_real_attributes() {
        for seed in 0..50 {
            let case = random_case(seed, &RandomSpec::default());
            for req in &case.requirements {
                oodb_lang::typeck::check_requirement(&case.schema, req).unwrap();
            }
        }
    }

    #[test]
    fn composition_appears_in_the_corpus() {
        let spec = RandomSpec {
            functions: 3,
            call_prob: 0.5,
            ..RandomSpec::default()
        };
        let mut saw_call = false;
        for seed in 0..100 {
            let case = random_case(seed, &spec);
            for def in case.schema.functions.values() {
                if !def.body.called_functions().is_empty() {
                    saw_call = true;
                }
            }
        }
        assert!(saw_call, "the generator should compose functions");
    }

    #[test]
    fn sizes_respect_spec() {
        let spec = RandomSpec {
            attrs: 3,
            functions: 4,
            ..RandomSpec::default()
        };
        let case = random_case(7, &spec);
        assert_eq!(case.schema.functions.len(), 4);
        assert_eq!(case.schema.classes.get_str("C").unwrap().attrs.len(), 3);
    }
}
