//! # secflow-workloads
//!
//! Deterministic, seeded generators of schemas, policies and databases for
//! the test suite and the benchmark harness:
//!
//! * [`fixtures`] — the paper's own scenarios (stockbroker §1/§4.2, payroll
//!   §1, person/profile §2) as ready-made schemas;
//! * [`random`] — a seeded corpus of small random policies sized to fit the
//!   bounded concrete attacker (experiments E3/E4);
//! * [`scale`] — parametric schema families for the closure-scaling
//!   experiment (E5): call chains, wide capability lists, big expression
//!   trees, attribute fan-out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod random;
pub mod scale;

pub use fixtures::{payroll, person, stockbroker};
pub use random::{random_case, RandomCase, RandomSpec};
