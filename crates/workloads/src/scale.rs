//! Parametric schema families for the closure-scaling experiment (E5).
//!
//! Each generator returns a type-checked schema with user `u` plus the
//! requirement the harness times `A(R)` against. The families stress
//! different cost drivers of the analysis:
//!
//! * [`call_chain`] — unfolding depth: `f_n` calls `f_{n-1}` calls …;
//! * [`wide_grants`] — capability-list width: `n` independent probes over
//!   `n` attributes (many outer functions, many equalities);
//! * [`deep_expr`] — expression size: one function whose body is a
//!   comparison over a big arithmetic tree;
//! * [`attr_fanout`] — write-read pairs: `n` attributes each written and
//!   read, quadratic equality propagation;
//! * [`dense_equalities`] — `=[e1,e2]` cross-joins: every probe shares the
//!   same `int` parameter and the same `r_a0` read, so the equality rules
//!   build cliques over the argument and read occurrences — the worst case
//!   for naive re-firing and the headline family of the `saturation`
//!   experiment.
//!
//! [`multi_user`] builds a *batch* case — one schema, many users, one
//! requirement each — for the `analyze_batch` driver and the `--jobs`
//! throughput experiment. [`multi_user_deep`] is its deep-expression
//! sibling for the demand-vs-full comparison: per-user closures are big
//! enough that goal-directed slicing pays.
//!
//! Two population-scale batch families feed the `population` experiment:
//! [`zipf_population`] draws up to a million users over a few thousand
//! Zipf-popular grant profiles (identically granted users collapse onto
//! one `ClosureCache` fingerprint each), and [`skewed_groups`] plants one
//! giant group in a sea of tiny ones — the skew the work-stealing batch
//! scheduler exists to absorb.

use oodb_lang::ast::{AccessFnDef, BasicOp, Expr};
use oodb_lang::requirement::{Cap, Requirement};
use oodb_lang::Schema;
use oodb_model::{CapabilityList, ClassDef, FnRef, Type, VarName};

/// A scaling case: schema + the requirement to time.
#[derive(Clone, Debug)]
pub struct ScaleCase {
    /// Type-checked schema with user `u`.
    pub schema: Schema,
    /// Requirement for the timing run.
    pub requirement: Requirement,
}

fn single_int_class(attrs: usize) -> ClassDef {
    ClassDef::new(
        "C",
        (0..attrs.max(1))
            .map(|i| (format!("a{i}").into(), Type::INT))
            .collect(),
    )
    .expect("distinct names")
}

fn finish(mut schema: Schema, caps: CapabilityList, requirement: Requirement) -> ScaleCase {
    schema.users.insert("u".into(), caps);
    oodb_lang::check_schema(&schema).expect("scale schema checks");
    ScaleCase {
        schema,
        requirement,
    }
}

/// `f0(x) = x + r_a0(c)…`, `f_i = f_{i-1}(c, x) + 1`: unfolding depth `n`.
pub fn call_chain(n: usize) -> ScaleCase {
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(1))
        .expect("one class");
    let params = vec![
        (VarName::new("c"), Type::class("C")),
        (VarName::new("x"), Type::INT),
    ];
    schema.functions.insert(
        "f0".into(),
        AccessFnDef {
            name: "f0".into(),
            params: params.clone(),
            ret: Type::INT,
            body: Expr::bin(
                BasicOp::Add,
                Expr::var("x"),
                Expr::read("a0", Expr::var("c")),
            ),
        },
    );
    for i in 1..n.max(1) {
        schema.functions.insert(
            format!("f{i}").into(),
            AccessFnDef {
                name: format!("f{i}").into(),
                params: params.clone(),
                ret: Type::INT,
                body: Expr::bin(
                    BasicOp::Add,
                    Expr::call(format!("f{}", i - 1), vec![Expr::var("c"), Expr::var("x")]),
                    Expr::int(1),
                ),
            },
        );
    }
    let caps: CapabilityList = [
        FnRef::access(format!("f{}", n.max(1) - 1)),
        FnRef::write("a0"),
    ]
    .into_iter()
    .collect();
    let req = Requirement::on_return("u", FnRef::read("a0"), 1, vec![Cap::Ti]);
    finish(schema, caps, req)
}

/// `n` probes `p_i(c) = r_a_i(c) >= i` over `n` attributes; the user holds
/// all of them plus `w_a0`.
pub fn wide_grants(n: usize) -> ScaleCase {
    let n = n.max(1);
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(n))
        .expect("one class");
    let mut caps = CapabilityList::new();
    for i in 0..n {
        schema.functions.insert(
            format!("p{i}").into(),
            AccessFnDef {
                name: format!("p{i}").into(),
                params: vec![(VarName::new("c"), Type::class("C"))],
                ret: Type::BOOL,
                body: Expr::bin(
                    BasicOp::Ge,
                    Expr::read(format!("a{i}"), Expr::var("c")),
                    Expr::int(i as i64),
                ),
            },
        );
        caps.grant(FnRef::access(format!("p{i}")));
    }
    caps.grant(FnRef::write("a0"));
    let req = Requirement::on_return("u", FnRef::read("a0"), 1, vec![Cap::Ti]);
    finish(schema, caps, req)
}

/// One probe whose body compares a full binary `+`-tree of `2^depth`
/// attribute reads against a constant.
pub fn deep_expr(depth: usize) -> ScaleCase {
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(1))
        .expect("one class");
    fn tree(d: usize) -> Expr {
        if d == 0 {
            Expr::read("a0", Expr::var("c"))
        } else {
            Expr::bin(BasicOp::Add, tree(d - 1), tree(d - 1))
        }
    }
    schema.functions.insert(
        "p".into(),
        AccessFnDef {
            name: "p".into(),
            params: vec![(VarName::new("c"), Type::class("C"))],
            ret: Type::BOOL,
            body: Expr::bin(BasicOp::Ge, tree(depth), Expr::int(100)),
        },
    );
    let caps: CapabilityList = [FnRef::access("p"), FnRef::write("a0")]
        .into_iter()
        .collect();
    let req = Requirement::on_return("u", FnRef::read("a0"), 1, vec![Cap::Ti]);
    finish(schema, caps, req)
}

/// A batched scaling case: one schema, many users, one requirement each.
///
/// Feeding the requirement list to `secflow::analyze_batch` exercises the
/// per-user grouping (each user is its own unfold + closure) and, with
/// `jobs > 1`, the thread pool.
#[derive(Clone, Debug)]
pub struct BatchCase {
    /// Type-checked schema with users `u0 … u{n-1}`.
    pub schema: Schema,
    /// One requirement per user, in user order.
    pub requirements: Vec<Requirement>,
}

/// `users` disjoint copies of the [`wide_grants`] workload over one shared
/// class: user `u{j}` holds `width` probes over its own attribute slice plus
/// a write on the slice head, and the requirement list probes every head.
pub fn multi_user(users: usize, width: usize) -> BatchCase {
    let users = users.max(1);
    let width = width.max(1);
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(users * width))
        .expect("one class");
    let mut requirements = Vec::new();
    for j in 0..users {
        let mut caps = CapabilityList::new();
        for i in 0..width {
            let a = j * width + i;
            schema.functions.insert(
                format!("p{a}").into(),
                AccessFnDef {
                    name: format!("p{a}").into(),
                    params: vec![(VarName::new("c"), Type::class("C"))],
                    ret: Type::BOOL,
                    body: Expr::bin(
                        BasicOp::Ge,
                        Expr::read(format!("a{a}"), Expr::var("c")),
                        Expr::int(a as i64),
                    ),
                },
            );
            caps.grant(FnRef::access(format!("p{a}")));
        }
        caps.grant(FnRef::write(format!("a{}", j * width)));
        schema.users.insert(format!("u{j}").into(), caps);
        requirements.push(Requirement::on_return(
            format!("u{j}"),
            FnRef::read(format!("a{}", j * width)),
            1,
            vec![Cap::Ti],
        ));
    }
    oodb_lang::check_schema(&schema).expect("batch schema checks");
    BatchCase {
        schema,
        requirements,
    }
}

/// `users` disjoint copies of the [`deep_expr`] workload: user `u{j}`
/// holds a probe whose body is a full binary `+`-tree of `2^depth` reads
/// of its own attribute `a{j}`, plus the write on it, and the requirement
/// list probes every attribute. Each group's closure is deep-expression
/// sized, so goal-directed slicing has something to discard — the batch
/// counterpart of [`deep_expr`], where [`multi_user`]'s wide flat probes
/// leave no slack.
pub fn multi_user_deep(users: usize, depth: usize) -> BatchCase {
    let users = users.max(1);
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(users))
        .expect("one class");
    fn tree(attr: usize, d: usize) -> Expr {
        if d == 0 {
            Expr::read(format!("a{attr}"), Expr::var("c"))
        } else {
            Expr::bin(BasicOp::Add, tree(attr, d - 1), tree(attr, d - 1))
        }
    }
    let mut requirements = Vec::new();
    for j in 0..users {
        schema.functions.insert(
            format!("p{j}").into(),
            AccessFnDef {
                name: format!("p{j}").into(),
                params: vec![(VarName::new("c"), Type::class("C"))],
                ret: Type::BOOL,
                body: Expr::bin(BasicOp::Ge, tree(j, depth), Expr::int(100)),
            },
        );
        let caps: CapabilityList = [
            FnRef::access(format!("p{j}")),
            FnRef::write(format!("a{j}")),
        ]
        .into_iter()
        .collect();
        schema.users.insert(format!("u{j}").into(), caps);
        requirements.push(Requirement::on_return(
            format!("u{j}"),
            FnRef::read(format!("a{j}")),
            1,
            vec![Cap::Ti],
        ));
    }
    oodb_lang::check_schema(&schema).expect("batch schema checks");
    BatchCase {
        schema,
        requirements,
    }
}

/// A population-scale batch case: `users` users drawn over `fingerprints`
/// distinct grant profiles with Zipf-distributed popularity.
///
/// Profile `k` grants one probe `p{k}(c) = r_a{k}(c) >= k`, plus the write
/// `w_a{k}` when `k` is even — so even-profile users violate their
/// requirement and odd-profile users do not, and verdict mixes are visible
/// at a glance. Every user of a profile holds a *clone* of the same
/// capability list, which is the point: the `ClosureCache` keys on the
/// capability-list fingerprint, not the user name, so a million users
/// collapse onto at most `fingerprints` closure computations. Popularity
/// follows a Zipf law with exponent ~1.07 (rank-1 profile most popular),
/// matching the skew real grant tables show.
///
/// The requirement for user `u{j}` of profile `k` probes `r_a{k}` for `ti`
/// on return — identical goals across a profile, so repeat groups are pure
/// cache hits.
pub fn zipf_population(users: usize, fingerprints: usize, seed: u64) -> BatchCase {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let users = users.max(1);
    let fingerprints = fingerprints.max(1);
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(fingerprints))
        .expect("one class");
    let mut profiles: Vec<CapabilityList> = Vec::with_capacity(fingerprints);
    for k in 0..fingerprints {
        schema.functions.insert(
            format!("p{k}").into(),
            AccessFnDef {
                name: format!("p{k}").into(),
                params: vec![(VarName::new("c"), Type::class("C"))],
                ret: Type::BOOL,
                body: Expr::bin(
                    BasicOp::Ge,
                    Expr::read(format!("a{k}"), Expr::var("c")),
                    Expr::int(k as i64),
                ),
            },
        );
        let mut caps = CapabilityList::new();
        caps.grant(FnRef::access(format!("p{k}")));
        if k % 2 == 0 {
            caps.grant(FnRef::write(format!("a{k}")));
        }
        profiles.push(caps);
    }
    // Zipf over profile ranks: weight(k) = 1 / (k+1)^s, sampled by
    // inverting the cumulative weight table with one 53-bit uniform draw.
    const ZIPF_S: f64 = 1.07;
    let mut cumulative = Vec::with_capacity(fingerprints);
    let mut total = 0.0_f64;
    for k in 0..fingerprints {
        total += 1.0 / ((k + 1) as f64).powf(ZIPF_S);
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requirements = Vec::with_capacity(users);
    for j in 0..users {
        let u = rng.gen_range(0u64..(1 << 53)) as f64 / (1u64 << 53) as f64;
        let r = u * total;
        let k = cumulative.partition_point(|&c| c < r).min(fingerprints - 1);
        schema
            .users
            .insert(format!("u{j}").into(), profiles[k].clone());
        requirements.push(Requirement::on_return(
            format!("u{j}"),
            FnRef::read(format!("a{k}")),
            1,
            vec![Cap::Ti],
        ));
    }
    oodb_lang::check_schema(&schema).expect("population schema checks");
    BatchCase {
        schema,
        requirements,
    }
}

/// A pathologically skewed batch: user `u0` holds `giant_width` probes
/// (its group's closure carries the quadratic argument-equality clique of
/// [`wide_grants`] at that width) while every other user holds only
/// `tiny_width` — one giant group next to `users - 1` tiny ones.
///
/// Built for the scheduler comparison: under [`BatchSchedule::Fixed`]
/// (static contiguous chunks) the worker that draws the giant group also
/// owns a full chunk of tiny ones and finishes last while its neighbours
/// idle; work stealing drains the tiny groups around the giant instead.
/// Aim `giant_width²` at roughly `(users · tiny_width²) / jobs` so the
/// giant group sets the makespan floor and the tiny tail is worth
/// redistributing.
///
/// [`BatchSchedule::Fixed`]: secflow::algorithm::BatchSchedule
pub fn skewed_groups(users: usize, giant_width: usize, tiny_width: usize) -> BatchCase {
    let users = users.max(1);
    let giant_width = giant_width.max(1);
    let tiny_width = tiny_width.max(1);
    let attrs = giant_width + (users - 1) * tiny_width;
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(attrs))
        .expect("one class");
    let mut requirements = Vec::with_capacity(users);
    let mut base = 0;
    for j in 0..users {
        let width = if j == 0 { giant_width } else { tiny_width };
        let mut caps = CapabilityList::new();
        for i in 0..width {
            let a = base + i;
            schema.functions.insert(
                format!("p{a}").into(),
                AccessFnDef {
                    name: format!("p{a}").into(),
                    params: vec![(VarName::new("c"), Type::class("C"))],
                    ret: Type::BOOL,
                    body: Expr::bin(
                        BasicOp::Ge,
                        Expr::read(format!("a{a}"), Expr::var("c")),
                        Expr::int(a as i64),
                    ),
                },
            );
            caps.grant(FnRef::access(format!("p{a}")));
        }
        caps.grant(FnRef::write(format!("a{base}")));
        schema.users.insert(format!("u{j}").into(), caps);
        requirements.push(Requirement::on_return(
            format!("u{j}"),
            FnRef::read(format!("a{base}")),
            1,
            vec![Cap::Ti],
        ));
        base += width;
    }
    oodb_lang::check_schema(&schema).expect("skewed schema checks");
    BatchCase {
        schema,
        requirements,
    }
}

/// The static-chunking adversary: the first `giants` users each hold
/// `giant_width` probes while every later user holds only `tiny_width` —
/// all the heavy groups sit *contiguously at the front* of group order.
///
/// [`skewed_groups`] spreads the pain thin (one giant); this variant
/// concentrates it. A fixed contiguous partition at `jobs` workers hands
/// worker 0 the whole giant cluster (pick `giants ≤ users / jobs` so the
/// cluster fits one chunk) and its critical path is the *sum* of every
/// giant's closure cost, while the other workers' chunks drain almost
/// immediately. A work-stealing pool redistributes the queued giants the
/// moment the tiny chunks dry up, so its critical path drops toward
/// `giants / jobs` giant-costs — the gap between the two is the scheduler
/// duel the `population` bench experiment measures.
pub fn clustered_giants(
    users: usize,
    giants: usize,
    giant_width: usize,
    tiny_width: usize,
) -> BatchCase {
    let users = users.max(1);
    let giants = giants.clamp(1, users);
    let giant_width = giant_width.max(1);
    let tiny_width = tiny_width.max(1);
    let attrs = giants * giant_width + (users - giants) * tiny_width;
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(attrs))
        .expect("one class");
    let mut requirements = Vec::with_capacity(users);
    let mut base = 0;
    for j in 0..users {
        let width = if j < giants { giant_width } else { tiny_width };
        let mut caps = CapabilityList::new();
        for i in 0..width {
            let a = base + i;
            schema.functions.insert(
                format!("p{a}").into(),
                AccessFnDef {
                    name: format!("p{a}").into(),
                    params: vec![(VarName::new("c"), Type::class("C"))],
                    ret: Type::BOOL,
                    body: Expr::bin(
                        BasicOp::Ge,
                        Expr::read(format!("a{a}"), Expr::var("c")),
                        Expr::int(a as i64),
                    ),
                },
            );
            caps.grant(FnRef::access(format!("p{a}")));
        }
        caps.grant(FnRef::write(format!("a{base}")));
        schema.users.insert(format!("u{j}").into(), caps);
        requirements.push(Requirement::on_return(
            format!("u{j}"),
            FnRef::read(format!("a{base}")),
            1,
            vec![Cap::Ti],
        ));
        base += width;
    }
    oodb_lang::check_schema(&schema).expect("clustered schema checks");
    BatchCase {
        schema,
        requirements,
    }
}

/// `n` probes `q_i(x, c) = (x + r_a0(c)) >= i` over one shared attribute;
/// the user holds all of them plus `w_a0`.
///
/// Every probe reads the *same* attribute and takes the *same*-typed `int`
/// argument, so rule *S7* links all `x` occurrences and all `r_a0(c)` reads
/// into `=`-cliques, and transfer-by-equality then copies every capability
/// across each clique: `O(n²)` equality edges with `O(n²)` transfer work on
/// top. This is the densest `=[e1, e2]` cross-join the language produces —
/// the workload where naive saturation re-derives hardest, built for the
/// `saturation` (naive-vs-semi-naive) experiment.
pub fn dense_equalities(n: usize) -> ScaleCase {
    let n = n.max(1);
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(1))
        .expect("one class");
    let mut caps = CapabilityList::new();
    for i in 0..n {
        schema.functions.insert(
            format!("q{i}").into(),
            AccessFnDef {
                name: format!("q{i}").into(),
                params: vec![
                    (VarName::new("x"), Type::INT),
                    (VarName::new("c"), Type::class("C")),
                ],
                ret: Type::BOOL,
                body: Expr::bin(
                    BasicOp::Ge,
                    Expr::bin(
                        BasicOp::Add,
                        Expr::var("x"),
                        Expr::read("a0", Expr::var("c")),
                    ),
                    Expr::int(i as i64),
                ),
            },
        );
        caps.grant(FnRef::access(format!("q{i}")));
    }
    caps.grant(FnRef::write("a0"));
    let req = Requirement::on_return("u", FnRef::read("a0"), 1, vec![Cap::Ti]);
    finish(schema, caps, req)
}

/// `n` attributes, each with a granted reader and writer pair: the
/// equality graph gets `O(n²)` argument-variable edges.
pub fn attr_fanout(n: usize) -> ScaleCase {
    let n = n.max(1);
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(n))
        .expect("one class");
    let mut caps = CapabilityList::new();
    for i in 0..n {
        caps.grant(FnRef::read(format!("a{i}")));
        caps.grant(FnRef::write(format!("a{i}")));
    }
    let req = Requirement::on_return("u", FnRef::read("a0"), 1, vec![Cap::Ti]);
    finish(schema, caps, req)
}

/// One capability-list edit against user `u`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Grant the function.
    Grant(FnRef),
    /// Revoke the function.
    Revoke(FnRef),
}

/// An edit-trace case for the incremental-maintenance experiment: a
/// [`wide_grants`]-shaped schema whose user `u` starts with `width` granted
/// probes out of a larger pool, plus a deterministic script of small
/// grant/revoke edits to replay against the closure.
#[derive(Clone, Debug)]
pub struct EditTraceCase {
    /// Type-checked schema with user `u` holding the base grant set.
    pub schema: Schema,
    /// The requirement to re-check after every edit (`r_a0 : ti`).
    pub requirement: Requirement,
    /// The edit script, in order. Every referenced function exists in the
    /// schema; whether an op is a grant or a revoke tracks the evolving
    /// list, so each edit actually changes it.
    pub edits: Vec<EditOp>,
}

/// `width` granted probes (plus `w_a0`) from a pool half again as large;
/// `edits` single-function toggles drawn uniformly over the pool, with an
/// occasional `w_a0` toggle (1 in 8) so verdicts flip mid-trace. Each edit
/// adds or removes one small probe against a closure that scales with
/// `width` — the regime where incremental maintenance should beat a
/// from-scratch recompute by a wide margin.
pub fn edit_trace(width: usize, edits: usize, seed: u64) -> EditTraceCase {
    edit_trace_with_core(width, 0, edits, seed)
}

/// [`edit_trace`] with a [`dense_equalities`]-style always-granted core:
/// `core` functions `q{j}` sharing the parameter name `x` and an `r_a0(c)`
/// read, so rule *S7* links every `x` occurrence and every `a0` read into
/// `=`-cliques with `O(core²)` equality edges and the transfer storm on
/// top. The edit script still only toggles the small probes — small edits
/// against a closure whose from-scratch saturation is dominated by rule
/// re-attempts the maintenance path never pays again. This is the headline
/// family of the `incremental` experiment.
pub fn edit_trace_dense(width: usize, core: usize, edits: usize, seed: u64) -> EditTraceCase {
    edit_trace_with_core(width, core, edits, seed)
}

fn edit_trace_with_core(width: usize, core: usize, edits: usize, seed: u64) -> EditTraceCase {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let width = width.max(2);
    let pool = width + width / 2 + 1;
    let mut schema = Schema::new();
    schema
        .classes
        .insert(single_int_class(pool))
        .expect("one class");
    let mut caps = CapabilityList::new();
    for i in 0..pool {
        schema.functions.insert(
            format!("p{i}").into(),
            AccessFnDef {
                name: format!("p{i}").into(),
                params: vec![(VarName::new("c"), Type::class("C"))],
                ret: Type::BOOL,
                body: Expr::bin(
                    BasicOp::Ge,
                    Expr::read(format!("a{i}"), Expr::var("c")),
                    Expr::int(i as i64),
                ),
            },
        );
        if i < width {
            caps.grant(FnRef::access(format!("p{i}")));
        }
    }
    if core > 0 {
        // The core lives on its own class `D`: outer-argument equality
        // axioms pair ArgVars by *type*, so `d: D` params clique with each
        // other but never with the probes' `c: C` params. A probe toggle
        // therefore touches only the probe's own block (plus the small
        // probe-side `c` clique), while a from-scratch recompute still
        // re-pays the core's O(core²) equality/transfer storm every time.
        schema
            .classes
            .insert(ClassDef::new("D", vec![("b0".into(), Type::INT)]).expect("one attr"))
            .expect("distinct class");
    }
    for j in 0..core {
        schema.functions.insert(
            format!("q{j}").into(),
            AccessFnDef {
                name: format!("q{j}").into(),
                params: vec![
                    (VarName::new("x"), Type::INT),
                    (VarName::new("d"), Type::class("D")),
                ],
                ret: Type::BOOL,
                body: Expr::bin(
                    BasicOp::Ge,
                    Expr::bin(
                        BasicOp::Add,
                        Expr::var("x"),
                        Expr::read("b0", Expr::var("d")),
                    ),
                    Expr::int(j as i64),
                ),
            },
        );
        caps.grant(FnRef::access(format!("q{j}")));
    }
    // `w_a0` is the sparse family's verdict flipper. The dense family
    // leaves it out entirely: the write function's int-typed value param
    // would clique (by type) with the core's `x` params and bridge every
    // probe into the core's equality storm — exactly the coupling the `D`
    // class exists to prevent.
    if core == 0 {
        caps.grant(FnRef::write("a0"));
    }
    let mut granted: Vec<bool> = (0..pool).map(|i| i < width).collect();
    let mut write_granted = true;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(edits);
    for _ in 0..edits {
        // With a dense core every `a0` read feeds the equality cliques, so
        // a `w_a0` toggle rewrites nearly the whole closure — not the
        // small-edit regime this family measures. Dense traces toggle
        // probes only; the sparse family keeps the occasional write flip.
        if core == 0 && rng.gen_range(0u32..8) == 0 {
            let f = FnRef::write("a0");
            script.push(if write_granted {
                EditOp::Revoke(f)
            } else {
                EditOp::Grant(f)
            });
            write_granted = !write_granted;
        } else {
            let i = rng.gen_range(0..pool as u64) as usize;
            let f = FnRef::access(format!("p{i}"));
            script.push(if granted[i] {
                EditOp::Revoke(f)
            } else {
                EditOp::Grant(f)
            });
            granted[i] = !granted[i];
        }
    }
    let requirement = Requirement::on_return("u", FnRef::read("a0"), 1, vec![Cap::Ti]);
    schema.users.insert("u".into(), caps);
    oodb_lang::check_schema(&schema).expect("edit-trace schema checks");
    EditTraceCase {
        schema,
        requirement,
        edits: script,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow::algorithm::analyze;

    #[test]
    fn chain_sizes_grow() {
        for n in [1, 4, 8] {
            let case = call_chain(n);
            assert_eq!(case.schema.functions.len(), n);
            let v = analyze(&case.schema, &case.requirement).unwrap();
            // The chain exposes a0 through the returned value; with w_a0 the
            // user probes it — always flagged.
            assert!(v.is_violated(), "chain {n}");
        }
    }

    #[test]
    fn wide_grants_flagged_only_via_written_attr() {
        let case = wide_grants(6);
        let v = analyze(&case.schema, &case.requirement).unwrap();
        assert!(v.is_violated());
        // A non-written attribute is only partially leaked.
        let req = Requirement::on_return("u", FnRef::read("a1"), 1, vec![Cap::Ti]);
        let v = analyze(&case.schema, &req).unwrap();
        assert!(!v.is_violated());
    }

    #[test]
    fn multi_user_deep_flags_every_user() {
        let case = multi_user_deep(3, 2);
        assert_eq!(case.requirements.len(), 3);
        for req in &case.requirements {
            let v = analyze(&case.schema, req).unwrap();
            // Each user writes its probed attribute — always flagged.
            assert!(v.is_violated(), "{req}");
        }
    }

    #[test]
    fn edit_trace_script_toggles_consistently() {
        let case = edit_trace(4, 24, 7);
        // Replay: every op must actually change the evolving list, and only
        // reference functions the schema defines.
        let mut caps = case.schema.user_str("u").unwrap().clone();
        for op in &case.edits {
            match op {
                EditOp::Grant(f) => assert!(caps.grant(f.clone()), "no-op grant {f}"),
                EditOp::Revoke(f) => assert!(caps.revoke(f), "no-op revoke {f}"),
            }
        }
        assert_eq!(case.edits.len(), 24);
    }

    #[test]
    fn deep_expr_scales_and_detects() {
        let case = deep_expr(4);
        let v = analyze(&case.schema, &case.requirement).unwrap();
        assert!(v.is_violated());
    }

    #[test]
    fn multi_user_groups_stay_disjoint() {
        use secflow::algorithm::{analyze_batch, AnalysisConfig, BatchOptions};
        let case = multi_user(3, 2);
        assert_eq!(case.requirements.len(), 3);
        let out = analyze_batch(
            &case.schema,
            &case.requirements,
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        // Every head attribute is granted read + write to its own user:
        // each per-user requirement is violated independently.
        for (i, v) in out.verdicts.iter().enumerate() {
            assert!(v.as_ref().unwrap().is_violated(), "user {i}");
        }
        assert_eq!(out.groups.len(), 3);
    }

    #[test]
    fn dense_equalities_detects_and_builds_cliques() {
        let case = dense_equalities(5);
        assert_eq!(case.schema.functions.len(), 5);
        let v = analyze(&case.schema, &case.requirement).unwrap();
        // a0 is written and every probe reads it — always flagged.
        assert!(v.is_violated());
        // The family earns its name: the closure carries an `=`-clique
        // quadratic in the probe count.
        use secflow::closure::Closure;
        use secflow::term::Term;
        use secflow::unfold::NProgram;
        let prog = NProgram::unfold(&case.schema, case.schema.user_str("u").unwrap()).unwrap();
        let c = Closure::compute(&prog).unwrap();
        let eqs = c.iter().filter(|t| matches!(t, Term::Eq(..))).count();
        assert!(eqs >= 5 * 5, "only {eqs} equalities");
    }

    #[test]
    fn scale_families_reach_thousands_of_nodes() {
        // The saturation bench leans on these families at kernel-stressing
        // sizes; pin the unfolded program size so "thousands of numbered
        // occurrences" stays true if the generators change shape.
        use secflow::unfold::NProgram;
        let wide = wide_grants(512);
        let prog = NProgram::unfold(&wide.schema, wide.schema.user_str("u").unwrap()).unwrap();
        assert!(
            prog.len() >= 2_000,
            "wide_grants(512) shrank: {}",
            prog.len()
        );
        let dense = dense_equalities(48);
        let prog = NProgram::unfold(&dense.schema, dense.schema.user_str("u").unwrap()).unwrap();
        assert!(
            prog.len() >= 250,
            "dense_equalities(48) shrank: {}",
            prog.len()
        );
    }

    #[test]
    fn attr_fanout_detects_direct_grant() {
        let case = attr_fanout(4);
        let v = analyze(&case.schema, &case.requirement).unwrap();
        // r_a0 is granted directly: trivially violated.
        assert!(v.is_violated());
    }

    #[test]
    fn zipf_population_is_deterministic_and_skewed() {
        let a = zipf_population(500, 16, 9);
        let b = zipf_population(500, 16, 9);
        assert_eq!(a.schema.to_string(), b.schema.to_string());
        assert_eq!(a.requirements.len(), 500);
        assert_eq!(
            format!("{:?}", a.requirements),
            format!("{:?}", b.requirements),
            "same seed, same draws"
        );
        // Popularity is Zipf-skewed: the top profile holds far more users
        // than the uniform share (500 / 16 ≈ 31).
        let mut by_target: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for r in &a.requirements {
            *by_target.entry(format!("{:?}", r.target)).or_default() += 1;
        }
        assert!(by_target.len() <= 16);
        let top = by_target.values().max().copied().unwrap();
        assert!(top > 90, "rank-1 profile only drew {top} of 500 users");
    }

    #[test]
    fn zipf_population_collapses_onto_fingerprint_cache() {
        use secflow::algorithm::{
            analyze, analyze_batch_cached, AnalysisConfig, BatchOptions, ClosureCache,
        };
        let case = zipf_population(300, 8, 42);
        let cache = ClosureCache::with_shards(16, 2);
        let out = analyze_batch_cached(
            &case.schema,
            &case.requirements,
            &AnalysisConfig::default(),
            &BatchOptions::default(),
            Some(&cache),
        );
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 300, "one cache probe per group");
        assert!(
            stats.misses <= 8,
            "at most one miss per fingerprint, got {}",
            stats.misses
        );
        assert_eq!(stats.union_recomputes, 0, "profiles share goal shapes");
        // Verdicts match per-requirement analysis, and both polarities
        // occur (even profiles write their probed attribute, odd do not).
        let mut violated = 0;
        for (req, v) in case.requirements.iter().zip(&out.verdicts) {
            let expect = analyze(&case.schema, req).unwrap();
            assert_eq!(v.as_ref().unwrap(), &expect, "{req}");
            violated += usize::from(expect.is_violated());
        }
        assert!(violated > 0 && violated < 300, "mixed verdicts: {violated}");
    }

    #[test]
    fn skewed_groups_flag_every_user_under_both_schedules() {
        use secflow::algorithm::{analyze_batch, AnalysisConfig, BatchOptions, BatchSchedule};
        let case = skewed_groups(9, 8, 2);
        assert_eq!(case.requirements.len(), 9);
        let fixed = analyze_batch(
            &case.schema,
            &case.requirements,
            &AnalysisConfig::default(),
            &BatchOptions {
                jobs: 4,
                schedule: BatchSchedule::Fixed,
                ..BatchOptions::default()
            },
        );
        // Every user writes its slice head and probes it.
        for v in &fixed.verdicts {
            assert!(v.as_ref().unwrap().is_violated());
        }
        assert_eq!(fixed.steals, 0);
        let stealing = analyze_batch(
            &case.schema,
            &case.requirements,
            &AnalysisConfig::default(),
            &BatchOptions {
                jobs: 4,
                ..BatchOptions::default()
            },
        );
        assert_eq!(stealing.verdicts, fixed.verdicts);
    }

    #[test]
    fn clustered_giants_front_loads_the_heavy_groups() {
        use secflow::algorithm::{analyze_batch, AnalysisConfig, BatchOptions, BatchSchedule};
        let case = clustered_giants(12, 3, 8, 2);
        assert_eq!(case.requirements.len(), 12);
        // The first `giants` users hold the wide capability lists; probe
        // count is width + 1 (the write grant).
        for (j, req) in case.requirements.iter().enumerate() {
            let caps = case.schema.users.get(&req.user).unwrap();
            let expect = if j < 3 { 8 + 1 } else { 2 + 1 };
            assert_eq!(caps.len(), expect, "user u{j} capability count");
        }
        let fixed = analyze_batch(
            &case.schema,
            &case.requirements,
            &AnalysisConfig::default(),
            &BatchOptions {
                jobs: 4,
                schedule: BatchSchedule::Fixed,
                ..BatchOptions::default()
            },
        );
        for v in &fixed.verdicts {
            assert!(v.as_ref().unwrap().is_violated());
        }
        let stealing = analyze_batch(
            &case.schema,
            &case.requirements,
            &AnalysisConfig::default(),
            &BatchOptions {
                jobs: 4,
                ..BatchOptions::default()
            },
        );
        assert_eq!(stealing.verdicts, fixed.verdicts);
    }
}
