//! The paper's own scenarios as ready-made, type-checked schemas.

use oodb_engine::Database;
use oodb_lang::{check_schema, parse_schema, Schema};
use oodb_model::Value;

/// The stockbroker scenario of §1 and §4.2: a clerk may test the budget
/// regulation (`checkBudget`) and adjust budgets (`w_budget`) but must not
/// learn salaries; a payroll user runs the weekly salary update. Users
/// `safe_clerk` / `safe_payroll` are the repaired policies.
pub const STOCKBROKER_SRC: &str = r#"
    # Tajima, SIGMOD'96 — the running example.
    class Broker { name: string, salary: int, budget: int, profit: int }

    # New salary from last week's budget and profit (§1).
    fn calcSalary(budget: int, profit: int): int {
      budget / 10 + profit / 2
    }

    # "the budget of each broker should not be higher than ten times his
    #  salary" (§1).
    fn checkBudget(broker: Broker): bool {
      r_budget(broker) >= 10 * r_salary(broker)
    }

    # The weekly update (§1).
    fn updateSalary(broker: Broker): null {
      w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
    }

    user clerk { checkBudget, w_budget }
    user safe_clerk { checkBudget }
    user payroll { updateSalary, w_budget }
    user safe_payroll { updateSalary }
    user admin { checkBudget, updateSalary, calcSalary, r_name, r_salary, r_budget, r_profit, w_name, w_salary, w_budget, w_profit, new Broker }

    # §4.2: the clerk must not infer any broker's exact salary.
    require (clerk, r_salary(x) : ti)
    # §3.1: the payroll user must not control the written salary.
    require (payroll, w_salary(x, v: ta))
    # The repaired policies must pass the same requirements.
    require (safe_clerk, r_salary(x) : ti)
    require (safe_payroll, w_salary(x, v: ta))
"#;

/// Parse and check the stockbroker schema.
pub fn stockbroker() -> Schema {
    let s = parse_schema(STOCKBROKER_SRC).expect("fixture parses");
    check_schema(&s).expect("fixture checks");
    s
}

/// A stockbroker database seeded with the brokers used in examples/tests.
pub fn stockbroker_db() -> Database {
    let mut db = Database::new(stockbroker()).expect("fixture checks");
    for (name, salary, budget, profit) in [
        ("John", 150, 1000, 50),
        ("Jane", 90, 2000, 120),
        ("Ken", 200, 1500, -30),
    ] {
        db.create(
            "Broker",
            vec![
                Value::str(name),
                Value::Int(salary),
                Value::Int(budget),
                Value::Int(profit),
            ],
        )
        .expect("seeding fits the schema");
    }
    db
}

/// The payroll slice of the scenario alone (used by the payroll example).
pub fn payroll() -> Schema {
    stockbroker()
}

/// The person/profile schema of §2, including the set-valued `child`
/// attribute and the paper's nested query example.
pub const PERSON_SRC: &str = r#"
    class Person { name: string, age: int, child: {Person} }

    fn profile(p: Person): string {
      "name: " ++ r_name(p)
    }

    fn isAdult(p: Person): bool {
      r_age(p) >= 18
    }

    user u { profile, isAdult, r_name, r_child }

    # u may learn who is an adult but not the exact age.
    require (u, r_age(x) : ti)
"#;

/// Parse and check the person schema.
pub fn person() -> Schema {
    let s = parse_schema(PERSON_SRC).expect("fixture parses");
    check_schema(&s).expect("fixture checks");
    s
}

/// A small hospital scenario used by the auditor example: an auditor can
/// compare a patient's bill against a cap and reset the cap, recreating the
/// paper's flaw shape in a second domain.
pub const HOSPITAL_SRC: &str = r#"
    class Patient { name: string, bill: int, cap: int, visits: int }

    fn overCap(p: Patient): bool {
      r_bill(p) > r_cap(p)
    }

    fn averageVisitCost(p: Patient): int {
      r_bill(p) / (r_visits(p) + 1)
    }

    user auditor { overCap, w_cap }
    user safe_auditor { overCap }
    user analyst { averageVisitCost }

    require (auditor, r_bill(x) : ti)
    require (safe_auditor, r_bill(x) : ti)
    require (analyst, r_bill(x) : ti)
"#;

/// Parse and check the hospital schema.
pub fn hospital() -> Schema {
    let s = parse_schema(HOSPITAL_SRC).expect("fixture parses");
    check_schema(&s).expect("fixture checks");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_parse_and_check() {
        assert_eq!(stockbroker().functions.len(), 3);
        assert_eq!(person().functions.len(), 2);
        assert_eq!(hospital().functions.len(), 2);
    }

    #[test]
    fn stockbroker_db_seeded() {
        let db = stockbroker_db();
        assert_eq!(db.extent(&"Broker".into()).len(), 3);
    }

    #[test]
    fn fixture_requirements_present() {
        assert_eq!(stockbroker().requirements.len(), 4);
        assert_eq!(person().requirements.len(), 1);
        assert_eq!(hospital().requirements.len(), 3);
    }
}
