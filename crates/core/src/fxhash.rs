//! A std-only FxHash-style hasher for the closure hot path.
//!
//! The default `SipHasher13` behind `std::collections::HashMap` is keyed and
//! DoS-resistant, which the closure engine does not need: every key it
//! hashes is a [`crate::term::TermId`] or a small integer derived from a
//! program the analyst wrote themselves. The Firefox/rustc "Fx" multiply-
//! and-rotate mix is 5-10x cheaper per key and — unlike `RandomState` —
//! deterministic across processes, which keeps saturation traversal (and so
//! witness selection) reproducible.
//!
//! Only the fixed-width integer fast paths matter here; the byte-slice
//! fallback exists for completeness (e.g. if a future key type derives
//! `Hash` through strings).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx mixing constant (golden-ratio derived, as in rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-and-rotate hasher. Not DoS-resistant — use only for keys
/// the process itself constructs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so `Default` is the builder).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of(0x1234_5678_9abc_def0_u128), {
            hash_of(0x1234_5678_9abc_def0_u128)
        });
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h: Vec<u64> = (0u64..64).map(hash_of).collect();
        let distinct: std::collections::HashSet<&u64> = h.iter().collect();
        assert_eq!(distinct.len(), h.len(), "dense small keys must not collide");
    }

    #[test]
    fn byte_slice_fallback_matches_itself() {
        assert_eq!(hash_of("salary"), hash_of("salary"));
        assert_ne!(hash_of("salary"), hash_of("budget"));
    }

    #[test]
    fn set_and_map_aliases_work() {
        let mut s: FxHashSet<u128> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
    }
}
