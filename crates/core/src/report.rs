//! Verdicts and Figure-1 style derivation rendering.
//!
//! `A(R)` answers *satisfied* or *not satisfied*; when not satisfied we also
//! carry the violating occurrence(s) and, for each required capability, the
//! witness term whose recorded derivation can be printed in the style of
//! the paper's Figure 1:
//!
//! ```text
//! =[1broker, 8a1]                                   (axiom for =)
//! =[2r_budget(1broker), 9a2]                        (rule for =)
//! ti[9a2, 9, +]                                     (axiom)
//! ti[2r_budget(1broker), 9, +]                      (inferability based on =)
//! …
//! ti[5r_salary(4broker), 6, -]                      (basic function: * quotient inference)
//! ```

use crate::closure::Closure;
use crate::term::Term;
use crate::unfold::{ExprId, NProgram};
use std::collections::HashSet;
use std::fmt;

/// Where an occurrence of the target function sits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OccurrenceKind {
    /// The target is in the user's capability list and invoked directly.
    OuterAccess {
        /// Index into [`NProgram::outers`].
        outer: usize,
    },
    /// The target occurs inside an unfolded body: a `let(f)` node or a
    /// special-function node.
    Inner {
        /// The node's serial number.
        node: ExprId,
    },
}

/// One occurrence of the requirement's target function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Occurrence {
    /// Outer grant or inner node.
    pub kind: OccurrenceKind,
    /// Argument expressions by position (empty for outer access grants —
    /// the user supplies those directly).
    pub args: Vec<ExprId>,
    /// The expression carrying the returned value.
    pub ret: ExprId,
}

/// One violating occurrence with the witnessing closure terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The occurrence.
    pub occurrence: Occurrence,
    /// One witness term per capability listed in the requirement, in
    /// requirement order (arguments left to right, then the return).
    pub witnesses: Vec<Term>,
}

/// The outcome of `A(R)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No occurrence achieves all required capabilities: the requirement is
    /// satisfied (no flaw found — and by Theorem 1, no flaw exists that the
    /// requirement describes).
    Satisfied,
    /// At least one occurrence achieves them all: a (potential) security
    /// flaw.
    Violated(Vec<Violation>),
}

impl Verdict {
    /// Is this a violation?
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// The violations (empty when satisfied).
    pub fn violations(&self) -> &[Violation] {
        match self {
            Verdict::Satisfied => &[],
            Verdict::Violated(v) => v,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Satisfied => write!(f, "satisfied"),
            Verdict::Violated(v) => write!(f, "NOT satisfied ({} occurrence(s))", v.len()),
        }
    }
}

/// Render a term against a program: expression ids are replaced by the
/// paper's numbered notation.
pub fn render_term(prog: &NProgram, t: &Term) -> String {
    match t {
        Term::Ta(e) => format!("ta[{}]", prog.render_shallow(*e)),
        Term::Pa(e) => format!("pa[{}]", prog.render_shallow(*e)),
        Term::Ti(e, o) => format!("ti[{}, {}]", prog.render_shallow(*e), o),
        Term::Pi(e, o) => format!("pi[{}, {}]", prog.render_shallow(*e), o),
        Term::PiStar(a, b, o) => format!(
            "pi*[({}, {}), {}]",
            prog.render_shallow(*a),
            prog.render_shallow(*b),
            o
        ),
        Term::Eq(a, b) => format!(
            "=[{}, {}]",
            prog.render_shallow(*a),
            prog.render_shallow(*b)
        ),
    }
}

/// Produce a Figure-1 style linear derivation of `goal`: premises above
/// conclusions, each line annotated with its rule, duplicates folded.
pub fn render_derivation(prog: &NProgram, closure: &Closure, goal: &Term) -> String {
    let mut lines: Vec<(Term, &'static str)> = Vec::new();
    let mut seen: HashSet<Term> = HashSet::new();
    collect(closure, goal, &mut seen, &mut lines);
    let width = lines
        .iter()
        .map(|(t, _)| render_term(prog, t).len())
        .max()
        .unwrap_or(0)
        .min(72);
    let mut out = String::new();
    for (t, rule) in lines {
        let rendered = render_term(prog, &t);
        let pad = width.saturating_sub(rendered.len()) + 3;
        out.push_str(&rendered);
        out.extend(std::iter::repeat_n(' ', pad));
        out.push('(');
        out.push_str(rule);
        out.push_str(")\n");
    }
    out
}

fn collect(
    closure: &Closure,
    goal: &Term,
    seen: &mut HashSet<Term>,
    out: &mut Vec<(Term, &'static str)>,
) {
    // Iterative post-order over the proof DAG — long equality chains can
    // make the DAG thousands of steps deep, which must not overflow the
    // stack when rendering from the CLI.
    enum Frame {
        Visit(Term),
        Emit(Term, &'static str),
    }
    let mut stack = vec![Frame::Visit(*goal)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Visit(t) => {
                if !seen.insert(t) {
                    continue;
                }
                if let Some(d) = closure.proof(&t) {
                    stack.push(Frame::Emit(t, d.rule));
                    // Premises are pushed in reverse so they pop — and thus
                    // print — in rule order.
                    for p in d.premises.iter().rev() {
                        stack.push(Frame::Visit(*p));
                    }
                }
            }
            Frame::Emit(t, rule) => out.push((t, rule)),
        }
    }
}

/// A one-paragraph human summary of a verdict for a requirement, with the
/// full derivation of the first witness.
pub fn explain(prog: &NProgram, closure: &Closure, verdict: &Verdict) -> String {
    match verdict {
        Verdict::Satisfied => "requirement satisfied: no occurrence of the target achieves all \
                               specified capabilities"
            .to_owned(),
        Verdict::Violated(violations) => {
            let mut out = String::new();
            for (i, v) in violations.iter().enumerate() {
                out.push_str(&format!(
                    "violation {} of {}: occurrence at {} with witnesses:\n",
                    i + 1,
                    violations.len(),
                    match v.occurrence.kind {
                        OccurrenceKind::OuterAccess { outer } => format!("outer grant #{outer}"),
                        OccurrenceKind::Inner { node } => prog.render_shallow(node),
                    }
                ));
                for w in &v.witnesses {
                    out.push_str("  ");
                    out.push_str(&render_term(prog, w));
                    out.push('\n');
                }
                if let Some(first) = v.witnesses.first() {
                    out.push_str("derivation of the first witness:\n");
                    out.push_str(&render_derivation(prog, closure, first));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::Closure;
    use crate::unfold::NProgram;
    use oodb_lang::parse_schema;

    fn setup() -> (NProgram, Closure) {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
        )
        .unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let c = Closure::compute(&prog).unwrap();
        (prog, c)
    }

    #[test]
    fn derivation_of_figure_one_goal() {
        let (prog, c) = setup();
        let goal = c.ti_witness(5).expect("figure 1 goal must be derivable");
        let text = render_derivation(&prog, &c, &goal);
        // The derivation must be non-empty, end at the goal, and mention
        // the key Figure-1 judgments.
        assert!(text.contains("ti[5r_salary(4)"));
        assert!(text.contains("axiom"));
        assert!(text.contains("basic function"));
        // Premises precede conclusions: the goal is the last line.
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("ti[5r_salary(4)"), "last line: {last}");
    }

    #[test]
    fn render_terms() {
        let (prog, _c) = setup();
        assert_eq!(render_term(&prog, &Term::Ta(9)), "ta[9a2]");
        assert_eq!(render_term(&prog, &Term::Eq(1, 8)), "=[1broker, 8a1]");
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Satisfied.to_string(), "satisfied");
        let v = Verdict::Violated(vec![]);
        assert!(v.is_violated());
        assert!(Verdict::Satisfied.violations().is_empty());
    }
}
