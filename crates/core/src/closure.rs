//! The closure engine: semi-naive saturation of `F(F)` with proof recording.
//!
//! Terms are kept in a hash set with per-expression capability indexes; a
//! worklist drives propagation, so every rule fires once per new premise.
//! Every derived term records the rule label and the exact premise terms
//! that produced it, which is what lets [`crate::report`] print Figure-1
//! style derivations.
//!
//! Termination: the term universe is finite — origins range over
//! `{0..N} × {+,−}` for `N` numbered occurrences, so there are at most
//! `O(N²)` capability terms, `O(N²)` equalities and `O(N³)` pi* terms. A
//! configurable budget aborts pathological closures long before memory
//! pressure.

use crate::basics::{rules_for, LCap, LTerm, LocalRule, Slot};
use crate::rules::{axioms_with, labels, RuleConfig};
use crate::stats::{ClosureObserver, ClosureStats, NoopObserver};
use crate::term::{Dir, Origin, Term};
use crate::unfold::{ExprId, NKind, NProgram};
use oodb_lang::BasicOp;
use oodb_model::AttrName;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// How a term entered the closure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// Rule label (Figure-1 style).
    pub rule: &'static str,
    /// The premise terms, in rule order. Empty for axioms.
    pub premises: Vec<Term>,
}

/// Closure failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClosureError {
    /// The term budget was exhausted.
    TermLimit {
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for ClosureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClosureError::TermLimit { limit } => {
                write!(f, "closure exceeded the budget of {limit} terms")
            }
        }
    }
}

impl std::error::Error for ClosureError {}

/// Default term budget.
pub const DEFAULT_TERM_LIMIT: usize = 2_000_000;

/// The computed closure of all derivable `F(F)` terms for one unfolded
/// program.
#[derive(Debug)]
pub struct Closure {
    terms: HashSet<Term>,
    proofs: HashMap<Term, Derivation>,
    ta: HashSet<ExprId>,
    pa: HashSet<ExprId>,
    ti: HashMap<ExprId, Vec<Origin>>,
    pi: HashMap<ExprId, Vec<Origin>>,
    pistar: HashMap<ExprId, Vec<(ExprId, Origin)>>,
    eq: HashMap<ExprId, Vec<ExprId>>,
    rounds: usize,
}

impl Closure {
    /// Compute the closure with default configuration and budget.
    pub fn compute(prog: &NProgram) -> Result<Closure, ClosureError> {
        Self::compute_with(prog, &RuleConfig::default(), DEFAULT_TERM_LIMIT)
    }

    /// Compute with explicit rule configuration and term budget.
    pub fn compute_with(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
    ) -> Result<Closure, ClosureError> {
        Engine::new(prog, *config, limit, NoopObserver).run().0
    }

    /// Like [`Closure::compute_with`], but also return [`ClosureStats`]
    /// describing the run: term counts per capability kind, rule firings,
    /// rounds, worklist high-water mark and dedup rate. Stats come back
    /// even when the run aborts on the term budget, so a post-mortem can
    /// see how far the saturation got.
    ///
    /// The plain `compute` paths use a monomorphised no-op observer, so
    /// this instrumentation costs nothing when unused.
    pub fn compute_with_stats(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
    ) -> (Result<Closure, ClosureError>, ClosureStats) {
        let (result, mut stats) = Engine::new(prog, *config, limit, ClosureStats::new(limit)).run();
        stats.aborted = result.is_err();
        (result, stats)
    }

    /// Number of terms in the closure.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Is the closure empty (only possible for empty programs)?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of worklist steps taken (for the scaling experiments).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Does the closure contain this exact term?
    pub fn contains(&self, t: &Term) -> bool {
        self.terms.contains(t)
    }

    /// Total alterability may be achievable on the occurrence.
    pub fn has_ta(&self, e: ExprId) -> bool {
        self.ta.contains(&e)
    }

    /// Partial alterability may be achievable.
    pub fn has_pa(&self, e: ExprId) -> bool {
        self.pa.contains(&e)
    }

    /// Total inferability may be achievable (any origin).
    pub fn has_ti(&self, e: ExprId) -> bool {
        self.ti.contains_key(&e)
    }

    /// Partial inferability may be achievable (any origin).
    pub fn has_pi(&self, e: ExprId) -> bool {
        self.pi.contains_key(&e)
    }

    /// The occurrences the user may know to be equal to `e`.
    pub fn equal_to(&self, e: ExprId) -> &[ExprId] {
        self.eq.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The derivation of a term, if it is in the closure.
    pub fn proof(&self, t: &Term) -> Option<&Derivation> {
        self.proofs.get(t)
    }

    /// Any `ti` term (with its origin) on the occurrence — the witness used
    /// in reports.
    pub fn ti_witness(&self, e: ExprId) -> Option<Term> {
        self.ti.get(&e).map(|os| Term::Ti(e, os[0]))
    }

    /// Any `pi` witness.
    pub fn pi_witness(&self, e: ExprId) -> Option<Term> {
        self.pi.get(&e).map(|os| Term::Pi(e, os[0]))
    }

    /// Iterate over all terms (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Term> {
        self.terms.iter()
    }
}

struct Engine<'p, O: ClosureObserver> {
    prog: &'p NProgram,
    config: RuleConfig,
    limit: usize,
    obs: O,
    out: Closure,
    queue: VecDeque<Term>,
    // structural indexes
    basic_slots: HashMap<ExprId, Vec<(ExprId, Slot)>>,
    /// Binary nodes whose diagonal (equal arguments) is informative:
    /// node → (arg0, arg1). See `try_diagonal`.
    diag_nodes: HashMap<ExprId, (ExprId, ExprId)>,
    read_by_recv: HashMap<ExprId, Vec<ExprId>>,
    writes_by_recv: HashMap<ExprId, Vec<(AttrName, ExprId)>>,
    op_rules: HashMap<BasicOp, Vec<LocalRule>>,
}

impl<'p, O: ClosureObserver> Engine<'p, O> {
    fn new(prog: &'p NProgram, config: RuleConfig, limit: usize, obs: O) -> Engine<'p, O> {
        let mut basic_slots: HashMap<ExprId, Vec<(ExprId, Slot)>> = HashMap::new();
        let mut diag_nodes: HashMap<ExprId, (ExprId, ExprId)> = HashMap::new();
        let mut read_by_recv: HashMap<ExprId, Vec<ExprId>> = HashMap::new();
        let mut writes_by_recv: HashMap<ExprId, Vec<(AttrName, ExprId)>> = HashMap::new();
        let mut op_rules: HashMap<BasicOp, Vec<LocalRule>> = HashMap::new();

        for e in prog.iter() {
            match &e.kind {
                NKind::Basic(op, args) => {
                    for (i, a) in args.iter().enumerate() {
                        basic_slots
                            .entry(*a)
                            .or_default()
                            .push((e.id, Slot::Arg(i)));
                    }
                    basic_slots.entry(e.id).or_default().push((e.id, Slot::Ret));
                    op_rules.entry(*op).or_insert_with(|| rules_for(*op));
                    // Diagonal candidates: ops whose restriction to equal
                    // arguments is injective (x+x = 2x, x*x = x², s++s).
                    if matches!(op, BasicOp::Add | BasicOp::Mul | BasicOp::Concat)
                        && args.len() == 2
                        && args[0] != args[1]
                    {
                        diag_nodes.insert(e.id, (args[0], args[1]));
                    }
                }
                NKind::Read(_attr, recv) => {
                    read_by_recv.entry(*recv).or_default().push(e.id);
                }
                NKind::Write(attr, recv, val) => {
                    writes_by_recv
                        .entry(*recv)
                        .or_default()
                        .push((attr.clone(), *val));
                }
                _ => {}
            }
        }

        Engine {
            prog,
            config,
            limit,
            obs,
            out: Closure {
                terms: HashSet::new(),
                proofs: HashMap::new(),
                ta: HashSet::new(),
                pa: HashSet::new(),
                ti: HashMap::new(),
                pi: HashMap::new(),
                pistar: HashMap::new(),
                eq: HashMap::new(),
                rounds: 0,
            },
            queue: VecDeque::new(),
            basic_slots,
            diag_nodes,
            read_by_recv,
            writes_by_recv,
            op_rules,
        }
    }

    fn run(mut self) -> (Result<Closure, ClosureError>, O) {
        let result = self.saturate();
        (result.map(|_| self.out), self.obs)
    }

    fn saturate(&mut self) -> Result<(), ClosureError> {
        for (t, rule) in axioms_with(self.prog, self.config.printable_oids) {
            self.derive(t, rule, Vec::new())?;
        }
        // Constructor-read on direct receivers: r_att(new C(…)) reads the
        // matching constructor argument without needing an equality step.
        if self.config.write_read {
            let direct: Vec<Term> = self
                .prog
                .iter()
                .filter_map(|e| match &e.kind {
                    NKind::Read(attr, recv) => self
                        .ctor_arg(*recv, attr)
                        .and_then(|arg| Term::eq(arg, e.id)),
                    _ => None,
                })
                .collect();
            for t in direct {
                self.derive(t, labels::RULE_EQ, Vec::new())?;
            }
        }
        while let Some(t) = self.queue.pop_front() {
            self.out.rounds += 1;
            self.obs.round();
            self.propagate(t)?;
        }
        Ok(())
    }

    /// The constructor argument feeding attribute `attr` when `e` is a
    /// `new C(…)` node (unfolding pairs each constructor argument with the
    /// attribute it initialises).
    fn ctor_arg(&self, e: ExprId, attr: &AttrName) -> Option<ExprId> {
        match &self.prog.get(e).kind {
            NKind::New(_class, args) => args
                .iter()
                .find(|(name, _)| name == attr)
                .map(|(_, id)| *id),
            _ => None,
        }
    }

    fn derive(
        &mut self,
        t: Term,
        rule: &'static str,
        premises: Vec<Term>,
    ) -> Result<(), ClosureError> {
        self.obs.derive_attempt();
        if self.out.terms.contains(&t) {
            self.obs.dedup_hit();
            return Ok(());
        }
        if self.out.terms.len() >= self.limit {
            return Err(ClosureError::TermLimit { limit: self.limit });
        }
        self.out.terms.insert(t);
        self.obs.term_inserted(&t, rule);
        self.out.proofs.insert(t, Derivation { rule, premises });
        match t {
            Term::Ta(e) => {
                self.out.ta.insert(e);
            }
            Term::Pa(e) => {
                self.out.pa.insert(e);
            }
            Term::Ti(e, o) => self.out.ti.entry(e).or_default().push(o),
            Term::Pi(e, o) => self.out.pi.entry(e).or_default().push(o),
            Term::PiStar(a, b, o) => {
                self.out.pistar.entry(a).or_default().push((b, o));
                self.out.pistar.entry(b).or_default().push((a, o));
            }
            Term::Eq(a, b) => {
                self.out.eq.entry(a).or_default().push(b);
                self.out.eq.entry(b).or_default().push(a);
            }
        }
        self.queue.push_back(t);
        self.obs.worklist_len(self.queue.len());
        Ok(())
    }

    fn propagate(&mut self, t: Term) -> Result<(), ClosureError> {
        match t {
            Term::Ta(e) => {
                // Lattice.
                self.derive(Term::Pa(e), labels::LATTICE, vec![t])?;
                // Receiver alterability: steering the receiver over the
                // extent reaches at least the attribute values already
                // present — partial alterability (total comes only through
                // write-read equality).
                for n in self.read_by_recv.get(&e).cloned().unwrap_or_default() {
                    self.derive(Term::Pa(n), labels::READ_RECEIVER, vec![t])?;
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
            }
            Term::Pa(e) => {
                for n in self.read_by_recv.get(&e).cloned().unwrap_or_default() {
                    self.derive(Term::Pa(n), labels::READ_RECEIVER, vec![t])?;
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
            }
            Term::Ti(e, o) => {
                self.derive(Term::Pi(e, o), labels::LATTICE, vec![t])?;
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
                self.try_diagonal(e)?;
            }
            Term::Pi(e, o) => {
                // pi-join: another pi with a different origin → ti.
                if self.config.pi_join {
                    let other = self
                        .out
                        .pi
                        .get(&e)
                        .and_then(|os| os.iter().find(|o2| **o2 != o).copied());
                    if let Some(o2) = other {
                        self.derive(Term::Ti(e, o), labels::PI_JOIN, vec![Term::Pi(e, o2), t])?;
                    }
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
                self.try_diagonal(e)?;
            }
            Term::PiStar(a, b, o) => {
                if self.config.pi_star {
                    // Joint constraint on equals (see the Eq arm).
                    if o != Origin::AXIOM && self.out.terms.contains(&Term::Eq(a, b)) {
                        let eq = Term::Eq(a, b);
                        self.derive(Term::Pi(a, o), labels::PI_STAR_ON_EQUALS, vec![eq, t])?;
                        self.derive(Term::Pi(b, o), labels::PI_STAR_ON_EQUALS, vec![eq, t])?;
                    }
                    // Compose pi* chains.
                    for (end, via) in [(a, b), (b, a)] {
                        let neighbours = self.out.pistar.get(&via).cloned().unwrap_or_default();
                        for (c, o2) in neighbours {
                            if c != end && c != via {
                                if let Some(nt) = Term::pi_star(end, c, o) {
                                    let other =
                                        Term::pi_star(via, c, o2).expect("stored pi* is proper");
                                    self.derive(nt, labels::PI_STAR_JOIN, vec![t, other])?;
                                }
                            }
                        }
                    }
                    // Transfer across equalities.
                    self.transfer_by_eq(t, a)?;
                    self.transfer_by_eq(t, b)?;
                    self.fire_local_rules(a)?;
                    self.fire_local_rules(b)?;
                }
            }
            Term::Eq(a, b) => {
                // Transitivity.
                for (x, y) in [(a, b), (b, a)] {
                    for c in self.out.eq.get(&x).cloned().unwrap_or_default() {
                        if let Some(nt) = Term::eq(c, y) {
                            let prem = Term::eq(x, c).expect("adjacency implies distinct");
                            self.derive(nt, labels::RULE_EQ, vec![t, prem])?;
                        }
                    }
                }
                // Attribute congruence: r_att(a) = r_att(b).
                let reads_a = self.read_by_recv.get(&a).cloned().unwrap_or_default();
                let reads_b = self.read_by_recv.get(&b).cloned().unwrap_or_default();
                for ra in &reads_a {
                    for rb in &reads_b {
                        let attr_a = self.read_attr_of(*ra);
                        let attr_b = self.read_attr_of(*rb);
                        if attr_a == attr_b {
                            if let Some(nt) = Term::eq(*ra, *rb) {
                                self.derive(nt, labels::RULE_EQ, vec![t])?;
                            }
                        }
                    }
                }
                if self.config.write_read {
                    // Write-read: w_att(a, v) and r_att(b) ⇒ v = r_att(b).
                    for (wrecv, rrecv) in [(a, b), (b, a)] {
                        let writes = self.writes_by_recv.get(&wrecv).cloned().unwrap_or_default();
                        for (attr, val) in writes {
                            for r in self.read_by_recv.get(&rrecv).cloned().unwrap_or_default() {
                                if self.read_attr_of(r) == Some(attr.clone()) {
                                    if let Some(nt) = Term::eq(val, r) {
                                        self.derive(nt, labels::RULE_EQ, vec![t])?;
                                    }
                                }
                            }
                        }
                        // Constructor-read: new C(…,a_j,…) = wrecv side.
                        for r in self.read_by_recv.get(&rrecv).cloned().unwrap_or_default() {
                            if let Some(attr) = self.read_attr_of(r) {
                                if let Some(arg) = self.ctor_arg(wrecv, &attr) {
                                    if let Some(nt) = Term::eq(arg, r) {
                                        self.derive(nt, labels::RULE_EQ, vec![t])?;
                                    }
                                }
                            }
                        }
                    }
                }
                // Joint constraint on equals: a (non-equality-derived)
                // pi* between two expressions the user knows to be equal
                // restricts the shared value itself — the diagonal of the
                // joint set may be a proper subset (I(E): join of rule 5
                // with the joint term).
                if self.config.pi_star {
                    let stars = self.out.pistar.get(&a).cloned().unwrap_or_default();
                    for (x, o) in stars {
                        if x == b && o != Origin::AXIOM {
                            let star = Term::pi_star(a, b, o).expect("stored pi* is proper");
                            self.derive(Term::Pi(a, o), labels::PI_STAR_ON_EQUALS, vec![t, star])?;
                            self.derive(Term::Pi(b, o), labels::PI_STAR_ON_EQUALS, vec![t, star])?;
                        }
                    }
                }
                // Diagonal: the equality may pair the two arguments of a
                // candidate node.
                let diag_hits: Vec<ExprId> = self
                    .diag_nodes
                    .iter()
                    .filter(|(_, &(x, y))| (x, y) == (a, b) || (x, y) == (b, a))
                    .map(|(n, _)| *n)
                    .collect();
                for n in diag_hits {
                    self.try_diagonal(n)?;
                }
                // pi* from equality.
                if self.config.pi_star {
                    if let Some(nt) = Term::pi_star(a, b, Origin::AXIOM) {
                        self.derive(nt, labels::PI_STAR_FROM_EQ, vec![t])?;
                    }
                }
                // Capability transfer in both directions.
                if self.config.eq_transfer {
                    self.transfer_all_caps(a, b, t)?;
                    self.transfer_all_caps(b, a, t)?;
                }
            }
        }
        Ok(())
    }

    fn read_attr_of(&self, read_node: ExprId) -> Option<AttrName> {
        match &self.prog.get(read_node).kind {
            NKind::Read(attr, _) => Some(attr.clone()),
            _ => None,
        }
    }

    /// Diagonal inversion (reconstruction of the I(E) join of Table 1's
    /// rule 5 with a basic-function dependency): when the two arguments of
    /// `e1 ⊕ e2` are known equal, the node computes an injective function of
    /// that shared value (`x+x`, `x*x` up to the pessimistic reading,
    /// `s++s`), so inferability of the result transfers to the arguments:
    ///
    /// ```text
    /// =[e1,e2], ti[⊕(e1,e2), n, d] → ti[e1, l, −], ti[e2, l, −]   (n ≠ l)
    /// =[e1,e2], pi[⊕(e1,e2), n, d] → pi[e1, l, −], pi[e2, l, −]   (n ≠ l)
    /// ```
    ///
    /// Without this rule the analysis misses flaws like
    /// `w_a0(c, r_a1(c) + r_a1(c))` + granted `r_a0` — the user reads 2·a1
    /// and halves it (found by the differential experiment E3).
    fn try_diagonal(&mut self, node: ExprId) -> Result<(), ClosureError> {
        if !self.config.basic_rules {
            return Ok(());
        }
        let Some(&(a, b)) = self.diag_nodes.get(&node) else {
            return Ok(());
        };
        let eq = Term::eq(a, b).expect("diagonal args are distinct");
        if !self.out.terms.contains(&eq) {
            return Ok(());
        }
        let origin = Origin::new(node, Dir::Up);
        let no_guard = !self.config.feedback_guard;
        let guard_ok = move |o: &Origin| no_guard || o.num != node;
        let ti_src = self
            .out
            .ti
            .get(&node)
            .and_then(|os| os.iter().copied().find(|o| guard_ok(o)));
        if let Some(o) = ti_src {
            let prem = Term::Ti(node, o);
            for arg in [a, b] {
                self.derive(
                    Term::Ti(arg, origin),
                    "basic function: diagonal inversion",
                    vec![eq, prem],
                )?;
            }
        }
        let pi_src = self
            .out
            .pi
            .get(&node)
            .and_then(|os| os.iter().copied().find(|o| guard_ok(o)));
        if let Some(o) = pi_src {
            let prem = Term::Pi(node, o);
            for arg in [a, b] {
                self.derive(
                    Term::Pi(arg, origin),
                    "basic function: diagonal inversion",
                    vec![eq, prem],
                )?;
            }
        }
        Ok(())
    }

    fn transfer_all_caps(
        &mut self,
        from: ExprId,
        to: ExprId,
        eq: Term,
    ) -> Result<(), ClosureError> {
        if self.out.ta.contains(&from) {
            self.derive(Term::Ta(to), labels::ALTER_BY_EQ, vec![eq, Term::Ta(from)])?;
        }
        if self.out.pa.contains(&from) {
            self.derive(Term::Pa(to), labels::ALTER_BY_EQ, vec![eq, Term::Pa(from)])?;
        }
        for o in self.out.ti.get(&from).cloned().unwrap_or_default() {
            self.derive(
                Term::Ti(to, o),
                labels::INFER_BY_EQ,
                vec![eq, Term::Ti(from, o)],
            )?;
        }
        for o in self.out.pi.get(&from).cloned().unwrap_or_default() {
            self.derive(
                Term::Pi(to, o),
                labels::INFER_BY_EQ,
                vec![eq, Term::Pi(from, o)],
            )?;
        }
        if self.config.pi_star {
            for (other, o) in self.out.pistar.get(&from).cloned().unwrap_or_default() {
                if other != to {
                    if let Some(nt) = Term::pi_star(to, other, o) {
                        let prem = Term::pi_star(from, other, o).expect("stored pi* is proper");
                        self.derive(nt, labels::INFER_BY_EQ, vec![eq, prem])?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Transfer a single capability term across all known equalities of `e`.
    fn transfer_by_eq(&mut self, t: Term, e: ExprId) -> Result<(), ClosureError> {
        if !self.config.eq_transfer {
            return Ok(());
        }
        for b in self.out.eq.get(&e).cloned().unwrap_or_default() {
            let eq_term = Term::eq(e, b).expect("adjacency implies distinct");
            let (derived, label) = match t {
                Term::Ta(_) => (Some(Term::Ta(b)), labels::ALTER_BY_EQ),
                Term::Pa(_) => (Some(Term::Pa(b)), labels::ALTER_BY_EQ),
                Term::Ti(_, o) => (Some(Term::Ti(b, o)), labels::INFER_BY_EQ),
                Term::Pi(_, o) => (Some(Term::Pi(b, o)), labels::INFER_BY_EQ),
                Term::PiStar(x, y, o) => {
                    let other = if x == e { y } else { x };
                    if other == b {
                        (None, labels::INFER_BY_EQ)
                    } else {
                        (Term::pi_star(b, other, o), labels::INFER_BY_EQ)
                    }
                }
                Term::Eq(..) => (None, labels::RULE_EQ),
            };
            if let Some(nt) = derived {
                self.derive(nt, label, vec![eq_term, t])?;
            }
        }
        Ok(())
    }

    /// Fire every local (basic-function) rule at the nodes where `e` fills a
    /// slot.
    fn fire_local_rules(&mut self, e: ExprId) -> Result<(), ClosureError> {
        if !self.config.basic_rules {
            return Ok(());
        }
        let nodes: Vec<ExprId> = self
            .basic_slots
            .get(&e)
            .map(|v| v.iter().map(|(n, _)| *n).collect())
            .unwrap_or_default();
        for node in nodes {
            self.try_node(node)?;
        }
        Ok(())
    }

    fn try_node(&mut self, node: ExprId) -> Result<(), ClosureError> {
        let (op, args) = match &self.prog.get(node).kind {
            NKind::Basic(op, args) => (*op, args.clone()),
            _ => return Ok(()),
        };
        let rules = self.op_rules.get(&op).cloned().unwrap_or_default();
        for rule in &rules {
            self.try_rule(node, &args, rule)?;
        }
        Ok(())
    }

    fn slot_expr(&self, node: ExprId, args: &[ExprId], slot: Slot) -> ExprId {
        match slot {
            Slot::Arg(i) => args[i],
            Slot::Ret => node,
        }
    }

    fn try_rule(
        &mut self,
        node: ExprId,
        args: &[ExprId],
        rule: &LocalRule,
    ) -> Result<(), ClosureError> {
        // Direction of the conclusion decides the feedback guard.
        let conclusion_down = match rule.conclusion {
            LTerm::Cap(_, Slot::Ret) => true,
            LTerm::Cap(_, Slot::Arg(_)) => false,
            LTerm::PiStar(a, b) => matches!(a, Slot::Ret) || matches!(b, Slot::Ret),
        };
        let guard_ok = |o: Origin| -> bool {
            if !self.config.feedback_guard {
                return true;
            }
            if conclusion_down {
                !(o.num == node && o.dir == Dir::Up)
            } else {
                o.num != node
            }
        };

        let mut premises = Vec::with_capacity(rule.premises.len());
        for p in &rule.premises {
            let found = match *p {
                LTerm::Cap(LCap::Ta, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.ta.contains(&e).then_some(Term::Ta(e))
                }
                LTerm::Cap(LCap::Pa, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.pa.contains(&e).then_some(Term::Pa(e))
                }
                LTerm::Cap(LCap::Ti, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out
                        .ti
                        .get(&e)
                        .and_then(|os| os.iter().copied().find(|o| guard_ok(*o)))
                        .map(|o| Term::Ti(e, o))
                }
                LTerm::Cap(LCap::Pi, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out
                        .pi
                        .get(&e)
                        .and_then(|os| os.iter().copied().find(|o| guard_ok(*o)))
                        .map(|o| Term::Pi(e, o))
                }
                LTerm::PiStar(s1, s2) => {
                    if !self.config.pi_star {
                        None
                    } else {
                        let a = self.slot_expr(node, args, s1);
                        let b = self.slot_expr(node, args, s2);
                        self.out
                            .pistar
                            .get(&a)
                            .and_then(|v| {
                                v.iter()
                                    .find(|(other, o)| *other == b && guard_ok(*o))
                                    .map(|(_, o)| *o)
                            })
                            .and_then(|o| Term::pi_star(a, b, o))
                    }
                }
            };
            match found {
                Some(t) => premises.push(t),
                None => return Ok(()),
            }
        }

        let dir = if conclusion_down { Dir::Down } else { Dir::Up };
        let origin = Origin::new(node, dir);
        let conclusion = match rule.conclusion {
            LTerm::Cap(LCap::Ta, s) => Some(Term::Ta(self.slot_expr(node, args, s))),
            LTerm::Cap(LCap::Pa, s) => Some(Term::Pa(self.slot_expr(node, args, s))),
            LTerm::Cap(LCap::Ti, s) => Some(Term::Ti(self.slot_expr(node, args, s), origin)),
            LTerm::Cap(LCap::Pi, s) => Some(Term::Pi(self.slot_expr(node, args, s), origin)),
            LTerm::PiStar(s1, s2) => {
                if !self.config.pi_star {
                    None
                } else {
                    Term::pi_star(
                        self.slot_expr(node, args, s1),
                        self.slot_expr(node, args, s2),
                        origin,
                    )
                }
            }
        };
        if let Some(c) = conclusion {
            self.derive(c, rule.name, premises)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    fn closure_for(src: &str, user: &str) -> (NProgram, Closure) {
        let schema = parse_schema(src).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str(user).unwrap()).unwrap();
        let c = Closure::compute(&prog).unwrap();
        (prog, c)
    }

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }
        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
    "#;

    #[test]
    fn figure_one_flaw_is_derived() {
        // §4.2 / Figure 1: ti on 5r_salary(4broker) must be in the closure.
        let (_p, c) = closure_for(STOCKBROKER, "clerk");
        assert!(c.has_ti(5), "clerk can infer the salary read (Figure 1)");
        // The key intermediate judgments of Figure 1.
        assert!(c.contains(&Term::Eq(1, 8))); // =[8o, 1broker]
        assert!(c.contains(&Term::Eq(2, 9))); // =[9v, 2r_budget(1broker)]
        assert!(c.has_ti(2)); // ti[2r_budget(1broker)]
        assert!(c.has_pa(2)); // pa[2r_budget(1broker)]
        assert!(c.has_ti(6)); // ti[6*(10, 5r_salary(4broker))]
    }

    #[test]
    fn without_write_capability_no_flaw() {
        // A clerk with only checkBudget cannot infer the salary.
        let (_p, c) = closure_for(STOCKBROKER, "safe_clerk");
        assert!(!c.has_ti(5), "no ti on the salary read without w_budget");
        assert!(!c.has_pi(5), "no pi either");
    }

    #[test]
    fn proofs_recorded_for_every_term() {
        let (_p, c) = closure_for(STOCKBROKER, "clerk");
        for t in c.iter() {
            assert!(c.proof(t).is_some(), "no proof for {t}");
        }
        // Axioms have no premises; derived terms have in-closure premises.
        for t in c.iter() {
            let d = c.proof(t).unwrap();
            for p in &d.premises {
                assert!(c.contains(p), "dangling premise {p} of {t}");
            }
        }
    }

    #[test]
    fn ablation_write_read_kills_figure_one() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let cfg = RuleConfig {
            write_read: false,
            ..RuleConfig::default()
        };
        let c = Closure::compute_with(&prog, &cfg, DEFAULT_TERM_LIMIT).unwrap();
        assert!(
            !c.has_ti(5),
            "without write-read equality the attack is invisible (unsound!)"
        );
    }

    #[test]
    fn ablation_eq_transfer_kills_alterability_flow() {
        // Inferability has a redundant pi*-based route, but alterability
        // only flows through the =-transfer rules: disabling them loses the
        // payroll-style ta detection (the written value stops being ta).
        let schema = parse_schema(
            r#"
            class Broker { salary: int, budget: int, profit: int }
            fn calcSalary(budget: int, profit: int): int { budget / 10 + profit / 2 }
            fn updateSalary(broker: Broker): null {
              w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
            }
            user payroll { updateSalary, w_budget }
            "#,
        )
        .unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("payroll").unwrap()).unwrap();
        let full = Closure::compute(&prog).unwrap();
        let cfg = RuleConfig {
            eq_transfer: false,
            ..RuleConfig::default()
        };
        let ablated = Closure::compute_with(&prog, &cfg, DEFAULT_TERM_LIMIT).unwrap();
        // The value argument of w_salary is the let(calcSalary) node — the
        // binding of the occurrence found by the algorithm.
        let w_salary_val = prog
            .iter()
            .find_map(|e| match &e.kind {
                crate::unfold::NKind::Write(attr, _, val) if attr.as_str() == "salary" => {
                    Some(*val)
                }
                _ => None,
            })
            .expect("w_salary occurs");
        assert!(full.has_ta(w_salary_val), "full rules detect the ta flow");
        assert!(!ablated.has_ta(w_salary_val), "no ta without =-transfer");
    }

    #[test]
    fn term_limit_aborts() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        assert!(matches!(
            Closure::compute_with(&prog, &RuleConfig::default(), 5),
            Err(ClosureError::TermLimit { limit: 5 })
        ));
    }

    #[test]
    fn stats_are_consistent_with_the_closure() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let (result, stats) =
            Closure::compute_with_stats(&prog, &RuleConfig::default(), DEFAULT_TERM_LIMIT);
        let c = result.unwrap();
        assert!(!stats.aborted);
        assert_eq!(stats.rounds as usize, c.rounds());
        assert_eq!(stats.total_terms() as usize, c.len());
        // Every derive attempt either deduplicated or inserted.
        assert_eq!(stats.derive_calls, stats.dedup_hits + stats.total_terms());
        // Per-kind counters match the actual term population.
        let count = |pred: fn(&Term) -> bool| c.iter().filter(|t| pred(t)).count() as u64;
        assert_eq!(stats.terms_ta, count(|t| matches!(t, Term::Ta(_))));
        assert_eq!(stats.terms_pa, count(|t| matches!(t, Term::Pa(_))));
        assert_eq!(stats.terms_ti, count(|t| matches!(t, Term::Ti(..))));
        assert_eq!(stats.terms_pi, count(|t| matches!(t, Term::Pi(..))));
        assert_eq!(stats.terms_pistar, count(|t| matches!(t, Term::PiStar(..))));
        assert_eq!(stats.terms_eq, count(|t| matches!(t, Term::Eq(..))));
        // Rule firings partition the insertions, and each label has a proof.
        let fired: u64 = stats.firings.iter().map(|(_, n)| *n).sum();
        assert_eq!(fired, stats.total_terms());
        assert!(stats.firings_of(labels::INFER_BY_EQ) > 0, "Figure 1 uses =");
        assert!(stats.worklist_peak > 0);
        assert!(stats.dedup_hit_rate() > 0.0 && stats.dedup_hit_rate() < 1.0);
        assert!(stats.budget_headroom() > 0.0);
    }

    #[test]
    fn stats_and_plain_compute_agree() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let plain = Closure::compute(&prog).unwrap();
        let (instrumented, _) =
            Closure::compute_with_stats(&prog, &RuleConfig::default(), DEFAULT_TERM_LIMIT);
        let instrumented = instrumented.unwrap();
        let mut t1: Vec<Term> = plain.iter().copied().collect();
        let mut t2: Vec<Term> = instrumented.iter().copied().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2, "observer must not change the fixpoint");
        assert_eq!(plain.rounds(), instrumented.rounds());
    }

    #[test]
    fn stats_survive_a_term_limit_abort() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let (result, stats) = Closure::compute_with_stats(&prog, &RuleConfig::default(), 5);
        assert!(matches!(result, Err(ClosureError::TermLimit { limit: 5 })));
        assert!(stats.aborted);
        assert_eq!(stats.total_terms(), 5, "budget filled exactly");
        assert_eq!(stats.budget_headroom(), 0.0);
        assert_eq!(stats.limit, 5);
    }

    #[test]
    fn closure_is_deterministic() {
        let (_p, c1) = closure_for(STOCKBROKER, "clerk");
        let (_p, c2) = closure_for(STOCKBROKER, "clerk");
        let mut t1: Vec<Term> = c1.iter().copied().collect();
        let mut t2: Vec<Term> = c2.iter().copied().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2);
    }

    #[test]
    fn feedback_guard_blocks_self_derivation() {
        // f(x:int) = x + 1 granted alone: the user knows x (ti axiom) and
        // the result (body axiom). Fine. But pi on the result must not loop
        // through the + node to create fresh "different ways" on x.
        let (_p, c) = closure_for("fn f(x: int): int { x + 1 } user u { f }", "u");
        // x (id 1) is ti — both by axiom and by inversion through +; the
        // guard only blocks re-derivation through the same node, not this.
        assert!(c.has_ti(1));
        // Every pi on the constant keeps its axiom origin or a distinct
        // node origin — no (2, Up)-style self-feedback on the constant's
        // own node (the constant is node 2, never a basic node).
        assert!(c.has_ti(2));
        assert!(c.has_ti(3)); // the + node: computable and observed
    }

    #[test]
    fn let_propagation_via_equalities() {
        // g(y) = y * 2 inside f: alterability of the outer argument flows
        // through the let binding into the body.
        let (p, c) = closure_for(
            r#"
            fn g(y: int): int { y * 2 }
            fn f(x: int): int { g(x) }
            user u { f }
            "#,
            "u",
        );
        // 1x, 2y, 3:2, 4*(2y,3), 5let(g)…
        assert!(c.has_ta(1), "outer arg");
        assert!(c.has_ta(2), "let-bound occurrence via =");
        assert!(c.has_ta(4), "through *");
        assert!(c.has_ta(5), "let node via body equality");
        assert_eq!(
            p.render(p.outers[0].root),
            "5let(g) y=1x in 4*(2y, 3:2) end"
        );
    }

    #[test]
    fn printable_oids_extend_inferability_to_objects() {
        // §3.2's "former case": with printable identifiers the user can
        // read the object arguments they pass, so object-typed argument
        // variables get ti axioms too. Default (opaque) regime: they don't.
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let opaque = Closure::compute(&prog).unwrap();
        assert!(!opaque.has_ti(1), "opaque OIDs are not inferable");
        let cfg = RuleConfig {
            printable_oids: true,
            ..RuleConfig::default()
        };
        let printable = Closure::compute_with(&prog, &cfg, DEFAULT_TERM_LIMIT).unwrap();
        assert!(printable.has_ti(1), "printable OIDs are directly known");
        // The regime only adds terms (monotone).
        assert!(printable.len() >= opaque.len());
    }

    #[test]
    fn constructor_read_links_argument() {
        // mk(v) = r_x(new C(v)): reading the attribute of a fresh object
        // returns the constructor argument, so ta flows.
        let (_p, c) = closure_for(
            r#"
            class C { x: int }
            fn mk(v: int): int { r_x(new C(v)) }
            user u { mk }
            "#,
            "u",
        );
        // 1v, 2new C(1v), 3r_x(2new…): ta[1] ⇒ =[1,3] ⇒ ta[3].
        assert!(c.contains(&Term::Eq(1, 3)));
        assert!(c.has_ta(3));
    }
}
