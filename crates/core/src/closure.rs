//! The closure engine: semi-naive saturation of `F(F)` with proof recording.
//!
//! Terms are interned as packed [`TermId`] keys kept in an insertion-order
//! log; dense per-expression capability tables (indexed by `ExprId` and
//! sized from the [`NProgram`]) replace hash-map indexes on the hot path. A
//! worklist drives propagation, so every rule fires once per new premise.
//!
//! Under [`SaturationMode::Chunked`] (the default) the worklist is
//! evaluated as a semi-naive delta fixpoint over SIMD-width kernels:
//! chunk-padded bit-grid mirrors of the capability tables — the dense
//! ones carved from one bump arena ([`crate::arena`]), the sparse pi*
//! pair grids allocated lazily on first touch — answer the dedup probe
//! with a mask test (no hashing at all: the mirrors are exact, so the
//! interned set degenerates to an append-only log), bulk row checks run
//! as branch-free 4×u64 lane loops ([`crate::kernels`]) that either skip
//! a whole scan or materialize its not-yet-mirrored difference row as a
//! per-entry prefilter, and per-node dirty kind-masks skip local-rule
//! evaluations whose premise tables have not changed since the node's
//! rules last ran.
//! [`SaturationMode::SemiNaive`] retains the word-at-a-time scalar delta
//! engine as the dueling baseline for the kernels, and
//! [`SaturationMode::Naive`] keeps the PR-2 behaviour (full re-evaluation,
//! hash-only dedup). All three modes produce byte-identical closures —
//! same insertion order, rounds, witnesses and proofs (see DESIGN.md §12
//! and §16 for the exactness argument).
//!
//! Proof recording is a mode: under [`ProofMode::Full`] every derived term
//! records the rule label and the exact premise terms that produced it,
//! which is what lets [`crate::report`] print Figure-1 style derivations.
//! Under [`ProofMode::Off`] the engine keeps only membership — the
//! `analyze` fast path, where a derivation map would roughly double the
//! allocation volume for data nobody reads.
//!
//! Termination: the term universe is finite — origins range over
//! `{0..N} × {+,−}` for `N` numbered occurrences, so there are at most
//! `O(N²)` capability terms, `O(N²)` equalities and `O(N³)` pi* terms. A
//! configurable budget aborts pathological closures long before memory
//! pressure.
//!
//! Determinism: every iteration the engine performs is over `Vec`s in
//! insertion order or keyed lookups — never a full hash-map scan — so two
//! runs over the same program produce the same term set *and* the same
//! witness origins. [`crate::reference`] keeps a slow-path twin of this
//! traversal for differential testing.

use crate::arena::{Bump, Csr, Span};
use crate::basics::{kind, rules_for, LCap, LTerm, LocalRule, Slot};
use crate::demand::{DemandPlan, GoalTracker};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::kernels::{self, ExceptMask};
use crate::rules::{axioms_with, labels, RuleConfig};
use crate::stats::{ClosureObserver, ClosureStats, NoopObserver};
use crate::term::{Dir, Origin, Term, TermId};
use crate::unfold::{ExprId, NKind, NProgram};
use oodb_lang::BasicOp;
use oodb_model::AttrName;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// How a term entered the closure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// Rule label (Figure-1 style).
    pub rule: &'static str,
    /// The premise terms, in rule order. Empty for axioms.
    pub premises: Vec<Term>,
}

/// Whether the engine records a [`Derivation`] per term.
///
/// `Full` is required by anything that prints proofs ([`crate::report`],
/// the CLI `--explain` path); `Off` answers membership queries only and
/// allocates nothing per derived term beyond the interned key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProofMode {
    /// Record rule label + premises for every term.
    #[default]
    Full,
    /// Record membership only; [`Closure::proof`] always returns `None`.
    Off,
}

/// Which evaluation strategy drives the saturation worklist.
///
/// All strategies compute the *same* closure — identical term insertion
/// order, rounds, witnesses and proofs — so the choice is purely a
/// performance knob. `Naive` and `SemiNaive` are kept as in-engine
/// baselines for the `saturation` bench experiment and the differential
/// suites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SaturationMode {
    /// Re-evaluate the full local rule set of every touched node on every
    /// pop, with a hash probe per derive call (the pre-rework engine).
    Naive,
    /// Semi-naive delta evaluation over word-at-a-time scalar kernels:
    /// per-node dirty kind-masks gate local-rule evaluation and packed
    /// bitset mirrors of the capability tables answer the dedup check
    /// before the hash probe. Retained as the scalar baseline the chunked
    /// kernels are dueled against.
    SemiNaive,
    /// Semi-naive delta evaluation over chunk-padded SIMD-width kernels
    /// ([`crate::kernels`]) with every grid carved from one bump arena
    /// ([`crate::arena`]). The mirrors are exact for every term kind, so
    /// dedup needs no hash set at all — the interner becomes an
    /// append-only log.
    #[default]
    Chunked,
}

/// How the engine orders a node's local rules when it evaluates them.
///
/// Rule order within one node evaluation decides which conclusions enter
/// the worklist first, so the two schedules produce set-identical (but not
/// byte-identical) closures; within one schedule every [`SaturationMode`]
/// stays byte-identical, because the profile that drives reordering counts
/// only *insertions* — which are mode-invariant — and re-sorts on a fixed
/// round cadence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RuleSchedule {
    /// Fire rules in the declared metarule order (the historical order the
    /// differential oracles pin).
    #[default]
    Declared,
    /// Profile-guided: fire each operator's rules in descending observed
    /// productivity (terms actually inserted per rule), re-sorted every
    /// [`PROFILE_CADENCE`] rounds. Optionally seeded from a prior run's
    /// [`ClosureStats`] rule counters (`profile` argument of
    /// [`Closure::compute_scheduled`]); productive conclusions then enter
    /// the worklist earlier, which dedups re-derivations sooner on
    /// refiring-heavy programs.
    Profiled,
}

/// Rounds between profile re-sorts under [`RuleSchedule::Profiled`]. A
/// fixed cadence keeps the schedule a function of round number and
/// insertion counts only — both mode-invariant — so profiled runs stay
/// byte-identical across [`SaturationMode`]s.
pub const PROFILE_CADENCE: usize = 256;

/// Closure failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClosureError {
    /// The term budget was exhausted.
    TermLimit {
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for ClosureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClosureError::TermLimit { limit } => {
                write!(f, "closure exceeded the budget of {limit} terms")
            }
        }
    }
}

impl std::error::Error for ClosureError {}

/// Default term budget.
pub const DEFAULT_TERM_LIMIT: usize = 2_000_000;

/// The computed closure of all derivable `F(F)` terms for one unfolded
/// program.
///
/// Capability lookups (`has_ta` … `equal_to`) are O(1) reads of dense
/// tables indexed by `ExprId`; `contains` reads the same tables. The
/// interned-term payload is a single bump slab: an insertion-ordered
/// [`TermId`] log, which is all the engine needs once the bit mirrors
/// answer membership (see DESIGN.md §16).
#[derive(Debug)]
pub struct Closure {
    log: Vec<TermId>,
    /// Positional proof store: aligned with `log` under
    /// [`ProofMode::Full`] (entry `i` proves `log[i]`), empty under
    /// [`ProofMode::Off`]. Appending is a plain push — no hashing on the
    /// insertion path, which warm restarts re-absorbing whole closures
    /// care about. By-term lookup goes through a lazily built index.
    proofs: Vec<Derivation>,
    /// Term → `log` position, built on first [`Closure::proof`] call (the
    /// cold provenance/report paths); never built by saturation itself.
    proof_index: std::sync::OnceLock<FxHashMap<TermId, u32>>,
    mode: ProofMode,
    ta: Vec<bool>,
    pa: Vec<bool>,
    ti: Vec<Vec<Origin>>,
    pi: Vec<Vec<Origin>>,
    pistar: Vec<Vec<(ExprId, Origin)>>,
    eq: Vec<Vec<ExprId>>,
    rounds: usize,
    early_exit: bool,
}

impl Closure {
    /// Compute the closure with default configuration and budget.
    pub fn compute(prog: &NProgram) -> Result<Closure, ClosureError> {
        Self::compute_with(prog, &RuleConfig::default(), DEFAULT_TERM_LIMIT)
    }

    /// Compute with explicit rule configuration and term budget.
    ///
    /// Proofs are recorded ([`ProofMode::Full`]) — use
    /// [`Closure::compute_with_mode`] to skip them on membership-only
    /// paths.
    pub fn compute_with(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
    ) -> Result<Closure, ClosureError> {
        Self::compute_with_mode(prog, config, limit, ProofMode::Full)
    }

    /// Compute with explicit configuration, budget and proof mode.
    pub fn compute_with_mode(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        mode: ProofMode,
    ) -> Result<Closure, ClosureError> {
        Self::compute_with_saturation(prog, config, limit, mode, SaturationMode::default())
    }

    /// [`Closure::compute_with_mode`] with an explicit [`SaturationMode`].
    /// Both modes produce byte-identical closures; `Naive` exists as the
    /// baseline for the `saturation` bench and the differential suites.
    pub fn compute_with_saturation(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        mode: ProofMode,
        sat: SaturationMode,
    ) -> Result<Closure, ClosureError> {
        Engine::new(
            prog,
            *config,
            limit,
            mode,
            sat,
            RuleSchedule::Declared,
            None,
            NoopObserver,
        )
        .run()
        .0
    }

    /// Like [`Closure::compute_with`], but also return [`ClosureStats`]
    /// describing the run: term counts per capability kind, rule firings,
    /// rounds, worklist high-water mark and dedup rate. Stats come back
    /// even when the run aborts on the term budget, so a post-mortem can
    /// see how far the saturation got.
    ///
    /// The plain `compute` paths use a monomorphised no-op observer, so
    /// this instrumentation costs nothing when unused.
    pub fn compute_with_stats(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
    ) -> (Result<Closure, ClosureError>, ClosureStats) {
        Self::compute_with_stats_mode(prog, config, limit, ProofMode::Full)
    }

    /// [`Closure::compute_with_stats`] with an explicit proof mode.
    pub fn compute_with_stats_mode(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        mode: ProofMode,
    ) -> (Result<Closure, ClosureError>, ClosureStats) {
        Self::compute_with_stats_saturation(prog, config, limit, mode, SaturationMode::default())
    }

    /// [`Closure::compute_with_stats_mode`] with an explicit
    /// [`SaturationMode`]. The closure is identical in every mode; the
    /// stats differ (fewer derive attempts and rule evaluations in
    /// `SemiNaive` than `Naive`, and fewer still in `Chunked`, whose
    /// diff-row prefilters skip attempts the mirrors prove would dedup —
    /// firings and insertions stay identical throughout).
    pub fn compute_with_stats_saturation(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        mode: ProofMode,
        sat: SaturationMode,
    ) -> (Result<Closure, ClosureError>, ClosureStats) {
        let (result, mut stats) = Engine::new(
            prog,
            *config,
            limit,
            mode,
            sat,
            RuleSchedule::Declared,
            None,
            ClosureStats::new(limit),
        )
        .run();
        stats.aborted = result.is_err();
        (result, stats)
    }

    /// Demand-driven closure: derive only terms whose mentions lie inside
    /// the plan's relevance slice and stop as soon as the plan's goals are
    /// all decided (see [`crate::demand`]).
    ///
    /// On the sliced expressions the result is term- and witness-identical
    /// to full saturation (or a prefix of it when the run early-exits with
    /// every goal derived — which fixes the verdict either way). Proofs are
    /// never recorded: demand mode exists for the membership-only verdict
    /// path, explanations stay on full saturation.
    pub fn compute_demand(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        plan: &DemandPlan,
    ) -> Result<Closure, ClosureError> {
        Self::compute_demand_saturation(prog, config, limit, plan, SaturationMode::default())
    }

    /// [`Closure::compute_demand`] with an explicit [`SaturationMode`].
    pub fn compute_demand_saturation(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        plan: &DemandPlan,
        sat: SaturationMode,
    ) -> Result<Closure, ClosureError> {
        let mut engine = Engine::new(
            prog,
            *config,
            limit,
            ProofMode::Off,
            sat,
            RuleSchedule::Declared,
            None,
            NoopObserver,
        );
        engine.demand = Some(DemandState::new(plan));
        engine.run().0
    }

    /// [`Closure::compute_demand`] with [`ClosureStats`] collection.
    pub fn compute_demand_with_stats(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        plan: &DemandPlan,
    ) -> (Result<Closure, ClosureError>, ClosureStats) {
        Self::compute_demand_with_stats_saturation(
            prog,
            config,
            limit,
            plan,
            SaturationMode::default(),
        )
    }

    /// [`Closure::compute_demand_with_stats`] with an explicit
    /// [`SaturationMode`].
    pub fn compute_demand_with_stats_saturation(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        plan: &DemandPlan,
        sat: SaturationMode,
    ) -> (Result<Closure, ClosureError>, ClosureStats) {
        let mut engine = Engine::new(
            prog,
            *config,
            limit,
            ProofMode::Off,
            sat,
            RuleSchedule::Declared,
            None,
            ClosureStats::new(limit),
        );
        engine.demand = Some(DemandState::new(plan));
        let (result, mut stats) = engine.run();
        stats.aborted = result.is_err();
        (result, stats)
    }

    /// [`Closure::compute_with_saturation`] with an explicit
    /// [`RuleSchedule`] and an optional seed profile for
    /// [`RuleSchedule::Profiled`] (a prior run's [`ClosureStats`], whose
    /// per-rule insertion counters order the first schedule; `None` starts
    /// from the declared order and lets the in-run counters take over).
    pub fn compute_scheduled(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        mode: ProofMode,
        sat: SaturationMode,
        schedule: RuleSchedule,
        profile: Option<&ClosureStats>,
    ) -> Result<Closure, ClosureError> {
        Engine::new(
            prog,
            *config,
            limit,
            mode,
            sat,
            schedule,
            profile,
            NoopObserver,
        )
        .run()
        .0
    }

    /// [`Closure::compute_scheduled`] with [`ClosureStats`] collection.
    pub fn compute_scheduled_with_stats(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        mode: ProofMode,
        sat: SaturationMode,
        schedule: RuleSchedule,
        profile: Option<&ClosureStats>,
    ) -> (Result<Closure, ClosureError>, ClosureStats) {
        let (result, mut stats) = Engine::new(
            prog,
            *config,
            limit,
            mode,
            sat,
            schedule,
            profile,
            ClosureStats::new(limit),
        )
        .run();
        stats.aborted = result.is_err();
        (result, stats)
    }

    /// Warm-restart saturation for incremental maintenance
    /// (see [`crate::incremental`]): rebuild the fixpoint of `prog` from a
    /// set of already-proved `survivors` instead of from the axioms alone.
    ///
    /// Every survivor (with its translated [`Derivation`]) is *absorbed* —
    /// inserted into the log, proof store, tables and delta mirrors without
    /// being scheduled for propagation. The axioms are then re-seeded
    /// (survivor axioms dedup to no-ops; axioms new to `prog` enqueue), the
    /// caller's `frontier` terms are pushed onto the worklist, and the
    /// engine drains to fixpoint. Soundness needs only that the survivors
    /// are genuinely derivable in `prog`; completeness needs the frontier
    /// to contain every survivor that could feed a rule instance whose
    /// conclusion is missing — the retraction layer's frontier computation
    /// establishes exactly that.
    ///
    /// Proofs are always recorded ([`ProofMode::Full`]): the incremental
    /// layer's deletion cascade walks them on the next edit, and
    /// [`certify`](crate::checker) re-validates them. Works in every
    /// [`SaturationMode`] — absorb maintains the same mirrors and dirty
    /// masks `derive` would.
    pub fn saturate_from(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
        sat: SaturationMode,
        survivors: impl IntoIterator<Item = (Term, Derivation)>,
        frontier: &[Term],
    ) -> Result<Closure, ClosureError> {
        let mut engine = Engine::new(
            prog,
            *config,
            limit,
            ProofMode::Full,
            sat,
            RuleSchedule::Declared,
            None,
            NoopObserver,
        );
        for (t, d) in survivors {
            engine.absorb(t, d)?;
        }
        engine.seed()?;
        for &t in frontier {
            engine.queue.push_back(t);
        }
        engine.drain()?;
        let mut out = engine.out;
        out.early_exit = false;
        Ok(out)
    }

    /// Number of terms in the closure.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Is the closure empty (only possible for empty programs)?
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Number of worklist steps taken (for the scaling experiments).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The proof mode the closure was computed under.
    pub fn proof_mode(&self) -> ProofMode {
        self.mode
    }

    /// Did a demand-driven run stop before draining its worklist because
    /// every goal was already derived? Always `false` for full saturation.
    pub fn early_exited(&self) -> bool {
        self.early_exit
    }

    /// Allocated capacity of the interned term log (for occupancy stats).
    pub fn interner_capacity(&self) -> usize {
        self.log.capacity()
    }

    /// Does the closure contain this exact term?
    ///
    /// Pair terms (`pi*`, `=`) are stored normalised (`a < b`, the only
    /// shape [`Term::pi_star`]/[`Term::eq`] construct), so an
    /// un-normalised probe answers `false` — exactly as the interned-set
    /// probe it replaces did.
    pub fn contains(&self, t: &Term) -> bool {
        match *t {
            Term::Ta(e) => self.has_ta(e),
            Term::Pa(e) => self.has_pa(e),
            Term::Ti(e, o) => self.ti.get(e as usize).is_some_and(|os| os.contains(&o)),
            Term::Pi(e, o) => self.pi.get(e as usize).is_some_and(|os| os.contains(&o)),
            Term::PiStar(a, b, o) => {
                a < b
                    && self
                        .pistar
                        .get(a as usize)
                        .is_some_and(|ps| ps.contains(&(b, o)))
            }
            Term::Eq(a, b) => a < b && self.eq.get(a as usize).is_some_and(|es| es.contains(&b)),
        }
    }

    /// Total alterability may be achievable on the occurrence.
    pub fn has_ta(&self, e: ExprId) -> bool {
        self.ta.get(e as usize).copied().unwrap_or(false)
    }

    /// Partial alterability may be achievable.
    pub fn has_pa(&self, e: ExprId) -> bool {
        self.pa.get(e as usize).copied().unwrap_or(false)
    }

    /// Total inferability may be achievable (any origin).
    pub fn has_ti(&self, e: ExprId) -> bool {
        self.ti.get(e as usize).is_some_and(|os| !os.is_empty())
    }

    /// Partial inferability may be achievable (any origin).
    pub fn has_pi(&self, e: ExprId) -> bool {
        self.pi.get(e as usize).is_some_and(|os| !os.is_empty())
    }

    /// The occurrences the user may know to be equal to `e`.
    pub fn equal_to(&self, e: ExprId) -> &[ExprId] {
        self.eq.get(e as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The derivation of a term, if it is in the closure and proofs were
    /// recorded ([`ProofMode::Full`]).
    pub fn proof(&self, t: &Term) -> Option<&Derivation> {
        let i = *self.index().get(&TermId::new(*t))?;
        self.proofs.get(i as usize)
    }

    /// Iterate `(term, derivation)` pairs in insertion order without any
    /// per-term hashing. Empty under [`ProofMode::Off`].
    pub fn iter_proofs(&self) -> impl Iterator<Item = (Term, &Derivation)> {
        self.log.iter().map(|id| id.term()).zip(self.proofs.iter())
    }

    fn index(&self) -> &FxHashMap<TermId, u32> {
        self.proof_index.get_or_init(|| {
            self.log
                .iter()
                .enumerate()
                .map(|(i, id)| (*id, i as u32))
                .collect()
        })
    }

    /// Any `ti` term (with its origin) on the occurrence — the witness used
    /// in reports. Deterministic: the first origin derived.
    pub fn ti_witness(&self, e: ExprId) -> Option<Term> {
        self.ti
            .get(e as usize)
            .and_then(|os| os.first())
            .map(|o| Term::Ti(e, *o))
    }

    /// Any `pi` witness.
    pub fn pi_witness(&self, e: ExprId) -> Option<Term> {
        self.pi
            .get(e as usize)
            .and_then(|os| os.first())
            .map(|o| Term::Pi(e, *o))
    }

    /// Every `ti` origin recorded on the occurrence, in derivation order.
    /// The incremental layer needs the whole row — its canonical witness is
    /// the *minimum* origin, which is insertion-order independent, unlike
    /// [`Closure::ti_witness`]'s first-derived pick.
    pub fn ti_origins(&self, e: ExprId) -> &[Origin] {
        self.ti.get(e as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every `pi` origin recorded on the occurrence, in derivation order.
    pub fn pi_origins(&self, e: ExprId) -> &[Origin] {
        self.pi.get(e as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over all terms in insertion order (decoded from the
    /// interned keys).
    pub fn iter(&self) -> impl Iterator<Item = Term> + '_ {
        self.log.iter().map(|id| id.term())
    }

    /// Test support: overwrite the recorded derivation of a term already in
    /// the closure, returning whether a proof was replaced. Exists so the
    /// soundness suite can corrupt proofs and assert that
    /// [`Closure::certify`](crate::checker) rejects them; the engine never
    /// calls this.
    #[doc(hidden)]
    pub fn replace_proof(&mut self, t: &Term, rule: &'static str, premises: Vec<Term>) -> bool {
        if !self.contains(t) {
            return false;
        }
        let Some(&i) = self.index().get(&TermId::new(*t)) else {
            return false;
        };
        self.proofs[i as usize] = Derivation { rule, premises };
        true
    }
}

/// Interned attribute name: the engine compares attributes by `u32` id in
/// the write-read and congruence loops instead of cloning `String`s.
type AttrId = u32;

/// Demand-mode state carried by the engine: the relevance slice to filter
/// derivations against, the live goal tracker, and the latched stop flag.
struct DemandState<'d> {
    plan: &'d DemandPlan,
    tracker: GoalTracker,
    done: bool,
}

impl<'d> DemandState<'d> {
    fn new(plan: &'d DemandPlan) -> DemandState<'d> {
        let tracker = plan.tracker();
        // Zero tracked goals (every occurrence statically decided or none
        // tracked at all): the verdict needs nothing from saturation.
        let done = tracker.all_decided();
        DemandState {
            plan,
            tracker,
            done,
        }
    }
}

/// A dense two-dimensional bit table: `rows` rows of `bits_per_row` bits,
/// packed into `u64` words with no padding — the *scalar* grid layout,
/// retained verbatim for [`SaturationMode::SemiNaive`]. The engine keeps
/// one grid per term kind as an *exact mirror* of the corresponding
/// capability table — a set bit means the term is in the closure — so the
/// dedup probe in `derive` becomes a mask test instead of a packed-u128
/// hash-set probe.
#[derive(Clone)]
struct BitGrid {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitGrid {
    fn new(rows: usize, bits_per_row: usize) -> BitGrid {
        let words_per_row = bits_per_row.div_ceil(64);
        BitGrid {
            words_per_row,
            bits: vec![0u64; rows * words_per_row],
        }
    }

    /// A grid whose rows are padded to whole chunks, for the chunked
    /// kernels. Still its own (lazily zero-mapped) allocation: the lazy
    /// per-origin `pi*` pair grids are *sparse* — most rows are never
    /// touched — so carving them from the shared bump pool would
    /// materialise pages the scalar layout never commits (see DESIGN.md
    /// §16 on which tables live where and why).
    fn new_padded(rows: usize, bits_per_row: usize) -> BitGrid {
        let words_per_row = kernels::padded_words(bits_per_row);
        BitGrid {
            words_per_row,
            bits: vec![0u64; rows * words_per_row],
        }
    }

    #[inline]
    fn get(&self, row: usize, bit: usize) -> bool {
        let w = row * self.words_per_row + bit / 64;
        (self.bits[w] >> (bit % 64)) & 1 != 0
    }

    #[inline]
    fn set(&mut self, row: usize, bit: usize) {
        let w = row * self.words_per_row + bit / 64;
        self.bits[w] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words_per_row..(r + 1) * self.words_per_row]
    }
}

/// Is row `ra` of `a` a subset of row `rb` of `b`, ignoring the `except`
/// bits? (`a[ra] \ (b[rb] ∪ except) = ∅`.) This is the bulk form of the
/// dedup pre-check: when every conclusion a join loop could produce is
/// already mirrored in `b[rb]`, the whole scan would dedup and can be
/// skipped in O(row words) instead of O(entries) derive calls. Scalar
/// word-at-a-time evaluation ([`kernels::reference`]).
#[inline]
fn row_diff_is_empty(a: &BitGrid, ra: usize, b: &BitGrid, rb: usize, except: &[usize]) -> bool {
    debug_assert_eq!(a.words_per_row, b.words_per_row);
    kernels::reference::row_diff_is_empty(a.row(ra), b.row(rb), except)
}

/// A chunk-padded bit grid carved out of a shared [`Bump<u64>`] pool: the
/// *chunked* layout [`SaturationMode::Chunked`] runs on. Rows are padded
/// to whole [`kernels::CHUNK_WORDS`]-word chunks, so every bulk row check
/// is a fixed-lane loop with no tail; padding bits can never be set
/// (every write targets a real bit index), so padded lanes read as zero
/// on both sides of a diff and never flip a verdict.
#[derive(Clone, Copy)]
struct Grid {
    span: Span,
    words_per_row: usize,
}

impl Grid {
    fn new(pool: &mut Bump<u64>, rows: usize, bits_per_row: usize) -> Grid {
        let words_per_row = kernels::padded_words(bits_per_row);
        Grid {
            span: pool.alloc(rows * words_per_row),
            words_per_row,
        }
    }

    #[inline]
    fn get(&self, pool: &Bump<u64>, row: usize, bit: usize) -> bool {
        let w = row * self.words_per_row + bit / 64;
        (pool.get(self.span)[w] >> (bit % 64)) & 1 != 0
    }

    #[inline]
    fn set(&self, pool: &mut Bump<u64>, row: usize, bit: usize) {
        let w = row * self.words_per_row + bit / 64;
        pool.get_mut(self.span)[w] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn row<'a>(&self, pool: &'a Bump<u64>, r: usize) -> &'a [u64] {
        &pool.get(self.span)[r * self.words_per_row..(r + 1) * self.words_per_row]
    }
}

/// Bit index of an origin inside a grid row: origins range over
/// `{0..N} × {+,−}`, so `num * 2 + dir` enumerates them densely.
#[inline]
fn origin_bit(o: Origin) -> usize {
    (o.num as usize) * 2 + (o.dir == Dir::Up) as usize
}

/// The scalar mirror store: one independently-allocated [`BitGrid`] per
/// table, exactly the PR-4 layout.
struct ScalarDelta {
    ti: BitGrid,
    pi: BitGrid,
    eq: BitGrid,
    star_by: Vec<Option<BitGrid>>,
    star_any: BitGrid,
    rows: usize,
}

impl ScalarDelta {
    fn new(n: usize) -> ScalarDelta {
        ScalarDelta {
            ti: BitGrid::new(n, 2 * n),
            pi: BitGrid::new(n, 2 * n),
            eq: BitGrid::new(n, n),
            star_by: vec![None; 2 * n],
            star_any: BitGrid::new(n, n),
            rows: n,
        }
    }

    #[inline]
    fn star(&self, ob: usize) -> Option<&BitGrid> {
        self.star_by[ob].as_ref()
    }

    #[inline]
    fn star_mut(&mut self, ob: usize) -> &mut BitGrid {
        let rows = self.rows;
        self.star_by[ob].get_or_insert_with(|| BitGrid::new(rows, rows))
    }
}

/// The chunked mirror store. The four always-present dense tables
/// (`ti`/`pi`/`eq`/`star_any`) — the rows every derive call and every bulk
/// pre-check reads — are [`Span`]s into **one** bump pool, back to back in
/// memory. The lazily-created per-origin `pi*` pair grids deliberately stay
/// *out* of the pool: they are sparse (a grid exists per origin, but most
/// of its rows are never written), and a fresh zeroed `Vec` leaves those
/// rows on copy-on-write zero pages, where growing a shared pool would
/// memset and memcpy every page of every grid. Their rows are still
/// chunk-padded, so the same branch-free kernels run on both kinds.
struct ChunkedDelta {
    pool: Bump<u64>,
    ti: Grid,
    pi: Grid,
    eq: Grid,
    star_by: Vec<Option<BitGrid>>,
    star_any: Grid,
    /// Single-row `ta`/`pa` membership mirrors (bit `e` set ⇔ `ta[e]` /
    /// `pa[e]` is in the closure). The authoritative tables stay in the
    /// closure's dense vectors; these rows exist so the alterability
    /// equality-transfer scan can prefilter with the same row kernels as
    /// the pair grids.
    ta: Grid,
    pa: Grid,
    rows: usize,
}

impl ChunkedDelta {
    fn new(n: usize) -> ChunkedDelta {
        // The always-present grids, back to back; the capacity is exact,
        // so the pool never regrows.
        let mut pool = Bump::with_capacity(
            2 * n * kernels::padded_words(2 * n)
                + 2 * n * kernels::padded_words(n)
                + 2 * kernels::padded_words(n),
        );
        let ti = Grid::new(&mut pool, n, 2 * n);
        let pi = Grid::new(&mut pool, n, 2 * n);
        let eq = Grid::new(&mut pool, n, n);
        let star_any = Grid::new(&mut pool, n, n);
        let ta = Grid::new(&mut pool, 1, n);
        let pa = Grid::new(&mut pool, 1, n);
        ChunkedDelta {
            pool,
            ti,
            pi,
            eq,
            star_by: vec![None; 2 * n],
            star_any,
            ta,
            pa,
            rows: n,
        }
    }

    #[inline]
    fn star(&self, ob: usize) -> Option<&BitGrid> {
        self.star_by[ob].as_ref()
    }

    #[inline]
    fn star_mut(&mut self, ob: usize) -> &mut BitGrid {
        let rows = self.rows;
        self.star_by[ob].get_or_insert_with(|| BitGrid::new_padded(rows, rows))
    }
}

/// The per-mode mirror storage behind [`DeltaState`]: scalar grids for
/// [`SaturationMode::SemiNaive`], arena-backed chunked grids for
/// [`SaturationMode::Chunked`]. Every bulk pre-check below exists in both
/// flavours with identical semantics; the differential suites pin them to
/// each other.
enum DeltaStore {
    Scalar(ScalarDelta),
    Chunked(ChunkedDelta),
}

impl DeltaStore {
    #[inline]
    fn ti_get(&self, e: usize, ob: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => d.ti.get(e, ob),
            DeltaStore::Chunked(d) => d.ti.get(&d.pool, e, ob),
        }
    }

    #[inline]
    fn pi_get(&self, e: usize, ob: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => d.pi.get(e, ob),
            DeltaStore::Chunked(d) => d.pi.get(&d.pool, e, ob),
        }
    }

    #[inline]
    fn eq_get(&self, a: usize, b: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => d.eq.get(a, b),
            DeltaStore::Chunked(d) => d.eq.get(&d.pool, a, b),
        }
    }

    #[inline]
    fn star_get(&self, ob: usize, a: usize, b: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => d.star(ob).is_some_and(|g| g.get(a, b)),
            DeltaStore::Chunked(d) => d.star(ob).is_some_and(|g| g.get(a, b)),
        }
    }

    #[inline]
    fn ti_set(&mut self, e: usize, ob: usize) {
        match self {
            DeltaStore::Scalar(d) => d.ti.set(e, ob),
            DeltaStore::Chunked(d) => d.ti.set(&mut d.pool, e, ob),
        }
    }

    #[inline]
    fn pi_set(&mut self, e: usize, ob: usize) {
        match self {
            DeltaStore::Scalar(d) => d.pi.set(e, ob),
            DeltaStore::Chunked(d) => d.pi.set(&mut d.pool, e, ob),
        }
    }

    #[inline]
    fn eq_set_sym(&mut self, a: usize, b: usize) {
        match self {
            DeltaStore::Scalar(d) => {
                d.eq.set(a, b);
                d.eq.set(b, a);
            }
            DeltaStore::Chunked(d) => {
                d.eq.set(&mut d.pool, a, b);
                d.eq.set(&mut d.pool, b, a);
            }
        }
    }

    #[inline]
    fn star_any_set_sym(&mut self, a: usize, b: usize) {
        match self {
            DeltaStore::Scalar(d) => {
                d.star_any.set(a, b);
                d.star_any.set(b, a);
            }
            DeltaStore::Chunked(d) => {
                d.star_any.set(&mut d.pool, a, b);
                d.star_any.set(&mut d.pool, b, a);
            }
        }
    }

    #[inline]
    fn star_set_sym(&mut self, ob: usize, a: usize, b: usize) {
        match self {
            DeltaStore::Scalar(d) => {
                let g = d.star_mut(ob);
                g.set(a, b);
                g.set(b, a);
            }
            DeltaStore::Chunked(d) => {
                let g = d.star_mut(ob);
                g.set(a, b);
                g.set(b, a);
            }
        }
    }

    /// `pi*` composition pre-check: is every candidate partner of `via`
    /// already paired with `end` under origin bit `ob` (ignoring the two
    /// endpoints themselves)?
    #[inline]
    fn star_join_skip(&self, ob: usize, via: usize, end: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => d
                .star(ob)
                .is_some_and(|g| row_diff_is_empty(&d.star_any, via, g, end, &[end, via])),
            DeltaStore::Chunked(d) => d.star(ob).is_some_and(|g| {
                kernels::row_diff_is_empty(
                    d.star_any.row(&d.pool, via),
                    g.row(end),
                    ExceptMask::two(end, via),
                )
            }),
        }
    }

    /// Transitivity pre-check: is every eq-partner of `x` already adjacent
    /// to `y` (ignoring `y` itself)?
    #[inline]
    fn eq_trans_skip(&self, x: usize, y: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => row_diff_is_empty(&d.eq, x, &d.eq, y, &[y]),
            DeltaStore::Chunked(d) => kernels::row_diff_is_empty(
                d.eq.row(&d.pool, x),
                d.eq.row(&d.pool, y),
                ExceptMask::one(y),
            ),
        }
    }

    /// `pi*`-transfer pre-check: does every eq-partner of `e` already
    /// carry `pi*[(p, other), o]` (ignoring `other` itself)?
    #[inline]
    fn star_eq_transfer_skip(&self, ob: usize, e: usize, other: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => d
                .star(ob)
                .is_some_and(|g| row_diff_is_empty(&d.eq, e, g, other, &[other])),
            DeltaStore::Chunked(d) => d.star(ob).is_some_and(|g| {
                kernels::row_diff_is_empty(
                    d.eq.row(&d.pool, e),
                    g.row(other),
                    ExceptMask::one(other),
                )
            }),
        }
    }

    /// Record a `ta`/`pa` insertion in the chunked single-row mirrors (the
    /// scalar store keeps none — its mode never prefilters these scans).
    #[inline]
    fn alter_mark(&mut self, e: usize, total: bool) {
        if let DeltaStore::Chunked(d) = self {
            if total {
                d.ta.set(&mut d.pool, 0, e);
            } else {
                d.pa.set(&mut d.pool, 0, e);
            }
        }
    }

    /// Chunked-only scan prefilter for the alterability equality transfer:
    /// eq-partners of `e` not yet carrying `ta`/`pa`. Same contract as
    /// [`DeltaStore::star_join_diff`] (but `SemiNaive` has no all-or-nothing
    /// fallback here — it never pre-checked this scan).
    #[inline]
    fn alter_transfer_diff(&self, total: bool, e: usize, out: &mut Vec<u64>) -> Option<bool> {
        match self {
            DeltaStore::Scalar(_) => None,
            DeltaStore::Chunked(d) => {
                let caps = if total {
                    d.ta.row(&d.pool, 0)
                } else {
                    d.pa.row(&d.pool, 0)
                };
                Some(kernels::row_diff_into(
                    d.eq.row(&d.pool, e),
                    caps,
                    ExceptMask::none(),
                    out,
                ))
            }
        }
    }

    /// Chunked-only scan prefilter for the `pi*` composition: materialize
    /// into `out` the bit row of candidates `c` adjacent to `via` whose
    /// conclusion `pi*[(end, c), ob]` is *not* yet mirrored.
    ///
    /// Returns `None` on the scalar store (the caller falls back to the
    /// all-or-nothing [`DeltaStore::star_join_skip`], keeping `SemiNaive`
    /// the unchanged baseline) and `Some(non_empty)` on the chunked store:
    /// `Some(false)` means the whole scan would dedup — skip it;
    /// `Some(true)` means walk the adjacency list in its insertion order
    /// but only call derive where the candidate's bit is set in `out`.
    /// Clear bits are already mirrored and terms are never removed, so
    /// skipping them cannot change what gets inserted or in which order.
    #[inline]
    fn star_join_diff(
        &self,
        ob: usize,
        via: usize,
        end: usize,
        out: &mut Vec<u64>,
    ) -> Option<bool> {
        match self {
            DeltaStore::Scalar(_) => None,
            DeltaStore::Chunked(d) => {
                let a = d.star_any.row(&d.pool, via);
                let except = ExceptMask::two(end, via);
                Some(match d.star(ob) {
                    Some(g) => kernels::row_diff_into(a, g.row(end), except, out),
                    None => kernels::row_copy_except_into(a, except, out),
                })
            }
        }
    }

    /// Chunked-only scan prefilter for the `pi*` equality transfer:
    /// candidates `p` eq-adjacent to `e` whose `pi*[(p, other), ob]` is not
    /// yet mirrored. Same contract as [`DeltaStore::star_join_diff`].
    #[inline]
    fn star_eq_transfer_diff(
        &self,
        ob: usize,
        e: usize,
        other: usize,
        out: &mut Vec<u64>,
    ) -> Option<bool> {
        match self {
            DeltaStore::Scalar(_) => None,
            DeltaStore::Chunked(d) => {
                let a = d.eq.row(&d.pool, e);
                let except = ExceptMask::one(other);
                Some(match d.star(ob) {
                    Some(g) => kernels::row_diff_into(a, g.row(other), except, out),
                    None => kernels::row_copy_except_into(a, except, out),
                })
            }
        }
    }

    /// Capability-transfer pre-check: does `to` already mirror every `ti`
    /// origin `from` carries?
    #[inline]
    fn ti_transfer_skip(&self, from: usize, to: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => row_diff_is_empty(&d.ti, from, &d.ti, to, &[]),
            DeltaStore::Chunked(d) => kernels::row_diff_is_empty(
                d.ti.row(&d.pool, from),
                d.ti.row(&d.pool, to),
                ExceptMask::none(),
            ),
        }
    }

    /// Capability-transfer pre-check for `pi`.
    #[inline]
    fn pi_transfer_skip(&self, from: usize, to: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => row_diff_is_empty(&d.pi, from, &d.pi, to, &[]),
            DeltaStore::Chunked(d) => kernels::row_diff_is_empty(
                d.pi.row(&d.pool, from),
                d.pi.row(&d.pool, to),
                ExceptMask::none(),
            ),
        }
    }

    /// All-axiom `pi*` transfer pre-check (caller has already established
    /// `from` carries only axiom-origin entries): is every `pi*` partner
    /// of `from` already paired with `to` in the axiom grid `ob`?
    #[inline]
    fn star_axiom_transfer_skip(&self, ob: usize, from: usize, to: usize) -> bool {
        match self {
            DeltaStore::Scalar(d) => d
                .star(ob)
                .is_some_and(|g| row_diff_is_empty(&d.star_any, from, g, to, &[to])),
            DeltaStore::Chunked(d) => d.star(ob).is_some_and(|g| {
                kernels::row_diff_is_empty(
                    d.star_any.row(&d.pool, from),
                    g.row(to),
                    ExceptMask::one(to),
                )
            }),
        }
    }
}

/// Mutable state of a delta-mode ([`SaturationMode::SemiNaive`] or
/// [`SaturationMode::Chunked`]) run.
///
/// The grids mirror the `ti`/`pi`/`eq` tables exactly, and the `pistar`
/// table is mirrored per origin: `pi*` pairs can carry several origins, so
/// one pair grid per [`origin_bit`] (allocated lazily, on the first `pi*`
/// insert carrying that origin) keeps membership a single mask test.
/// `dirty[node]` accumulates the kinds of premise-shaped terms inserted on
/// the node's slot expressions since the node's local rules last ran — a
/// rule set is only re-evaluated when its premise-kind mask intersects the
/// accumulated mask (see `fire_local_rules`; DESIGN.md §12 proves this
/// skips only evaluations that would derive nothing new).
struct DeltaState {
    /// The per-mode grid storage.
    store: DeltaStore,
    /// Does `pistar[e]` hold any entry with a non-axiom origin? Gates the
    /// non-axiom `pi*` scan in the `Eq` arm and the all-axiom transfer
    /// skip.
    star_mixed: Vec<bool>,
    /// node → kinds (see [`crate::basics::kind`]) inserted on its slot
    /// expressions since the node's local rules last ran.
    dirty: Vec<u8>,
}

impl DeltaState {
    fn new(n: usize, chunked: bool) -> DeltaState {
        DeltaState {
            store: if chunked {
                DeltaStore::Chunked(ChunkedDelta::new(n))
            } else {
                DeltaStore::Scalar(ScalarDelta::new(n))
            },
            star_mixed: vec![false; n],
            dirty: vec![0u8; n],
        }
    }
}

/// Per-operator profile state for [`RuleSchedule::Profiled`]: the current
/// evaluation order of the operator's rules (a permutation of rule
/// indices) and the insertion count per rule slot the next re-sort ranks
/// by. Insertions are mode-invariant, so the schedule — and with it the
/// closure — stays byte-identical across [`SaturationMode`]s.
struct OpSched {
    order: Vec<u32>,
    inserts: Vec<u64>,
}

/// Profile-guided rule scheduler: one [`OpSched`] per operator, re-sorted
/// every [`PROFILE_CADENCE`] rounds (stable, descending inserts, original
/// index as tie-break — fully deterministic).
struct Scheduler {
    op_index: FxHashMap<BasicOp, u32>,
    scheds: Vec<OpSched>,
}

struct Engine<'p, O: ClosureObserver> {
    prog: &'p NProgram,
    config: RuleConfig,
    limit: usize,
    mode: ProofMode,
    obs: O,
    out: Closure,
    queue: VecDeque<Term>,
    // Dense structural indexes, all indexed by `ExprId as usize`, built
    // once from the program and flattened to CSR (one offsets array + one
    // contiguous data array per index — no per-row `Vec` scatter on the
    // hot path; `crate::arena::Csr` preserves build order exactly).
    /// e → basic nodes where e fills a slot (argument or the node itself).
    basic_nodes: Csr<ExprId>,
    /// node → operator and argument ids, inline (basic ops are unary or
    /// binary; 4 slots is structural headroom).
    basic_info: Vec<Option<(BasicOp, [ExprId; 4], u8)>>,
    /// Binary nodes whose diagonal (equal arguments) is informative:
    /// node → (arg0, arg1). See `try_diagonal`.
    diag_args: Vec<Option<(ExprId, ExprId)>>,
    /// Normalised argument pair → diagonal-candidate nodes, in program
    /// order. Keyed lookup (not a scan) keeps traversal deterministic.
    diag_by_pair: FxHashMap<(ExprId, ExprId), Vec<ExprId>>,
    read_by_recv: Csr<ExprId>,
    /// read node → interned attribute.
    read_attr: Vec<Option<AttrId>>,
    writes_by_recv: Csr<(AttrId, ExprId)>,
    /// `new C(…)` node → (interned attribute, argument) pairs.
    ctor_args: Csr<(AttrId, ExprId)>,
    /// Rules per operator, each paired with its premise-kind mask
    /// ([`LocalRule::premise_kinds`]) so a dirty-mask intersection can skip
    /// rules none of whose premise tables changed.
    op_rules: FxHashMap<BasicOp, Rc<[(u8, LocalRule)]>>,
    /// Hash-set dedup (`None` under [`SaturationMode::Chunked`], whose
    /// mirrors answer membership exactly for every term kind; `Naive`
    /// dedups only here; the delta modes drop the set entirely — their bit
    /// mirrors answer membership exactly for every term kind, so a second
    /// hash probe per insertion would buy nothing).
    seen: Option<FxHashSet<TermId>>,
    /// Delta-mode state (`None` = [`SaturationMode::Naive`]).
    delta: Option<DeltaState>,
    /// Profile-guided rule ordering (`None` = [`RuleSchedule::Declared`]).
    sched: Option<Scheduler>,
    /// Demand mode: slice filter + goal tracking (`None` = full saturation).
    demand: Option<DemandState<'p>>,
    /// Reusable row buffer for the chunked scan prefilters
    /// ([`DeltaStore::star_join_diff`] / [`DeltaStore::star_eq_transfer_diff`]);
    /// taken out of the engine for the duration of a scan so the borrow
    /// checker lets derive calls run against it.
    scratch: Vec<u64>,
}

impl<'p, O: ClosureObserver> Engine<'p, O> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        prog: &'p NProgram,
        config: RuleConfig,
        limit: usize,
        mode: ProofMode,
        sat: SaturationMode,
        schedule: RuleSchedule,
        profile: Option<&ClosureStats>,
        obs: O,
    ) -> Engine<'p, O> {
        let n = prog.len() + 1; // ExprIds are 1-based
        let mut basic_nodes: Vec<Vec<ExprId>> = vec![Vec::new(); n];
        let mut basic_info: Vec<Option<(BasicOp, [ExprId; 4], u8)>> = vec![None; n];
        let mut diag_args: Vec<Option<(ExprId, ExprId)>> = vec![None; n];
        let mut diag_by_pair: FxHashMap<(ExprId, ExprId), Vec<ExprId>> = FxHashMap::default();
        let mut read_by_recv: Vec<Vec<ExprId>> = vec![Vec::new(); n];
        let mut read_attr: Vec<Option<AttrId>> = vec![None; n];
        let mut writes_by_recv: Vec<Vec<(AttrId, ExprId)>> = vec![Vec::new(); n];
        let mut ctor_args: Vec<Vec<(AttrId, ExprId)>> = vec![Vec::new(); n];
        let mut op_rules: FxHashMap<BasicOp, Rc<[(u8, LocalRule)]>> = FxHashMap::default();
        let mut attr_ids: HashMap<AttrName, AttrId> = HashMap::new();

        for e in prog.iter() {
            let mut intern = |attr: &AttrName| -> AttrId {
                let next = attr_ids.len() as AttrId;
                *attr_ids.entry(attr.clone()).or_insert(next)
            };
            match &e.kind {
                NKind::Basic(op, args) => {
                    // Unfolding rejects larger arities (`UnfoldError::ArityOverflow`),
                    // so the `as u8` below can never truncate.
                    assert!(
                        args.len() <= crate::unfold::MAX_BASIC_ARITY,
                        "unfold admitted a basic application wider than MAX_BASIC_ARITY"
                    );
                    let mut buf = [0 as ExprId; 4];
                    for (i, a) in args.iter().enumerate() {
                        buf[i] = *a;
                        basic_nodes[*a as usize].push(e.id);
                    }
                    basic_nodes[e.id as usize].push(e.id);
                    basic_info[e.id as usize] = Some((*op, buf, args.len() as u8));
                    op_rules.entry(*op).or_insert_with(|| {
                        rules_for(*op)
                            .into_iter()
                            .map(|r| (r.premise_kinds(), r))
                            .collect::<Vec<_>>()
                            .into()
                    });
                    // Diagonal candidates: ops whose restriction to equal
                    // arguments is injective (x+x = 2x, x*x = x², s++s).
                    if matches!(op, BasicOp::Add | BasicOp::Mul | BasicOp::Concat)
                        && args.len() == 2
                        && args[0] != args[1]
                    {
                        diag_args[e.id as usize] = Some((args[0], args[1]));
                        let pair = (args[0].min(args[1]), args[0].max(args[1]));
                        diag_by_pair.entry(pair).or_default().push(e.id);
                    }
                }
                NKind::Read(attr, recv) => {
                    read_by_recv[*recv as usize].push(e.id);
                    read_attr[e.id as usize] = Some(intern(attr));
                }
                NKind::Write(attr, recv, val) => {
                    writes_by_recv[*recv as usize].push((intern(attr), *val));
                }
                NKind::New(_class, args) => {
                    ctor_args[e.id as usize] =
                        args.iter().map(|(a, id)| (intern(a), *id)).collect();
                }
                _ => {}
            }
        }

        // Profiled schedule: one permutation + counter array per operator,
        // optionally pre-ordered by a prior run's per-rule insertion
        // counters ("observed productivity"); ties and unseeded starts
        // keep the declared order.
        let sched = (schedule == RuleSchedule::Profiled).then(|| {
            let mut op_index = FxHashMap::default();
            let mut scheds = Vec::with_capacity(op_rules.len());
            let mut ops: Vec<BasicOp> = op_rules.keys().copied().collect();
            ops.sort_by_key(|op| format!("{op:?}"));
            for op in ops {
                let rules = &op_rules[&op];
                let mut order: Vec<u32> = (0..rules.len() as u32).collect();
                if let Some(stats) = profile {
                    order.sort_by_key(|&i| {
                        (
                            std::cmp::Reverse(stats.firings_of(rules[i as usize].1.name)),
                            i,
                        )
                    });
                }
                op_index.insert(op, scheds.len() as u32);
                scheds.push(OpSched {
                    order,
                    inserts: vec![0u64; rules.len()],
                });
            }
            Scheduler { op_index, scheds }
        });

        Engine {
            prog,
            config,
            limit,
            mode,
            obs,
            out: Closure {
                log: Vec::new(),
                proofs: Vec::new(),
                proof_index: std::sync::OnceLock::new(),
                mode,
                ta: vec![false; n],
                pa: vec![false; n],
                ti: vec![Vec::new(); n],
                pi: vec![Vec::new(); n],
                pistar: vec![Vec::new(); n],
                eq: vec![Vec::new(); n],
                rounds: 0,
                early_exit: false,
            },
            queue: VecDeque::new(),
            basic_nodes: Csr::from_nested(basic_nodes),
            basic_info,
            diag_args,
            diag_by_pair,
            read_by_recv: Csr::from_nested(read_by_recv),
            read_attr,
            writes_by_recv: Csr::from_nested(writes_by_recv),
            ctor_args: Csr::from_nested(ctor_args),
            op_rules,
            seen: (sat == SaturationMode::Naive).then(FxHashSet::default),
            delta: (sat != SaturationMode::Naive)
                .then(|| DeltaState::new(n, sat == SaturationMode::Chunked)),
            sched,
            demand: None,
            scratch: Vec::new(),
        }
    }

    fn run(mut self) -> (Result<Closure, ClosureError>, O) {
        let result = self.saturate();
        self.obs
            .interner(self.out.log.capacity(), self.mode == ProofMode::Full);
        if let Some(d) = &self.demand {
            self.obs.demand(d.plan.slice_len(), self.out.early_exit);
        }
        (result.map(|_| self.out), self.obs)
    }

    /// Demand mode only: have all goals been derived? Closure growth is
    /// monotone, so once this latches the verdict (and every witness term,
    /// each fixed at its first insertion) can no longer change — saturating
    /// further would only add terms the verdict check never reads.
    #[inline]
    fn goals_decided(&self) -> bool {
        self.demand.as_ref().is_some_and(|d| d.done)
    }

    fn saturate(&mut self) -> Result<(), ClosureError> {
        if self.goals_decided() {
            self.out.early_exit = true;
            return Ok(());
        }
        self.seed()?;
        if self.out.early_exit {
            return Ok(());
        }
        self.drain()
    }

    /// Derive the program's premise-free facts: the Table-2 axioms plus the
    /// constructor-read direct equalities. Both are functions of program
    /// structure alone, which is what lets a warm restart
    /// ([`Closure::saturate_from`]) re-seed them against an absorbed term
    /// set — survivors dedup to no-ops, genuinely new facts enqueue.
    fn seed(&mut self) -> Result<(), ClosureError> {
        for (t, rule) in axioms_with(self.prog, self.config.printable_oids) {
            self.derive(t, rule, &[])?;
            if self.goals_decided() {
                self.out.early_exit = true;
                return Ok(());
            }
        }
        // Constructor-read on direct receivers: r_att(new C(…)) reads the
        // matching constructor argument without needing an equality step.
        if self.config.write_read {
            let mut direct: Vec<Term> = Vec::new();
            for e in self.prog.iter() {
                if let NKind::Read(_, recv) = &e.kind {
                    let attr = self.read_attr[e.id as usize].expect("read nodes have attributes");
                    if let Some(arg) = self.ctor_arg(*recv, attr) {
                        if let Some(t) = Term::eq(arg, e.id) {
                            direct.push(t);
                        }
                    }
                }
            }
            for t in direct {
                self.derive(t, labels::RULE_EQ, &[])?;
            }
        }
        Ok(())
    }

    /// Pop-and-propagate until the worklist is empty (or, in demand mode,
    /// until every goal is decided).
    fn drain(&mut self) -> Result<(), ClosureError> {
        if self.goals_decided() {
            self.out.early_exit = true;
            return Ok(());
        }
        while let Some(t) = self.queue.pop_front() {
            self.out.rounds += 1;
            self.obs.round();
            // Re-sort the profiled schedule on a fixed round cadence,
            // *before* propagating: the schedule is then a function of
            // (round, insertion counts) only, both mode-invariant.
            if self.sched.is_some() && self.out.rounds.is_multiple_of(PROFILE_CADENCE) {
                self.resort_schedule();
            }
            self.propagate(t)?;
            if self.goals_decided() {
                self.out.early_exit = true;
                return Ok(());
            }
        }
        Ok(())
    }

    /// Insert a term **without** scheduling it for propagation: the warm
    /// path of [`Closure::saturate_from`]. The term lands in the log, the
    /// proof store, the dense tables and — in the delta modes — the bit
    /// mirrors and dirty kind-masks, exactly as [`Engine::derive`] would
    /// put it there, but the worklist is left alone. Re-marking the dirty
    /// masks for every absorbed term is deliberate: local rules only
    /// re-evaluate when a later *popped* term visits the node, so the cost
    /// stays proportional to what actually propagates while the masks never
    /// under-approximate what an absorbed premise could feed.
    fn absorb(&mut self, t: Term, deriv: Derivation) -> Result<(), ClosureError> {
        debug_assert!(self.demand.is_none(), "warm restarts are full-saturation");
        if self.mirror_contains(&t) {
            return Ok(());
        }
        let id = TermId::new(t);
        if let Some(seen) = &mut self.seen {
            if !seen.insert(id) {
                return Ok(());
            }
        }
        if self.out.log.len() >= self.limit {
            if let Some(seen) = &mut self.seen {
                seen.remove(&id);
            }
            return Err(ClosureError::TermLimit { limit: self.limit });
        }
        self.out.log.push(id);
        if self.mode == ProofMode::Full {
            self.out.proofs.push(deriv);
        }
        match t {
            Term::Ta(e) => self.out.ta[e as usize] = true,
            Term::Pa(e) => self.out.pa[e as usize] = true,
            Term::Ti(e, o) => self.out.ti[e as usize].push(o),
            Term::Pi(e, o) => self.out.pi[e as usize].push(o),
            Term::PiStar(a, b, o) => {
                self.out.pistar[a as usize].push((b, o));
                self.out.pistar[b as usize].push((a, o));
            }
            Term::Eq(a, b) => {
                self.out.eq[a as usize].push(b);
                self.out.eq[b as usize].push(a);
            }
        }
        self.note_delta(&t);
        Ok(())
    }

    /// Stable re-sort of every operator's rule order by observed
    /// productivity: descending insertions, original index as tie-break.
    fn resort_schedule(&mut self) {
        let Some(s) = &mut self.sched else {
            return;
        };
        for os in &mut s.scheds {
            let inserts = &os.inserts;
            os.order
                .sort_by_key(|&i| (std::cmp::Reverse(inserts[i as usize]), i));
        }
    }

    /// The constructor argument feeding attribute `attr` when `e` is a
    /// `new C(…)` node (unfolding pairs each constructor argument with the
    /// attribute it initialises).
    fn ctor_arg(&self, e: ExprId, attr: AttrId) -> Option<ExprId> {
        self.ctor_args
            .row(e as usize)
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, id)| *id)
    }

    /// Internal membership probe: the mirrors answer exactly in the delta
    /// modes; `Naive` keeps the hash-set probe.
    #[inline]
    fn has_term(&self, t: Term) -> bool {
        if self.delta.is_some() {
            self.mirror_contains(&t)
        } else {
            self.seen
                .as_ref()
                .expect("naive mode keeps a hash set")
                .contains(&TermId::new(t))
        }
    }

    /// Delta-mode dedup pre-check: do the bit mirrors prove the term is
    /// already in the closure? Exact, never over-approximate: bits are set
    /// only when a term actually lands in the tables (after the budget
    /// check), so a hit here implies a hash probe would have deduped —
    /// which is why `Chunked` needs no hash set at all. Always `false` in
    /// `Naive` mode.
    #[inline]
    fn mirror_contains(&self, t: &Term) -> bool {
        let Some(delta) = &self.delta else {
            return false;
        };
        match *t {
            Term::Ta(e) => self.out.ta[e as usize],
            Term::Pa(e) => self.out.pa[e as usize],
            Term::Ti(e, o) => delta.store.ti_get(e as usize, origin_bit(o)),
            Term::Pi(e, o) => delta.store.pi_get(e as usize, origin_bit(o)),
            Term::Eq(a, b) => delta.store.eq_get(a as usize, b as usize),
            Term::PiStar(a, b, o) => delta.store.star_get(origin_bit(o), a as usize, b as usize),
        }
    }

    /// Record an inserted term in the bit mirrors and mark the nodes whose
    /// local rules gained a premise-shaped fact as dirty. `Eq` marks no
    /// node: local rules have no equality premises (equalities reach them
    /// indirectly, through the capability terms `transfer_all_caps`
    /// derives, which mark on their own insertion).
    #[inline]
    fn note_delta(&mut self, t: &Term) {
        let Some(delta) = &mut self.delta else {
            return;
        };
        match *t {
            Term::Ta(e) => {
                delta.store.alter_mark(e as usize, true);
                for &node in self.basic_nodes.row(e as usize) {
                    delta.dirty[node as usize] |= kind::TA;
                }
            }
            Term::Pa(e) => {
                delta.store.alter_mark(e as usize, false);
                for &node in self.basic_nodes.row(e as usize) {
                    delta.dirty[node as usize] |= kind::PA;
                }
            }
            Term::Ti(e, o) => {
                delta.store.ti_set(e as usize, origin_bit(o));
                for &node in self.basic_nodes.row(e as usize) {
                    delta.dirty[node as usize] |= kind::TI;
                }
            }
            Term::Pi(e, o) => {
                delta.store.pi_set(e as usize, origin_bit(o));
                for &node in self.basic_nodes.row(e as usize) {
                    delta.dirty[node as usize] |= kind::PI;
                }
            }
            Term::PiStar(a, b, o) => {
                delta.store.star_any_set_sym(a as usize, b as usize);
                if o != Origin::AXIOM {
                    delta.star_mixed[a as usize] = true;
                    delta.star_mixed[b as usize] = true;
                }
                delta
                    .store
                    .star_set_sym(origin_bit(o), a as usize, b as usize);
                for e in [a, b] {
                    for &node in self.basic_nodes.row(e as usize) {
                        delta.dirty[node as usize] |= kind::PISTAR;
                    }
                }
            }
            Term::Eq(a, b) => {
                // Both directions: the mirror probe only needs the
                // normalised `(a, b)` bit, but the bulk transitivity test
                // reads rows as adjacency sets.
                delta.store.eq_set_sym(a as usize, b as usize);
            }
        }
    }

    /// Attempt one conclusion; returns whether it was a *new* insertion
    /// (the profiled schedule's productivity signal).
    fn derive(
        &mut self,
        t: Term,
        rule: &'static str,
        premises: &[Term],
    ) -> Result<bool, ClosureError> {
        // Demand filter, ahead of `derive_attempt` so the stats invariant
        // `derive_calls == dedup_hits + total_terms` holds in every mode.
        // Dropping the term is sound: the slice is closed under the rule
        // premise shapes, so nothing mentioning only sliced expressions is
        // ever derivable *through* an unsliced one.
        if let Some(d) = &self.demand {
            if !d.plan.covers(&t) {
                self.obs.sliced_out();
                return Ok(false);
            }
        }
        self.obs.derive_attempt();
        self.obs.rule_fired(rule);
        // Delta modes: the bit mirrors prove membership without hashing —
        // the dominant outcome on equality-dense programs, where >99% of
        // derive calls are dedup-rejected re-derivations. The mirrors are
        // exact, so under `Chunked` (no hash set) this is the *only* dedup
        // check.
        if self.mirror_contains(&t) {
            self.obs.dedup_hit();
            return Ok(false);
        }
        let id = TermId::new(t);
        if let Some(seen) = &mut self.seen {
            if !seen.insert(id) {
                self.obs.dedup_hit();
                return Ok(false);
            }
        }
        if self.out.log.len() >= self.limit {
            // An aborted insert must leave no trace.
            if let Some(seen) = &mut self.seen {
                seen.remove(&id);
            }
            return Err(ClosureError::TermLimit { limit: self.limit });
        }
        self.out.log.push(id);
        self.obs.term_inserted(&t, rule);
        if self.mode == ProofMode::Full {
            self.out.proofs.push(Derivation {
                rule,
                premises: premises.to_vec(),
            });
        }
        match t {
            Term::Ta(e) => self.out.ta[e as usize] = true,
            Term::Pa(e) => self.out.pa[e as usize] = true,
            Term::Ti(e, o) => self.out.ti[e as usize].push(o),
            Term::Pi(e, o) => self.out.pi[e as usize].push(o),
            Term::PiStar(a, b, o) => {
                self.out.pistar[a as usize].push((b, o));
                self.out.pistar[b as usize].push((a, o));
            }
            Term::Eq(a, b) => {
                self.out.eq[a as usize].push(b);
                self.out.eq[b as usize].push(a);
            }
        }
        // After the budget check: an aborted insert must leave no trace in
        // the mirrors or the dirty masks.
        self.note_delta(&t);
        if let Some(d) = &mut self.demand {
            if d.tracker.on_insert(&t) {
                d.done = true;
            }
        }
        self.queue.push_back(t);
        self.obs.worklist_len(self.queue.len());
        Ok(true)
    }

    fn propagate(&mut self, t: Term) -> Result<(), ClosureError> {
        match t {
            Term::Ta(e) => {
                // Lattice.
                self.derive(Term::Pa(e), labels::LATTICE, &[t])?;
                // Receiver alterability: steering the receiver over the
                // extent reaches at least the attribute values already
                // present — partial alterability (total comes only through
                // write-read equality).
                for k in 0..self.read_by_recv.row(e as usize).len() {
                    let n = self.read_by_recv.row(e as usize)[k];
                    self.derive(Term::Pa(n), labels::READ_RECEIVER, &[t])?;
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
            }
            Term::Pa(e) => {
                for k in 0..self.read_by_recv.row(e as usize).len() {
                    let n = self.read_by_recv.row(e as usize)[k];
                    self.derive(Term::Pa(n), labels::READ_RECEIVER, &[t])?;
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
            }
            Term::Ti(e, o) => {
                self.derive(Term::Pi(e, o), labels::LATTICE, &[t])?;
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
                self.try_diagonal(e)?;
            }
            Term::Pi(e, o) => {
                // pi-join: another pi with a different origin → ti. The
                // join fires symmetrically — the partner origin may have
                // been popped before any second origin existed, so its own
                // ti would otherwise depend on queue order. Deriving both
                // sides keeps the closure a function of the term set alone,
                // which warm restarts (incremental maintenance) rely on.
                if self.config.pi_join {
                    let other = self.out.pi[e as usize].iter().find(|o2| **o2 != o).copied();
                    if let Some(o2) = other {
                        self.derive(Term::Ti(e, o), labels::PI_JOIN, &[Term::Pi(e, o2), t])?;
                        self.derive(Term::Ti(e, o2), labels::PI_JOIN, &[t, Term::Pi(e, o2)])?;
                    }
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
                self.try_diagonal(e)?;
            }
            Term::PiStar(a, b, o) => {
                if self.config.pi_star {
                    // Joint constraint on equals (see the Eq arm).
                    if o != Origin::AXIOM && self.has_term(Term::Eq(a, b)) {
                        let eq = Term::Eq(a, b);
                        if !self.pi_mirrored_chunked(a, o) {
                            self.derive(Term::Pi(a, o), labels::PI_STAR_ON_EQUALS, &[eq, t])?;
                        }
                        if !self.pi_mirrored_chunked(b, o) {
                            self.derive(Term::Pi(b, o), labels::PI_STAR_ON_EQUALS, &[eq, t])?;
                        }
                    }
                    // Compose pi* chains. The snapshot length bounds the
                    // loop: anything appended mid-loop is requeued anyway.
                    // The entries' own origins don't matter: the conclusion
                    // carries the popped origin `o`, so `star_any[via]`
                    // lists the candidate `c`s and the `o` pair grid proves
                    // presence (it exists — the popped term is mirrored).
                    //
                    // Chunked: one `row_diff_into` materializes the
                    // not-yet-mirrored candidates; an empty diff skips the
                    // scan outright, a non-empty one prefilters each entry
                    // with a single bit test instead of a derive call (the
                    // adjacency walk order — hence insertion order and
                    // witnesses — is untouched). SemiNaive keeps the
                    // original all-or-nothing row pre-check.
                    let mut scratch = std::mem::take(&mut self.scratch);
                    for (end, via) in [(a, b), (b, a)] {
                        let mut filtered = false;
                        if let Some(d) = &self.delta {
                            match d.store.star_join_diff(
                                origin_bit(o),
                                via as usize,
                                end as usize,
                                &mut scratch,
                            ) {
                                Some(false) => continue,
                                Some(true) => filtered = true,
                                None => {
                                    if d.store.star_join_skip(
                                        origin_bit(o),
                                        via as usize,
                                        end as usize,
                                    ) {
                                        continue;
                                    }
                                }
                            }
                        }
                        let len = self.out.pistar[via as usize].len();
                        for k in 0..len {
                            let (c, o2) = self.out.pistar[via as usize][k];
                            if filtered {
                                // The adjacency list repeats a candidate
                                // once per origin it was inserted under,
                                // but the conclusion depends only on `c`:
                                // after the first visit it is mirrored
                                // either way, so clear the bit and let the
                                // duplicates fall through the prefilter
                                // (exactly the entries the scalar scan
                                // burns a dedup derive call on).
                                if !kernels::row_bit(&scratch, c as usize) {
                                    continue;
                                }
                                kernels::row_clear_bit(&mut scratch, c as usize);
                            }
                            if c != end && c != via {
                                if let Some(nt) = Term::pi_star(end, c, o) {
                                    let other =
                                        Term::pi_star(via, c, o2).expect("stored pi* is proper");
                                    self.derive(nt, labels::PI_STAR_JOIN, &[t, other])?;
                                }
                            }
                        }
                    }
                    self.scratch = scratch;
                    // Transfer across equalities.
                    self.transfer_by_eq(t, a)?;
                    self.transfer_by_eq(t, b)?;
                    self.fire_local_rules(a)?;
                    self.fire_local_rules(b)?;
                }
            }
            Term::Eq(a, b) => {
                // Transitivity. Bulk pre-check (semi-naive): every partner
                // of `x` already adjacent to `y` means the whole scan would
                // dedup — one row test replaces O(clique) derive calls,
                // which is where saturated equality cliques spend their
                // time.
                for (x, y) in [(a, b), (b, a)] {
                    if let Some(d) = &self.delta {
                        if d.store.eq_trans_skip(x as usize, y as usize) {
                            continue;
                        }
                    }
                    let len = self.out.eq[x as usize].len();
                    for k in 0..len {
                        let c = self.out.eq[x as usize][k];
                        if let Some(nt) = Term::eq(c, y) {
                            let prem = Term::eq(x, c).expect("adjacency implies distinct");
                            self.derive(nt, labels::RULE_EQ, &[t, prem])?;
                        }
                    }
                }
                // Attribute congruence: r_att(a) = r_att(b).
                for i in 0..self.read_by_recv.row(a as usize).len() {
                    let ra = self.read_by_recv.row(a as usize)[i];
                    for j in 0..self.read_by_recv.row(b as usize).len() {
                        let rb = self.read_by_recv.row(b as usize)[j];
                        if self.read_attr[ra as usize] == self.read_attr[rb as usize] {
                            if let Some(nt) = Term::eq(ra, rb) {
                                self.derive(nt, labels::RULE_EQ, &[t])?;
                            }
                        }
                    }
                }
                if self.config.write_read {
                    // Write-read: w_att(a, v) and r_att(b) ⇒ v = r_att(b).
                    for (wrecv, rrecv) in [(a, b), (b, a)] {
                        for i in 0..self.writes_by_recv.row(wrecv as usize).len() {
                            let (attr, val) = self.writes_by_recv.row(wrecv as usize)[i];
                            for j in 0..self.read_by_recv.row(rrecv as usize).len() {
                                let r = self.read_by_recv.row(rrecv as usize)[j];
                                if self.read_attr[r as usize] == Some(attr) {
                                    if let Some(nt) = Term::eq(val, r) {
                                        self.derive(nt, labels::RULE_EQ, &[t])?;
                                    }
                                }
                            }
                        }
                        // Constructor-read: new C(…,a_j,…) = wrecv side.
                        for j in 0..self.read_by_recv.row(rrecv as usize).len() {
                            let r = self.read_by_recv.row(rrecv as usize)[j];
                            if let Some(attr) = self.read_attr[r as usize] {
                                if let Some(arg) = self.ctor_arg(wrecv, attr) {
                                    if let Some(nt) = Term::eq(arg, r) {
                                        self.derive(nt, labels::RULE_EQ, &[t])?;
                                    }
                                }
                            }
                        }
                    }
                }
                // Joint constraint on equals: a (non-equality-derived)
                // pi* between two expressions the user knows to be equal
                // restricts the shared value itself — the diagonal of the
                // joint set may be a proper subset (I(E): join of rule 5
                // with the joint term).
                if self.config.pi_star
                    // The scan only looks for non-axiom entries; skip it
                    // when the mirror proves there are none.
                    && self.delta.as_ref().is_none_or(|d| d.star_mixed[a as usize])
                {
                    let len = self.out.pistar[a as usize].len();
                    for k in 0..len {
                        let (x, o) = self.out.pistar[a as usize][k];
                        if x == b && o != Origin::AXIOM {
                            let star = Term::pi_star(a, b, o).expect("stored pi* is proper");
                            if !self.pi_mirrored_chunked(a, o) {
                                self.derive(Term::Pi(a, o), labels::PI_STAR_ON_EQUALS, &[t, star])?;
                            }
                            if !self.pi_mirrored_chunked(b, o) {
                                self.derive(Term::Pi(b, o), labels::PI_STAR_ON_EQUALS, &[t, star])?;
                            }
                        }
                    }
                }
                // Diagonal: the equality may pair the two arguments of a
                // candidate node. Keyed lookup — `Term::eq` normalises, so
                // `(a, b)` is already the normalised pair.
                let n_hits = self.diag_by_pair.get(&(a, b)).map_or(0, |v| v.len());
                for k in 0..n_hits {
                    let node = self.diag_by_pair[&(a, b)][k];
                    self.try_diagonal(node)?;
                }
                // pi* from equality. On a large clique almost every pop
                // re-derives an existing axiom pair; the chunked pair grid
                // answers that in one probe (conservative: a miss just
                // means derive runs and dedups as before).
                if self.config.pi_star {
                    if let Some(nt) = Term::pi_star(a, b, Origin::AXIOM) {
                        let mirrored = self.delta.as_ref().is_some_and(|d| {
                            matches!(d.store, DeltaStore::Chunked(_))
                                && d.store.star_get(
                                    origin_bit(Origin::AXIOM),
                                    a as usize,
                                    b as usize,
                                )
                        });
                        if !mirrored {
                            self.derive(nt, labels::PI_STAR_FROM_EQ, &[t])?;
                        }
                    }
                }
                // Capability transfer in both directions.
                if self.config.eq_transfer {
                    self.transfer_all_caps(a, b, t)?;
                    self.transfer_all_caps(b, a, t)?;
                }
            }
        }
        Ok(())
    }

    /// Diagonal inversion (reconstruction of the I(E) join of Table 1's
    /// rule 5 with a basic-function dependency): when the two arguments of
    /// `e1 ⊕ e2` are known equal, the node computes an injective function of
    /// that shared value (`x+x`, `x*x` up to the pessimistic reading,
    /// `s++s`), so inferability of the result transfers to the arguments:
    ///
    /// ```text
    /// =[e1,e2], ti[⊕(e1,e2), n, d] → ti[e1, l, −], ti[e2, l, −]   (n ≠ l)
    /// =[e1,e2], pi[⊕(e1,e2), n, d] → pi[e1, l, −], pi[e2, l, −]   (n ≠ l)
    /// ```
    ///
    /// Without this rule the analysis misses flaws like
    /// `w_a0(c, r_a1(c) + r_a1(c))` + granted `r_a0` — the user reads 2·a1
    /// and halves it (found by the differential experiment E3).
    fn try_diagonal(&mut self, node: ExprId) -> Result<(), ClosureError> {
        if !self.config.basic_rules {
            return Ok(());
        }
        let Some((a, b)) = self.diag_args[node as usize] else {
            return Ok(());
        };
        let eq = Term::eq(a, b).expect("diagonal args are distinct");
        if !self.has_term(eq) {
            return Ok(());
        }
        let origin = Origin::new(node, Dir::Up);
        let no_guard = !self.config.feedback_guard;
        let guard_ok = move |o: &Origin| no_guard || o.num != node;
        let ti_src = self.out.ti[node as usize]
            .iter()
            .copied()
            .find(|o| guard_ok(o));
        if let Some(o) = ti_src {
            let prem = Term::Ti(node, o);
            for arg in [a, b] {
                self.derive(
                    Term::Ti(arg, origin),
                    "basic function: diagonal inversion",
                    &[eq, prem],
                )?;
            }
        }
        let pi_src = self.out.pi[node as usize]
            .iter()
            .copied()
            .find(|o| guard_ok(o));
        if let Some(o) = pi_src {
            let prem = Term::Pi(node, o);
            for arg in [a, b] {
                self.derive(
                    Term::Pi(arg, origin),
                    "basic function: diagonal inversion",
                    &[eq, prem],
                )?;
            }
        }
        Ok(())
    }

    /// Chunked-only dedup pre-test: is `pi[e, o]` already mirrored?
    ///
    /// Always false outside the chunked store so the scalar baseline keeps
    /// running every derive unfiltered.
    fn pi_mirrored_chunked(&self, e: ExprId, o: Origin) -> bool {
        self.delta.as_ref().is_some_and(|d| {
            matches!(d.store, DeltaStore::Chunked(_)) && d.store.pi_get(e as usize, origin_bit(o))
        })
    }

    fn transfer_all_caps(
        &mut self,
        from: ExprId,
        to: ExprId,
        eq: Term,
    ) -> Result<(), ClosureError> {
        // `out.ta`/`out.pa` are the authoritative membership tables, so a
        // set bit at `to` means the conclusion already exists and derive
        // could only dedup; chunked skips the whole ceremony for it.
        // SemiNaive deliberately stays on the unfiltered baseline.
        let chunked = self
            .delta
            .as_ref()
            .is_some_and(|d| matches!(d.store, DeltaStore::Chunked(_)));
        if self.out.ta[from as usize] && !(chunked && self.out.ta[to as usize]) {
            self.derive(Term::Ta(to), labels::ALTER_BY_EQ, &[eq, Term::Ta(from)])?;
        }
        if self.out.pa[from as usize] && !(chunked && self.out.pa[to as usize]) {
            self.derive(Term::Pa(to), labels::ALTER_BY_EQ, &[eq, Term::Pa(from)])?;
        }
        // Bulk pre-checks (semi-naive): when `to` already mirrors every
        // origin `from` carries, the whole per-origin loop would dedup.
        let skip_ti = self
            .delta
            .as_ref()
            .is_some_and(|d| d.store.ti_transfer_skip(from as usize, to as usize));
        if !skip_ti {
            let n_ti = self.out.ti[from as usize].len();
            for k in 0..n_ti {
                let o = self.out.ti[from as usize][k];
                // The row pre-check above is all-or-nothing; when it fails,
                // chunked still skips each individually-mirrored origin.
                if chunked {
                    let d = self.delta.as_ref().expect("chunked implies delta");
                    if d.store.ti_get(to as usize, origin_bit(o)) {
                        continue;
                    }
                }
                self.derive(
                    Term::Ti(to, o),
                    labels::INFER_BY_EQ,
                    &[eq, Term::Ti(from, o)],
                )?;
            }
        }
        let skip_pi = self
            .delta
            .as_ref()
            .is_some_and(|d| d.store.pi_transfer_skip(from as usize, to as usize));
        if !skip_pi {
            let n_pi = self.out.pi[from as usize].len();
            for k in 0..n_pi {
                let o = self.out.pi[from as usize][k];
                if chunked {
                    let d = self.delta.as_ref().expect("chunked implies delta");
                    if d.store.pi_get(to as usize, origin_bit(o)) {
                        continue;
                    }
                }
                self.derive(
                    Term::Pi(to, o),
                    labels::INFER_BY_EQ,
                    &[eq, Term::Pi(from, o)],
                )?;
            }
        }
        if self.config.pi_star {
            // Valid only when every entry is axiom-origin (the axiom pair
            // grid can then prove presence of each conclusion).
            let skip_star = self.delta.as_ref().is_some_and(|d| {
                !d.star_mixed[from as usize]
                    && d.store.star_axiom_transfer_skip(
                        origin_bit(Origin::AXIOM),
                        from as usize,
                        to as usize,
                    )
            });
            if !skip_star {
                // Mixed-origin rows can't use a single-row pre-check (each
                // entry's conclusion carries its own origin), but the
                // chunked mirrors can still answer per entry: a mirrored
                // conclusion would dedup inside derive anyway, so test the
                // one bit here and skip the whole derive ceremony (term
                // normalization, premise construction, stats) for it.
                // SemiNaive deliberately stays on the unfiltered baseline.
                let per_entry = self
                    .delta
                    .as_ref()
                    .is_some_and(|d| matches!(d.store, DeltaStore::Chunked(_)));
                let n_star = self.out.pistar[from as usize].len();
                for k in 0..n_star {
                    let (other, o) = self.out.pistar[from as usize][k];
                    if other != to {
                        if per_entry
                            && self
                                .delta
                                .as_ref()
                                .expect("per_entry implies delta")
                                .store
                                .star_get(origin_bit(o), to as usize, other as usize)
                        {
                            continue;
                        }
                        if let Some(nt) = Term::pi_star(to, other, o) {
                            let prem = Term::pi_star(from, other, o).expect("stored pi* is proper");
                            self.derive(nt, labels::INFER_BY_EQ, &[eq, prem])?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Transfer a single capability term across all known equalities of `e`.
    fn transfer_by_eq(&mut self, t: Term, e: ExprId) -> Result<(), ClosureError> {
        if !self.config.eq_transfer {
            return Ok(());
        }
        // Bulk pre-check for `pi*` pops (the high-volume case on equality
        // cliques, where `pi*` terms mirror the full clique): every
        // eq-partner `p` of `e` already carrying `pi*[(p,other), o]` means
        // the scan below would dedup entirely. Chunked additionally keeps
        // the materialized difference row as a per-partner prefilter when
        // the scan does run (same order-preservation argument as the `pi*`
        // join in `propagate`).
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut filtered = false;
        match t {
            Term::PiStar(x, y, o) => {
                let other = if x == e { y } else { x };
                if let Some(d) = &self.delta {
                    match d.store.star_eq_transfer_diff(
                        origin_bit(o),
                        e as usize,
                        other as usize,
                        &mut scratch,
                    ) {
                        Some(false) => {
                            self.scratch = scratch;
                            return Ok(());
                        }
                        Some(true) => filtered = true,
                        None => {
                            if d.store.star_eq_transfer_skip(
                                origin_bit(o),
                                e as usize,
                                other as usize,
                            ) {
                                self.scratch = scratch;
                                return Ok(());
                            }
                        }
                    }
                }
            }
            // Alterability rides the same equality cliques (each `ta`/`pa`
            // pop rescans the full clique, almost always to dedup); the
            // chunked single-row mirrors prefilter it the same way.
            Term::Ta(_) | Term::Pa(_) => {
                if let Some(d) = &self.delta {
                    match d.store.alter_transfer_diff(
                        matches!(t, Term::Ta(_)),
                        e as usize,
                        &mut scratch,
                    ) {
                        Some(false) => {
                            self.scratch = scratch;
                            return Ok(());
                        }
                        Some(true) => filtered = true,
                        None => {}
                    }
                }
            }
            _ => {}
        }
        // `ti`/`pi` pops derive a single-origin conclusion per clique
        // member, but the capability mirrors are per-*expression* rows
        // (origin bits as columns), so no row diff applies — test the one
        // mirror bit per entry instead, chunked only (a set bit means the
        // conclusion exists and derive could only dedup).
        let pre_test = match t {
            Term::Ti(_, o) | Term::Pi(_, o)
                if self
                    .delta
                    .as_ref()
                    .is_some_and(|d| matches!(d.store, DeltaStore::Chunked(_))) =>
            {
                Some((matches!(t, Term::Ti(..)), origin_bit(o)))
            }
            _ => None,
        };
        let len = self.out.eq[e as usize].len();
        for k in 0..len {
            let b = self.out.eq[e as usize][k];
            if filtered && !kernels::row_bit(&scratch, b as usize) {
                continue;
            }
            if let Some((is_ti, ob)) = pre_test {
                let d = self.delta.as_ref().expect("pre_test implies delta");
                let mirrored = if is_ti {
                    d.store.ti_get(b as usize, ob)
                } else {
                    d.store.pi_get(b as usize, ob)
                };
                if mirrored {
                    continue;
                }
            }
            let eq_term = Term::eq(e, b).expect("adjacency implies distinct");
            let (derived, label) = match t {
                Term::Ta(_) => (Some(Term::Ta(b)), labels::ALTER_BY_EQ),
                Term::Pa(_) => (Some(Term::Pa(b)), labels::ALTER_BY_EQ),
                Term::Ti(_, o) => (Some(Term::Ti(b, o)), labels::INFER_BY_EQ),
                Term::Pi(_, o) => (Some(Term::Pi(b, o)), labels::INFER_BY_EQ),
                Term::PiStar(x, y, o) => {
                    let other = if x == e { y } else { x };
                    if other == b {
                        (None, labels::INFER_BY_EQ)
                    } else {
                        (Term::pi_star(b, other, o), labels::INFER_BY_EQ)
                    }
                }
                Term::Eq(..) => (None, labels::RULE_EQ),
            };
            if let Some(nt) = derived {
                self.derive(nt, label, &[eq_term, t])?;
            }
        }
        self.scratch = scratch;
        Ok(())
    }

    /// Fire local (basic-function) rules at the nodes where `e` fills a
    /// slot.
    ///
    /// Semi-naive: a node's rules are only evaluated when premise-shaped
    /// terms were inserted on its slot expressions since they last ran
    /// (`dirty[node] != 0`), and then only the rules whose premise-kind
    /// mask intersects the accumulated kinds. Skipped evaluations have
    /// bit-for-bit unchanged premise tables, so they would re-derive
    /// exactly what the last evaluation derived — all dedup, no inserts —
    /// and dropping them cannot change the insertion order (DESIGN.md §12).
    /// The mask is cleared *before* evaluating so a rule whose conclusion
    /// feeds its own node re-marks itself.
    fn fire_local_rules(&mut self, e: ExprId) -> Result<(), ClosureError> {
        if !self.config.basic_rules {
            return Ok(());
        }
        for k in 0..self.basic_nodes.row(e as usize).len() {
            let node = self.basic_nodes.row(e as usize)[k];
            let want = match &mut self.delta {
                Some(delta) => {
                    let mask = delta.dirty[node as usize];
                    if mask == 0 {
                        continue;
                    }
                    delta.dirty[node as usize] = 0;
                    mask
                }
                None => kind::ALL,
            };
            self.try_node(node, want)?;
        }
        Ok(())
    }

    fn try_node(&mut self, node: ExprId, want: u8) -> Result<(), ClosureError> {
        let Some((op, buf, len)) = self.basic_info[node as usize] else {
            return Ok(());
        };
        let args = &buf[..len as usize];
        let rules = Rc::clone(self.op_rules.get(&op).expect("rules built for every op"));
        // Profiled schedule: evaluate the operator's rules in the current
        // productivity permutation, feeding each insertion back into the
        // slot counter the next re-sort ranks by.
        if let Some(s) = &self.sched {
            let si = s.op_index[&op] as usize;
            for k in 0..rules.len() {
                let idx = self.sched.as_ref().expect("checked above").scheds[si].order[k] as usize;
                let (premise_mask, rule) = &rules[idx];
                if premise_mask & want == 0 {
                    continue;
                }
                if self.try_rule(node, args, rule)? {
                    self.sched.as_mut().expect("checked above").scheds[si].inserts[idx] += 1;
                }
            }
            return Ok(());
        }
        for (premise_mask, rule) in rules.iter() {
            if premise_mask & want == 0 {
                continue;
            }
            self.try_rule(node, args, rule)?;
        }
        Ok(())
    }

    fn slot_expr(&self, node: ExprId, args: &[ExprId], slot: Slot) -> ExprId {
        match slot {
            Slot::Arg(i) => args[i],
            Slot::Ret => node,
        }
    }

    /// Evaluate one local rule at `node`; returns whether its conclusion
    /// was a new insertion (the profiled schedule's feedback signal).
    fn try_rule(
        &mut self,
        node: ExprId,
        args: &[ExprId],
        rule: &LocalRule,
    ) -> Result<bool, ClosureError> {
        // Direction of the conclusion decides the feedback guard.
        let conclusion_down = match rule.conclusion {
            LTerm::Cap(_, Slot::Ret) => true,
            LTerm::Cap(_, Slot::Arg(_)) => false,
            LTerm::PiStar(a, b) => matches!(a, Slot::Ret) || matches!(b, Slot::Ret),
        };
        let guard_ok = |o: Origin| -> bool {
            if !self.config.feedback_guard {
                return true;
            }
            if conclusion_down {
                !(o.num == node && o.dir == Dir::Up)
            } else {
                o.num != node
            }
        };

        debug_assert!(rule.premises.len() <= 4, "local rules have ≤ 4 premises");
        let mut pbuf = [Term::Ta(0); 4];
        let mut pn = 0usize;
        for p in &rule.premises {
            let found = match *p {
                LTerm::Cap(LCap::Ta, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.ta[e as usize].then_some(Term::Ta(e))
                }
                LTerm::Cap(LCap::Pa, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.pa[e as usize].then_some(Term::Pa(e))
                }
                LTerm::Cap(LCap::Ti, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.ti[e as usize]
                        .iter()
                        .copied()
                        .find(|o| guard_ok(*o))
                        .map(|o| Term::Ti(e, o))
                }
                LTerm::Cap(LCap::Pi, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.pi[e as usize]
                        .iter()
                        .copied()
                        .find(|o| guard_ok(*o))
                        .map(|o| Term::Pi(e, o))
                }
                LTerm::PiStar(s1, s2) => {
                    if !self.config.pi_star {
                        None
                    } else {
                        let a = self.slot_expr(node, args, s1);
                        let b = self.slot_expr(node, args, s2);
                        self.out.pistar[a as usize]
                            .iter()
                            .find(|(other, o)| *other == b && guard_ok(*o))
                            .map(|(_, o)| *o)
                            .and_then(|o| Term::pi_star(a, b, o))
                    }
                }
            };
            match found {
                Some(t) => {
                    pbuf[pn] = t;
                    pn += 1;
                }
                None => return Ok(false),
            }
        }

        let dir = if conclusion_down { Dir::Down } else { Dir::Up };
        let origin = Origin::new(node, dir);
        let conclusion = match rule.conclusion {
            LTerm::Cap(LCap::Ta, s) => Some(Term::Ta(self.slot_expr(node, args, s))),
            LTerm::Cap(LCap::Pa, s) => Some(Term::Pa(self.slot_expr(node, args, s))),
            LTerm::Cap(LCap::Ti, s) => Some(Term::Ti(self.slot_expr(node, args, s), origin)),
            LTerm::Cap(LCap::Pi, s) => Some(Term::Pi(self.slot_expr(node, args, s), origin)),
            LTerm::PiStar(s1, s2) => {
                if !self.config.pi_star {
                    None
                } else {
                    Term::pi_star(
                        self.slot_expr(node, args, s1),
                        self.slot_expr(node, args, s2),
                        origin,
                    )
                }
            }
        };
        if let Some(c) = conclusion {
            let premises = &pbuf[..pn];
            return self.derive(c, rule.name, premises);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    fn closure_for(src: &str, user: &str) -> (NProgram, Closure) {
        let schema = parse_schema(src).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str(user).unwrap()).unwrap();
        let c = Closure::compute(&prog).unwrap();
        (prog, c)
    }

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }
        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
    "#;

    #[test]
    fn figure_one_flaw_is_derived() {
        // §4.2 / Figure 1: ti on 5r_salary(4broker) must be in the closure.
        let (_p, c) = closure_for(STOCKBROKER, "clerk");
        assert!(c.has_ti(5), "clerk can infer the salary read (Figure 1)");
        // The key intermediate judgments of Figure 1.
        assert!(c.contains(&Term::Eq(1, 8))); // =[8o, 1broker]
        assert!(c.contains(&Term::Eq(2, 9))); // =[9v, 2r_budget(1broker)]
        assert!(c.has_ti(2)); // ti[2r_budget(1broker)]
        assert!(c.has_pa(2)); // pa[2r_budget(1broker)]
        assert!(c.has_ti(6)); // ti[6*(10, 5r_salary(4broker))]
    }

    #[test]
    fn without_write_capability_no_flaw() {
        // A clerk with only checkBudget cannot infer the salary.
        let (_p, c) = closure_for(STOCKBROKER, "safe_clerk");
        assert!(!c.has_ti(5), "no ti on the salary read without w_budget");
        assert!(!c.has_pi(5), "no pi either");
    }

    #[test]
    fn proofs_recorded_for_every_term() {
        let (_p, c) = closure_for(STOCKBROKER, "clerk");
        assert_eq!(c.proof_mode(), ProofMode::Full);
        for t in c.iter() {
            assert!(c.proof(&t).is_some(), "no proof for {t}");
        }
        // Axioms have no premises; derived terms have in-closure premises.
        for t in c.iter() {
            let d = c.proof(&t).unwrap();
            for p in &d.premises {
                assert!(c.contains(p), "dangling premise {p} of {t}");
            }
        }
    }

    #[test]
    fn proof_mode_off_keeps_membership_drops_proofs() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let full = Closure::compute(&prog).unwrap();
        let fast = Closure::compute_with_mode(
            &prog,
            &RuleConfig::default(),
            DEFAULT_TERM_LIMIT,
            ProofMode::Off,
        )
        .unwrap();
        assert_eq!(fast.proof_mode(), ProofMode::Off);
        let mut t1: Vec<Term> = full.iter().collect();
        let mut t2: Vec<Term> = fast.iter().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2, "proof mode must not change the fixpoint");
        assert_eq!(full.rounds(), fast.rounds());
        for t in fast.iter() {
            assert!(fast.proof(&t).is_none(), "Off mode records no proofs");
        }
        // Witnesses stay identical too (same traversal order).
        for e in 1..=prog.len() as ExprId {
            assert_eq!(full.ti_witness(e), fast.ti_witness(e));
            assert_eq!(full.pi_witness(e), fast.pi_witness(e));
        }
    }

    #[test]
    fn ablation_write_read_kills_figure_one() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let cfg = RuleConfig {
            write_read: false,
            ..RuleConfig::default()
        };
        let c = Closure::compute_with(&prog, &cfg, DEFAULT_TERM_LIMIT).unwrap();
        assert!(
            !c.has_ti(5),
            "without write-read equality the attack is invisible (unsound!)"
        );
    }

    #[test]
    fn ablation_eq_transfer_kills_alterability_flow() {
        // Inferability has a redundant pi*-based route, but alterability
        // only flows through the =-transfer rules: disabling them loses the
        // payroll-style ta detection (the written value stops being ta).
        let schema = parse_schema(
            r#"
            class Broker { salary: int, budget: int, profit: int }
            fn calcSalary(budget: int, profit: int): int { budget / 10 + profit / 2 }
            fn updateSalary(broker: Broker): null {
              w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
            }
            user payroll { updateSalary, w_budget }
            "#,
        )
        .unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("payroll").unwrap()).unwrap();
        let full = Closure::compute(&prog).unwrap();
        let cfg = RuleConfig {
            eq_transfer: false,
            ..RuleConfig::default()
        };
        let ablated = Closure::compute_with(&prog, &cfg, DEFAULT_TERM_LIMIT).unwrap();
        // The value argument of w_salary is the let(calcSalary) node — the
        // binding of the occurrence found by the algorithm.
        let w_salary_val = prog
            .iter()
            .find_map(|e| match &e.kind {
                crate::unfold::NKind::Write(attr, _, val) if attr.as_str() == "salary" => {
                    Some(*val)
                }
                _ => None,
            })
            .expect("w_salary occurs");
        assert!(full.has_ta(w_salary_val), "full rules detect the ta flow");
        assert!(!ablated.has_ta(w_salary_val), "no ta without =-transfer");
    }

    #[test]
    fn term_limit_aborts() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        assert!(matches!(
            Closure::compute_with(&prog, &RuleConfig::default(), 5),
            Err(ClosureError::TermLimit { limit: 5 })
        ));
    }

    #[test]
    fn stats_are_consistent_with_the_closure() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let (result, stats) =
            Closure::compute_with_stats(&prog, &RuleConfig::default(), DEFAULT_TERM_LIMIT);
        let c = result.unwrap();
        assert!(!stats.aborted);
        assert_eq!(stats.rounds as usize, c.rounds());
        assert_eq!(stats.total_terms() as usize, c.len());
        // Every derive attempt either deduplicated or inserted.
        assert_eq!(stats.derive_calls, stats.dedup_hits + stats.total_terms());
        // Per-rule attempt counters partition the derive calls, and no
        // label derives more new terms than it attempted.
        let attempted: u64 = stats.rule_attempts.iter().map(|(_, n)| *n).sum();
        assert_eq!(attempted, stats.derive_calls);
        for (label, new) in &stats.firings {
            assert!(
                stats.rule_attempts_of(label) >= *new,
                "{label}: fewer attempts than insertions"
            );
        }
        // Per-kind counters match the actual term population.
        let count = |pred: fn(&Term) -> bool| c.iter().filter(pred).count() as u64;
        assert_eq!(stats.terms_ta, count(|t| matches!(t, Term::Ta(_))));
        assert_eq!(stats.terms_pa, count(|t| matches!(t, Term::Pa(_))));
        assert_eq!(stats.terms_ti, count(|t| matches!(t, Term::Ti(..))));
        assert_eq!(stats.terms_pi, count(|t| matches!(t, Term::Pi(..))));
        assert_eq!(stats.terms_pistar, count(|t| matches!(t, Term::PiStar(..))));
        assert_eq!(stats.terms_eq, count(|t| matches!(t, Term::Eq(..))));
        // Rule firings partition the insertions, and each label has a proof.
        let fired: u64 = stats.firings.iter().map(|(_, n)| *n).sum();
        assert_eq!(fired, stats.total_terms());
        assert!(stats.firings_of(labels::INFER_BY_EQ) > 0, "Figure 1 uses =");
        assert!(stats.worklist_peak > 0);
        assert!(stats.dedup_hit_rate() > 0.0 && stats.dedup_hit_rate() < 1.0);
        assert!(stats.budget_headroom() > 0.0);
        // The interner gauge reflects the actual term set.
        assert!(stats.interner_capacity as usize >= c.len());
        assert!(stats.proofs_recorded);
    }

    #[test]
    fn stats_and_plain_compute_agree() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let plain = Closure::compute(&prog).unwrap();
        let (instrumented, _) =
            Closure::compute_with_stats(&prog, &RuleConfig::default(), DEFAULT_TERM_LIMIT);
        let instrumented = instrumented.unwrap();
        let mut t1: Vec<Term> = plain.iter().collect();
        let mut t2: Vec<Term> = instrumented.iter().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2, "observer must not change the fixpoint");
        assert_eq!(plain.rounds(), instrumented.rounds());
    }

    #[test]
    fn stats_survive_a_term_limit_abort() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let (result, stats) = Closure::compute_with_stats(&prog, &RuleConfig::default(), 5);
        assert!(matches!(result, Err(ClosureError::TermLimit { limit: 5 })));
        assert!(stats.aborted);
        assert_eq!(stats.total_terms(), 5, "budget filled exactly");
        assert_eq!(stats.budget_headroom(), 0.0);
        assert_eq!(stats.limit, 5);
    }

    #[test]
    fn naive_and_semi_naive_are_byte_identical() {
        // The saturation mode is a pure performance knob: same insertion
        // order, so same term set, rounds, witnesses — and same proofs,
        // premise for premise (each derivation is recorded at the term's
        // first insertion, which the delta scheme must not move).
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let cfg = RuleConfig::default();
        let naive = Closure::compute_with_saturation(
            &prog,
            &cfg,
            DEFAULT_TERM_LIMIT,
            ProofMode::Full,
            SaturationMode::Naive,
        )
        .unwrap();
        let semi = Closure::compute_with_saturation(
            &prog,
            &cfg,
            DEFAULT_TERM_LIMIT,
            ProofMode::Full,
            SaturationMode::SemiNaive,
        )
        .unwrap();
        assert_eq!(naive.len(), semi.len());
        assert_eq!(naive.rounds(), semi.rounds());
        let mut t1: Vec<Term> = naive.iter().collect();
        let mut t2: Vec<Term> = semi.iter().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2);
        for e in 1..=prog.len() as ExprId {
            assert_eq!(naive.ti_witness(e), semi.ti_witness(e));
            assert_eq!(naive.pi_witness(e), semi.pi_witness(e));
            assert_eq!(naive.has_ta(e), semi.has_ta(e));
            assert_eq!(naive.has_pa(e), semi.has_pa(e));
            assert_eq!(naive.equal_to(e), semi.equal_to(e));
        }
        for t in naive.iter() {
            assert_eq!(naive.proof(&t), semi.proof(&t), "proof of {t} differs");
        }
    }

    #[test]
    fn chunked_is_byte_identical_to_scalar_modes() {
        // The chunked mode swaps storage (arena grids, no hash set) and
        // skips derive calls only when the mirrors prove they would dedup
        // — never reordering what does run: insertion order, rounds,
        // witnesses and proofs all match the scalar baselines bit for bit.
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let cfg = RuleConfig::default();
        let compute = |sat| {
            Closure::compute_with_saturation(&prog, &cfg, DEFAULT_TERM_LIMIT, ProofMode::Full, sat)
                .unwrap()
        };
        let semi = compute(SaturationMode::SemiNaive);
        let chunked = compute(SaturationMode::Chunked);
        assert_eq!(chunked.len(), semi.len());
        assert_eq!(chunked.rounds(), semi.rounds());
        let t1: Vec<Term> = semi.iter().collect();
        let t2: Vec<Term> = chunked.iter().collect();
        assert_eq!(t1, t2, "insertion order must match exactly");
        for e in 1..=prog.len() as ExprId {
            assert_eq!(chunked.ti_witness(e), semi.ti_witness(e));
            assert_eq!(chunked.pi_witness(e), semi.pi_witness(e));
            assert_eq!(chunked.equal_to(e), semi.equal_to(e));
        }
        for t in semi.iter() {
            assert!(chunked.contains(&t));
            assert_eq!(chunked.proof(&t), semi.proof(&t), "proof of {t} differs");
        }
        // Un-normalised pair probes answer false, as they always did.
        assert!(!chunked.contains(&Term::Eq(8, 1)));
    }

    #[test]
    fn profiled_schedule_is_set_identical_and_mode_invariant() {
        // Reordering rules changes which conclusion enters the worklist
        // first, so Profiled is only *set*-identical to Declared — but
        // across saturation modes (whose byte-identity the differential
        // suites pin) a profiled run must stay byte-identical, because the
        // schedule is a function of mode-invariant insertion counts.
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let cfg = RuleConfig::default();
        let declared = Closure::compute(&prog).unwrap();
        // Seed the profile from a prior run's stats, like the bench does.
        let (_, stats) = Closure::compute_with_stats(&prog, &cfg, DEFAULT_TERM_LIMIT);
        for profile in [None, Some(&stats)] {
            let runs: Vec<Closure> = [
                SaturationMode::Naive,
                SaturationMode::SemiNaive,
                SaturationMode::Chunked,
            ]
            .into_iter()
            .map(|sat| {
                Closure::compute_scheduled(
                    &prog,
                    &cfg,
                    DEFAULT_TERM_LIMIT,
                    ProofMode::Full,
                    sat,
                    RuleSchedule::Profiled,
                    profile,
                )
                .unwrap()
            })
            .collect();
            let order0: Vec<Term> = runs[0].iter().collect();
            for r in &runs[1..] {
                let order: Vec<Term> = r.iter().collect();
                assert_eq!(order, order0, "profiled runs diverged across modes");
                assert_eq!(r.rounds(), runs[0].rounds());
            }
            // Same closure as Declared, as a set.
            let mut profiled: Vec<Term> = order0;
            let mut base: Vec<Term> = declared.iter().collect();
            profiled.sort();
            base.sort();
            assert_eq!(profiled, base, "profiled schedule changed the fixpoint");
        }
    }

    #[test]
    fn semi_naive_skips_attempts_not_insertions() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let cfg = RuleConfig::default();
        let (naive, naive_stats) = Closure::compute_with_stats_saturation(
            &prog,
            &cfg,
            DEFAULT_TERM_LIMIT,
            ProofMode::Off,
            SaturationMode::Naive,
        );
        let (semi, semi_stats) = Closure::compute_with_stats_saturation(
            &prog,
            &cfg,
            DEFAULT_TERM_LIMIT,
            ProofMode::Off,
            SaturationMode::SemiNaive,
        );
        assert_eq!(naive.unwrap().len(), semi.unwrap().len());
        assert_eq!(naive_stats.total_terms(), semi_stats.total_terms());
        // The delta scheme only drops would-be dedups.
        assert!(semi_stats.derive_calls < naive_stats.derive_calls);
        assert!(semi_stats.dedup_hits < naive_stats.dedup_hits);
        // Per-label: never more attempts than naive, identical insertions.
        for (label, n) in &semi_stats.rule_attempts {
            assert!(*n <= naive_stats.rule_attempts_of(label), "{label}");
        }
        for (label, n) in &naive_stats.firings {
            assert_eq!(semi_stats.firings_of(label), *n, "{label}");
        }
        // Both satisfy the per-run attempt partition.
        for s in [&naive_stats, &semi_stats] {
            assert_eq!(s.derive_calls, s.dedup_hits + s.total_terms());
            let attempted: u64 = s.rule_attempts.iter().map(|(_, n)| *n).sum();
            assert_eq!(attempted, s.derive_calls);
        }
    }

    #[test]
    fn term_limit_aborts_identically_across_modes() {
        // The abort point depends on the insertion sequence, so a matching
        // limit error is itself an order-identity check — and the mirrors
        // must not retain bits from the aborted insertion (exercised by the
        // stats run continuing to answer membership).
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let cfg = RuleConfig::default();
        for limit in [5usize, 17, 40] {
            let (naive, naive_stats) = Closure::compute_with_stats_saturation(
                &prog,
                &cfg,
                limit,
                ProofMode::Off,
                SaturationMode::Naive,
            );
            let (semi, semi_stats) = Closure::compute_with_stats_saturation(
                &prog,
                &cfg,
                limit,
                ProofMode::Off,
                SaturationMode::SemiNaive,
            );
            let (chunked, chunked_stats) = Closure::compute_with_stats_saturation(
                &prog,
                &cfg,
                limit,
                ProofMode::Off,
                SaturationMode::Chunked,
            );
            assert!(matches!(naive, Err(ClosureError::TermLimit { .. })));
            let semi_err = semi.unwrap_err();
            assert_eq!(naive.unwrap_err(), semi_err, "limit {limit}");
            assert_eq!(semi_err, chunked.unwrap_err(), "limit {limit}");
            // Same insertion sequence up to the abort, so identical term
            // counts; semi-naive may have skipped some dedup attempts.
            assert_eq!(
                naive_stats.total_terms(),
                semi_stats.total_terms(),
                "limit {limit}"
            );
            assert_eq!(
                semi_stats.total_terms(),
                chunked_stats.total_terms(),
                "limit {limit}"
            );
            assert!(semi_stats.derive_calls <= naive_stats.derive_calls);
        }
    }

    #[test]
    fn closure_is_deterministic() {
        let (_p, c1) = closure_for(STOCKBROKER, "clerk");
        let (_p, c2) = closure_for(STOCKBROKER, "clerk");
        let mut t1: Vec<Term> = c1.iter().collect();
        let mut t2: Vec<Term> = c2.iter().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2);
    }

    #[test]
    fn feedback_guard_blocks_self_derivation() {
        // f(x:int) = x + 1 granted alone: the user knows x (ti axiom) and
        // the result (body axiom). Fine. But pi on the result must not loop
        // through the + node to create fresh "different ways" on x.
        let (_p, c) = closure_for("fn f(x: int): int { x + 1 } user u { f }", "u");
        // x (id 1) is ti — both by axiom and by inversion through +; the
        // guard only blocks re-derivation through the same node, not this.
        assert!(c.has_ti(1));
        // Every pi on the constant keeps its axiom origin or a distinct
        // node origin — no (2, Up)-style self-feedback on the constant's
        // own node (the constant is node 2, never a basic node).
        assert!(c.has_ti(2));
        assert!(c.has_ti(3)); // the + node: computable and observed
    }

    #[test]
    fn let_propagation_via_equalities() {
        // g(y) = y * 2 inside f: alterability of the outer argument flows
        // through the let binding into the body.
        let (p, c) = closure_for(
            r#"
            fn g(y: int): int { y * 2 }
            fn f(x: int): int { g(x) }
            user u { f }
            "#,
            "u",
        );
        // 1x, 2y, 3:2, 4*(2y,3), 5let(g)…
        assert!(c.has_ta(1), "outer arg");
        assert!(c.has_ta(2), "let-bound occurrence via =");
        assert!(c.has_ta(4), "through *");
        assert!(c.has_ta(5), "let node via body equality");
        assert_eq!(
            p.render(p.outers[0].root),
            "5let(g) y=1x in 4*(2y, 3:2) end"
        );
    }

    #[test]
    fn printable_oids_extend_inferability_to_objects() {
        // §3.2's "former case": with printable identifiers the user can
        // read the object arguments they pass, so object-typed argument
        // variables get ti axioms too. Default (opaque) regime: they don't.
        let schema = parse_schema(STOCKBROKER).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let opaque = Closure::compute(&prog).unwrap();
        assert!(!opaque.has_ti(1), "opaque OIDs are not inferable");
        let cfg = RuleConfig {
            printable_oids: true,
            ..RuleConfig::default()
        };
        let printable = Closure::compute_with(&prog, &cfg, DEFAULT_TERM_LIMIT).unwrap();
        assert!(printable.has_ti(1), "printable OIDs are directly known");
        // The regime only adds terms (monotone).
        assert!(printable.len() >= opaque.len());
    }

    #[test]
    fn constructor_read_links_argument() {
        // mk(v) = r_x(new C(v)): reading the attribute of a fresh object
        // returns the constructor argument, so ta flows.
        let (_p, c) = closure_for(
            r#"
            class C { x: int }
            fn mk(v: int): int { r_x(new C(v)) }
            user u { mk }
            "#,
            "u",
        );
        // 1v, 2new C(1v), 3r_x(2new…): ta[1] ⇒ =[1,3] ⇒ ta[3].
        assert!(c.contains(&Term::Eq(1, 3)));
        assert!(c.has_ta(3));
    }

    #[test]
    fn out_of_range_ids_answer_false() {
        // Dense tables must bounds-guard public queries: callers may probe
        // ids the program does not contain.
        let (_p, c) = closure_for(STOCKBROKER, "clerk");
        assert!(!c.has_ta(9999));
        assert!(!c.has_ti(9999));
        assert!(c.equal_to(9999).is_empty());
        assert_eq!(c.ti_witness(9999), None);
    }
}
