//! Bump-arena storage for the saturation data plane.
//!
//! The chunked saturation mode ([`crate::closure::SaturationMode::Chunked`])
//! keeps every dense structure of one closure in a handful of contiguous
//! allocations instead of a forest of scatter-allocated `Vec`s:
//!
//! * [`Bump`] — an index-based bump allocator. Allocations hand back a
//!   [`Span`] (offset + length) instead of a pointer, so the pool can grow
//!   (amortised, like a `Vec`) without invalidating outstanding handles and
//!   without any `unsafe`. All of a [`DeltaState`]'s bit-grid mirrors — the
//!   `ti`/`pi`/`eq`/`pi*` capability tables the dedup probe reads on every
//!   derive call — live in **one** `Bump<u64>`, so the rows a saturation
//!   touches back-to-back are adjacent in memory rather than wherever the
//!   global allocator scattered them. The sparse per-origin `pi*` pair
//!   grids are the deliberate exception: most never materialize, and the
//!   few that do allocate their own zeroed rows lazily on first touch —
//!   reserving them in the pool up front would commit pages for grids
//!   that stay empty.
//! * [`Csr`] — a compressed-sparse-row view of `Vec<Vec<T>>` adjacency.
//!   The engine's structural indexes (`basic_nodes`, `read_by_recv`,
//!   `writes_by_recv`, `ctor_args`) are built once per program and then
//!   only ever iterated row-by-row on the hot path; flattening them into
//!   one offsets array plus one data array removes a pointer chase (and a
//!   cache miss) per row visit. Row iteration order is exactly the
//!   insertion order of the nested build, so swapping a `Vec<Vec<T>>` for
//!   its [`Csr`] cannot change the traversal.
//!
//! The interned-term payload of a closure (the insertion-ordered `TermId`
//! log) is itself a single bump slab — see `closure.rs`; DESIGN.md §16
//! describes the full lifetime picture.
//!
//! [`DeltaState`]: crate::closure
use std::fmt;

/// A handle to a contiguous run of slots inside a [`Bump`] pool.
///
/// Spans are plain indices: they stay valid across later allocations even
/// when the pool's backing storage reallocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    start: usize,
    len: usize,
}

impl Span {
    /// An empty span (zero slots).
    pub const EMPTY: Span = Span { start: 0, len: 0 };

    /// Number of slots covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Does the span cover zero slots?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An index-based bump allocator over slots of `T`.
///
/// `alloc` appends a zero-filled (`T::default()`) run and returns its
/// [`Span`]; `get`/`get_mut` resolve spans to slices. Dropping the pool
/// frees every allocation at once — the arena lifetime is the lifetime of
/// the saturation run that owns it.
pub struct Bump<T> {
    data: Vec<T>,
}

impl<T: Copy + Default> Bump<T> {
    /// An empty pool.
    pub fn new() -> Bump<T> {
        Bump { data: Vec::new() }
    }

    /// An empty pool with room for `cap` slots before regrowth.
    pub fn with_capacity(cap: usize) -> Bump<T> {
        Bump {
            data: Vec::with_capacity(cap),
        }
    }

    /// Allocate `len` default-initialised slots.
    #[inline]
    pub fn alloc(&mut self, len: usize) -> Span {
        let start = self.data.len();
        self.data.resize(start + len, T::default());
        Span { start, len }
    }

    /// The slots of `span`, immutably.
    #[inline]
    pub fn get(&self, span: Span) -> &[T] {
        &self.data[span.start..span.start + span.len]
    }

    /// The slots of `span`, mutably.
    #[inline]
    pub fn get_mut(&mut self, span: Span) -> &mut [T] {
        &mut self.data[span.start..span.start + span.len]
    }

    /// Total slots allocated.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the pool empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated capacity in slots (for occupancy stats).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }
}

impl<T: Copy + Default> Default for Bump<T> {
    fn default() -> Self {
        Bump::new()
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for Bump<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bump")
            .field("len", &self.data.len())
            .finish()
    }
}

/// A compressed-sparse-row table: `rows` variable-length rows of `T`
/// flattened into one contiguous data array with an offsets directory.
///
/// Immutable after construction; row order and within-row order are exactly
/// those of the nested `Vec<Vec<T>>` it was built from.
#[derive(Clone, Debug)]
pub struct Csr<T> {
    /// `offsets[r]..offsets[r + 1]` is row `r`'s slice of `data`.
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T: Copy> Csr<T> {
    /// Flatten nested rows into CSR form.
    ///
    /// Panics if the flattened table would exceed `u32::MAX` entries — the
    /// engine's structural indexes are linear in program size, far below.
    pub fn from_nested(rows: Vec<Vec<T>>) -> Csr<T> {
        let total: usize = rows.iter().map(Vec::len).sum();
        assert!(
            total <= u32::MAX as usize,
            "CSR table overflows u32 offsets"
        );
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut data = Vec::with_capacity(total);
        offsets.push(0u32);
        for row in rows {
            data.extend_from_slice(&row);
            offsets.push(data.len() as u32);
        }
        Csr { offsets, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Row `r` as a slice (empty for out-of-range rows).
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        match (self.offsets.get(r), self.offsets.get(r + 1)) {
            (Some(&a), Some(&b)) => &self.data[a as usize..b as usize],
            _ => &[],
        }
    }

    /// Total entries across all rows.
    #[inline]
    pub fn entries(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_alloc_spans_survive_regrowth() {
        let mut pool: Bump<u64> = Bump::new();
        let a = pool.alloc(3);
        pool.get_mut(a).copy_from_slice(&[1, 2, 3]);
        // Force many regrowths after `a` was handed out.
        let mut spans = Vec::new();
        for i in 0..100 {
            let s = pool.alloc(17);
            pool.get_mut(s)[0] = i;
            spans.push(s);
        }
        assert_eq!(pool.get(a), &[1, 2, 3]);
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(pool.get(*s)[0], i as u64);
            assert_eq!(pool.get(*s)[1..], [0; 16]);
        }
        assert_eq!(pool.len(), 3 + 100 * 17);
    }

    #[test]
    fn bump_allocations_are_contiguous_and_zeroed() {
        let mut pool: Bump<u64> = Bump::with_capacity(8);
        let a = pool.alloc(2);
        let b = pool.alloc(2);
        assert_eq!(a, Span { start: 0, len: 2 });
        assert_eq!(b, Span { start: 2, len: 2 });
        assert_eq!(pool.get(a), &[0, 0]);
        assert_eq!(pool.get(b), &[0, 0]);
        assert!(Span::EMPTY.is_empty());
        assert_eq!(Span::EMPTY.len(), 0);
    }

    #[test]
    fn csr_preserves_row_and_entry_order() {
        let nested = vec![vec![], vec![10u32, 11], vec![], vec![7], vec![1, 2, 3]];
        let csr = Csr::from_nested(nested.clone());
        assert_eq!(csr.rows(), 5);
        assert_eq!(csr.entries(), 6);
        for (r, row) in nested.iter().enumerate() {
            assert_eq!(csr.row(r), row.as_slice(), "row {r}");
        }
        // Out-of-range rows read as empty, like `Vec::get` + unwrap_or.
        assert_eq!(csr.row(99), &[] as &[u32]);
    }
}
