//! Policy repair: which grants to revoke to satisfy a violated requirement.
//!
//! The paper's §4.2 example ends with the observation that the repaired
//! policy keeps `checkBudget` and drops `w_budget` — the *useful* function
//! survives, the *enabling* one goes. This module mechanises that step:
//! for a violated requirement it searches for **minimal revocation sets** —
//! inclusion-minimal subsets of the user's capability list whose removal
//! makes `A(R)` report *satisfied*.
//!
//! Because `A(R)` is monotone in the capability list (granting more can
//! only add violations — property P8), the satisfied region is downward
//! closed and minimal revocation sets are well-defined. The search is a
//! breadth-first sweep over revocation-set size, with two pruning rules:
//!
//! * a revocation set is only interesting if it intersects every
//!   previously-found minimal set's *complement*… more simply: supersets
//!   of known repairs are skipped;
//! * sizes are tried in increasing order, so every reported set is
//!   inclusion-minimal.
//!
//! Capability lists are small (this is a per-user policy review, not a
//! search over the schema), so the exponential worst case is irrelevant in
//! practice; a budget caps pathological inputs.

use crate::algorithm::{analyze_with_config, AnalysisConfig, AnalysisError};
use oodb_lang::requirement::Requirement;
use oodb_lang::Schema;
use oodb_model::{CapabilityList, FnRef};

/// One repair option: revoke exactly these grants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repair {
    /// The grants to revoke (inclusion-minimal).
    pub revoke: Vec<FnRef>,
}

impl std::fmt::Display for Repair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "revoke {{")?;
        for (i, r) in self.revoke.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

/// Advisor outcome for one requirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Advice {
    /// The requirement is already satisfied — nothing to do.
    AlreadySatisfied,
    /// Minimal revocation sets, smallest first.
    Repairs(Vec<Repair>),
    /// No subset of revocations helps (the flaw survives even an empty
    /// capability list — only possible for vacuous or special-target
    /// requirements).
    Unrepairable,
    /// The search budget was exhausted before completing the sweep; the
    /// repairs found so far are still valid.
    BudgetExhausted(Vec<Repair>),
}

/// Search configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdvisorConfig {
    /// Analysis settings used for each probe.
    pub analysis: AnalysisConfig,
    /// Maximum number of `A(R)` invocations.
    pub probe_budget: usize,
    /// Maximum revocation-set size to consider.
    pub max_revocations: usize,
}

impl Default for AdvisorConfig {
    fn default() -> AdvisorConfig {
        AdvisorConfig {
            analysis: AnalysisConfig::default(),
            probe_budget: 512,
            max_revocations: 3,
        }
    }
}

/// Find minimal revocation sets for `req` against `schema`.
///
/// ```
/// use oodb_lang::{check_schema, parse_requirement, parse_schema};
/// use secflow::advisor::{advise, Advice, AdvisorConfig};
/// use oodb_model::FnRef;
///
/// let schema = parse_schema(r#"
///     class Broker { salary: int, budget: int }
///     fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
///     user clerk { checkBudget, w_budget }
/// "#).unwrap();
/// check_schema(&schema).unwrap();
///
/// let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
/// match advise(&schema, &req, &AdvisorConfig::default()).unwrap() {
///     Advice::Repairs(repairs) => {
///         // The paper's own repair: drop the budget write.
///         assert!(repairs.iter().any(|r| r.revoke == vec![FnRef::write("budget")]));
///     }
///     other => panic!("expected repairs, got {other:?}"),
/// }
/// ```
pub fn advise(
    schema: &Schema,
    req: &Requirement,
    config: &AdvisorConfig,
) -> Result<Advice, AnalysisError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?
        .clone();
    let probes = std::cell::Cell::new(0usize);
    let run = |list: &CapabilityList| -> Result<bool, AnalysisError> {
        probes.set(probes.get() + 1);
        let mut s = schema.clone();
        s.users.insert(req.user.clone(), list.clone());
        Ok(analyze_with_config(&s, req, &config.analysis)?.is_violated())
    };

    if !run(&caps)? {
        return Ok(Advice::AlreadySatisfied);
    }
    // If even revoking everything does not help, give up early.
    if run(&CapabilityList::new())? {
        return Ok(Advice::Unrepairable);
    }

    let grants: Vec<FnRef> = caps.iter().cloned().collect();
    let mut repairs: Vec<Repair> = Vec::new();
    let mut exhausted = false;

    'sizes: for size in 1..=config.max_revocations.min(grants.len()) {
        for combo in combinations(grants.len(), size) {
            if probes.get() >= config.probe_budget {
                exhausted = true;
                break 'sizes;
            }
            let revoke: Vec<FnRef> = combo.iter().map(|&i| grants[i].clone()).collect();
            // Skip supersets of already-found repairs (not minimal).
            if repairs
                .iter()
                .any(|r| r.revoke.iter().all(|f| revoke.contains(f)))
            {
                continue;
            }
            let mut trial = caps.clone();
            for f in &revoke {
                trial.revoke(f);
            }
            if !run(&trial)? {
                repairs.push(Repair { revoke });
            }
        }
    }

    if repairs.is_empty() {
        // Nothing within max_revocations; the full revocation works but is
        // not minimal within the budget.
        if exhausted {
            Ok(Advice::BudgetExhausted(Vec::new()))
        } else {
            Ok(Advice::Repairs(vec![Repair { revoke: grants }]))
        }
    } else if exhausted {
        Ok(Advice::BudgetExhausted(repairs))
    } else {
        Ok(Advice::Repairs(repairs))
    }
}

/// All `size`-element index combinations of `0..n`, lexicographic.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.clone());
        // Advance.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_requirement, parse_schema};

    fn schema() -> Schema {
        let s = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn calcSalary(budget: int, profit: int): int { budget / 10 + profit / 2 }
            fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
            fn updateSalary(b: Broker): null {
              w_salary(b, calcSalary(r_budget(b), r_profit(b)))
            }
            user clerk { checkBudget, w_budget, r_name }
            user reader { r_salary, r_name }
            "#,
        )
        .unwrap();
        oodb_lang::check_schema(&s).unwrap();
        s
    }

    #[test]
    fn combinations_enumerate() {
        assert_eq!(combinations(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(combinations(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(combinations(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(combinations(4, 4), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn clerk_repair_is_the_papers_repair() {
        // The paper's fix: drop w_budget, keep checkBudget (and r_name).
        let s = schema();
        let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let advice = advise(&s, &req, &AdvisorConfig::default()).unwrap();
        match advice {
            Advice::Repairs(repairs) => {
                // Minimal single revocations: w_budget alone or checkBudget
                // alone both break the chain; both are size-1 minimal.
                assert!(repairs
                    .iter()
                    .any(|r| r.revoke == vec![FnRef::write("budget")]));
                assert!(repairs
                    .iter()
                    .any(|r| r.revoke == vec![FnRef::access("checkBudget")]));
                // r_name alone does nothing.
                assert!(!repairs
                    .iter()
                    .any(|r| r.revoke == vec![FnRef::read("name")]));
                // All reported repairs are size 1 (minimality).
                assert!(repairs.iter().all(|r| r.revoke.len() == 1));
            }
            other => panic!("expected repairs, got {other:?}"),
        }
    }

    #[test]
    fn satisfied_requirement_needs_nothing() {
        let s = schema();
        let req = parse_requirement("(clerk, r_name(x) : ti)").unwrap();
        // r_name is granted… so this IS violated (direct grant). Use a
        // requirement the clerk really satisfies:
        let _ = req;
        let req = parse_requirement("(clerk, w_salary(x, v: ta))").unwrap();
        let advice = advise(&s, &req, &AdvisorConfig::default()).unwrap();
        assert_eq!(advice, Advice::AlreadySatisfied);
    }

    #[test]
    fn direct_grant_repairs_to_revoking_it() {
        let s = schema();
        let req = parse_requirement("(reader, r_salary(x) : ti)").unwrap();
        let advice = advise(&s, &req, &AdvisorConfig::default()).unwrap();
        match advice {
            Advice::Repairs(repairs) => {
                assert_eq!(
                    repairs,
                    vec![Repair {
                        revoke: vec![FnRef::read("salary")]
                    }]
                );
            }
            other => panic!("expected repairs, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let s = schema();
        let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let cfg = AdvisorConfig {
            probe_budget: 3, // initial check + empty check + 1 probe
            ..AdvisorConfig::default()
        };
        let advice = advise(&s, &req, &cfg).unwrap();
        assert!(matches!(advice, Advice::BudgetExhausted(_)));
    }

    #[test]
    fn repair_display() {
        let r = Repair {
            revoke: vec![FnRef::write("budget"), FnRef::access("f")],
        };
        assert_eq!(r.to_string(), "revoke {w_budget, f}");
    }
}
