//! Algorithm `A(R)` (§4.1, Definition 6).
//!
//! > *"Given `R = (u, f(x1:c…,…,xn:c…):c…)`, `A(R)` calculates the closure
//! > set of all inferable terms of `F(F)` where `F` is a set of all
//! > functions in the capability list of `u`. Then, if there exists some
//! > `let(f) x1=e1,…,xn=en in … end ∈ S'(F)` for which all terms
//! > corresponding to capabilities specified in `R` are included in the
//! > closure set, `A(R)` determines that `R` is not satisfied."*
//!
//! Occurrences of the target function are:
//!
//! * every `let(f) …` node produced by unfolding an inner invocation —
//!   argument position `i` maps to the binding expression `e_i`, the
//!   returned value to the `let` node itself;
//! * every `r_att` / `w_att` / `new C` node when the target is a special
//!   function — arguments are the node's children, the returned value the
//!   node itself (the paper: *"`let(f) … end` is replaced by
//!   `f(e1,…,en)`"*);
//! * the *outer-most* entry when the target is itself in the capability
//!   list: the user invokes it directly from a query, so capabilities on
//!   its arguments are achievable axiomatically (the user supplies them:
//!   `ta`/`pa` always, `ti`/`pi` exactly for basic-typed parameters) and
//!   capabilities on the returned value are read off the body root.

use crate::closure::{Closure, ClosureError, ProofMode, SaturationMode, DEFAULT_TERM_LIMIT};
use crate::demand::{goal_exprs, DemandPlan};
use crate::report::{Occurrence, OccurrenceKind, Verdict, Violation};
use crate::rules::RuleConfig;
use crate::stats::ClosureStats;
use crate::term::Term;
use crate::unfold::{ExprId, NKind, NProgram, UnfoldError, DEFAULT_NODE_LIMIT};
use oodb_lang::requirement::{Cap, Requirement};
use oodb_lang::Schema;
use oodb_model::{FnRef, Type, UserName};
use secflow_obs::{MetricsSink, Phases};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one analysis run.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Rule groups (ablation).
    pub rules: RuleConfig,
    /// Closure term budget.
    pub term_limit: usize,
    /// Unfolding node budget.
    pub node_limit: usize,
    /// Saturation strategy for the closure phase. Every mode computes the
    /// same closure (identical terms, witnesses and verdicts — see
    /// [`SaturationMode`]), so this knob is deliberately **excluded** from
    /// the cache identity ([`semantic_fingerprint`]): switching it must hit
    /// existing [`ClosureCache`] entries, not invalidate them.
    pub saturation: SaturationMode,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            rules: RuleConfig::default(),
            term_limit: DEFAULT_TERM_LIMIT,
            node_limit: DEFAULT_NODE_LIMIT,
            saturation: SaturationMode::default(),
        }
    }
}

/// Fingerprint of exactly the [`AnalysisConfig`] fields that can change
/// closure *contents*: the rule-group toggles and the two budgets. Spelled
/// out field by field — earlier revisions hashed `format!("{config:?}")`,
/// so any `Debug`-visible but semantically neutral addition (such as
/// [`AnalysisConfig::saturation`]) silently changed cache identity and
/// spuriously invalidated every entry.
fn semantic_fingerprint(config: &AnalysisConfig) -> (u64, u64) {
    let r = &config.rules;
    let text = format!(
        "eq_transfer={} pi_join={} pi_star={} write_read={} basic_rules={} \
         feedback_guard={} printable_oids={} term_limit={} node_limit={}",
        r.eq_transfer,
        r.pi_join,
        r.pi_star,
        r.write_read,
        r.basic_rules,
        r.feedback_guard,
        r.printable_oids,
        config.term_limit,
        config.node_limit,
    );
    fingerprint("config", &text)
}

/// Analysis failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The requirement references an unknown user.
    UnknownUser(String),
    /// Unfolding failed.
    Unfold(UnfoldError),
    /// The closure exceeded its budget.
    Closure(ClosureError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownUser(u) => write!(f, "unknown user `{u}`"),
            AnalysisError::Unfold(e) => write!(f, "{e}"),
            AnalysisError::Closure(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<UnfoldError> for AnalysisError {
    fn from(e: UnfoldError) -> Self {
        AnalysisError::Unfold(e)
    }
}

impl From<ClosureError> for AnalysisError {
    fn from(e: ClosureError) -> Self {
        AnalysisError::Closure(e)
    }
}

/// Run `A(R)` with default configuration.
///
/// ```
/// use oodb_lang::{check_schema, parse_requirement, parse_schema};
/// use secflow::algorithm::analyze;
///
/// let schema = parse_schema(r#"
///     class Broker { salary: int, budget: int }
///     fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
///     user clerk { checkBudget, w_budget }
/// "#).unwrap();
/// check_schema(&schema).unwrap();
///
/// let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
/// assert!(analyze(&schema, &req).unwrap().is_violated());
/// ```
pub fn analyze(schema: &Schema, req: &Requirement) -> Result<Verdict, AnalysisError> {
    analyze_with_config(schema, req, &AnalysisConfig::default())
}

/// Run `A(R)` with explicit configuration. The schema must already be
/// type-checked (see [`oodb_lang::check_schema`]).
///
/// This is the demand-driven path: saturation is restricted to the
/// requirement's relevance slice ([`DemandPlan`]) and stops as soon as
/// every target occurrence's verdict is decided. Verdicts — including
/// witness terms — are identical to [`analyze_full`], which saturates the
/// whole program.
pub fn analyze_with_config(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> Result<Verdict, AnalysisError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
    let prog = NProgram::unfold_with_limit(schema, caps, config.node_limit)?;
    let occs = occurrences(&prog, &req.target);
    let plan = DemandPlan::build(&prog, [(req, occs.as_slice())]);
    let closure = Closure::compute_demand_saturation(
        &prog,
        &config.rules,
        config.term_limit,
        &plan,
        config.saturation,
    )?;
    Ok(check_with_occurrences(&prog, &closure, req, &occs))
}

/// Run `A(R)` with full saturation: the closure of **all** derivable terms,
/// exactly as the paper states `A(R)`. [`analyze_with_config`] reaches the
/// same verdict by deriving only the slice-restricted subset; this
/// entry point is the escape hatch behind the CLI's `--full-saturation`
/// flag and the oracle side of the demand differential tests.
pub fn analyze_full(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> Result<Verdict, AnalysisError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
    let prog = NProgram::unfold_with_limit(schema, caps, config.node_limit)?;
    // Membership-only closure: verdicts never read derivations, so the
    // proof map would be pure allocation overhead here.
    let closure = Closure::compute_with_saturation(
        &prog,
        &config.rules,
        config.term_limit,
        ProofMode::Off,
        config.saturation,
    )?;
    Ok(check_against(&prog, &closure, req))
}

/// Everything measured during one [`analyze_with_stats`] run: per-phase
/// wall-clock (unfold → closure → check) plus the closure's own counters.
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Wall-clock per analysis phase, in execution order.
    pub phases: Phases,
    /// Closure counters (defaulted when unfolding failed before closure).
    pub closure: ClosureStats,
    /// Unfolded program size in nodes (0 when unfolding failed).
    pub program_nodes: u64,
    /// Occurrences of the target function that were checked.
    pub occurrences_checked: u64,
}

impl AnalysisStats {
    /// Report phase spans and closure counters into a sink, plus the
    /// `analysis.program_nodes` / `analysis.occurrences` counters.
    pub fn record_to(&self, sink: &mut dyn MetricsSink) {
        self.phases.record_to(sink);
        self.closure.record_to(sink);
        sink.counter("analysis.program_nodes", self.program_nodes);
        sink.counter("analysis.occurrences", self.occurrences_checked);
    }
}

/// Run `A(R)` like [`analyze_with_config`], but also return
/// [`AnalysisStats`]: per-phase timings and the closure's internal
/// counters. Stats describe whatever phases ran, even when the analysis
/// errors out part-way (unknown user, unfolding budget, closure budget).
pub fn analyze_with_stats(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> (Result<Verdict, AnalysisError>, AnalysisStats) {
    let mut stats = AnalysisStats::default();
    let result = (|| {
        let caps = schema
            .user(&req.user)
            .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
        let prog = stats.phases.time("unfold", || {
            NProgram::unfold_with_limit(schema, caps, config.node_limit)
        })?;
        stats.program_nodes = prog.iter().count() as u64;
        let occs = occurrences(&prog, &req.target);
        let (closure, cstats) = stats.phases.time("closure", || {
            let plan = DemandPlan::build(&prog, [(req, occs.as_slice())]);
            Closure::compute_demand_with_stats_saturation(
                &prog,
                &config.rules,
                config.term_limit,
                &plan,
                config.saturation,
            )
        });
        stats.closure = cstats;
        let closure = closure?;
        Ok(stats.phases.time("check", || {
            stats.occurrences_checked = occs.len() as u64;
            check_with_occurrences(&prog, &closure, req, &occs)
        }))
    })();
    (result, stats)
}

/// The capability queries `A(R)`'s verdict check needs from a closure.
///
/// Both closure engines implement this — the fast dense engine
/// ([`Closure`]) and the retained slow-path oracle
/// ([`crate::reference::RefClosure`]) — so [`check_against`] produces
/// verdicts from either, which is what lets the differential tests compare
/// end-to-end `analyze` results rather than just term sets.
pub trait CapabilityView {
    /// Is `ta[e]` in the closure?
    fn has_ta(&self, e: ExprId) -> bool;
    /// Is `pa[e]` in the closure?
    fn has_pa(&self, e: ExprId) -> bool;
    /// A `ti` term on `e`, deterministic (first origin derived).
    fn ti_witness(&self, e: ExprId) -> Option<Term>;
    /// A `pi` term on `e`, deterministic.
    fn pi_witness(&self, e: ExprId) -> Option<Term>;
}

impl CapabilityView for Closure {
    fn has_ta(&self, e: ExprId) -> bool {
        Closure::has_ta(self, e)
    }
    fn has_pa(&self, e: ExprId) -> bool {
        Closure::has_pa(self, e)
    }
    fn ti_witness(&self, e: ExprId) -> Option<Term> {
        Closure::ti_witness(self, e)
    }
    fn pi_witness(&self, e: ExprId) -> Option<Term> {
        Closure::pi_witness(self, e)
    }
}

/// Check a requirement against an already-computed closure (used when many
/// requirements share one capability list — the common case in the bench
/// harness and the batch driver).
pub fn check_against<C: CapabilityView>(
    prog: &NProgram,
    closure: &C,
    req: &Requirement,
) -> Verdict {
    check_with_occurrences(prog, closure, req, &occurrences(prog, &req.target))
}

/// [`check_against`] when the target's occurrence list is already known —
/// the batch driver memoizes `occurrences(prog, target)` per group so that
/// many requirements on the same target enumerate the program once.
pub fn check_with_occurrences<C: CapabilityView>(
    prog: &NProgram,
    closure: &C,
    req: &Requirement,
    occs: &[Occurrence],
) -> Verdict {
    let mut violations = Vec::new();
    for occ in occs {
        if let Some(witnesses) = occurrence_violates(prog, closure, req, occ) {
            violations.push(Violation {
                occurrence: occ.clone(),
                witnesses,
            });
        }
    }
    if violations.is_empty() {
        Verdict::Satisfied
    } else {
        Verdict::Violated(violations)
    }
}

/// All occurrences of a target function in the unfolded program.
pub fn occurrences(prog: &NProgram, target: &FnRef) -> Vec<Occurrence> {
    let mut out = Vec::new();
    // Outer-most direct grants.
    for (idx, outer) in prog.outers.iter().enumerate() {
        // Outer special functions are plain nodes; the generic node scan
        // below picks them up with their ArgVar children.
        if &outer.fn_ref == target && outer.root != 0 {
            if let FnRef::Access(_) = target {
                out.push(Occurrence {
                    kind: OccurrenceKind::OuterAccess { outer: idx },
                    args: Vec::new(),
                    ret: outer.root,
                });
            }
        }
    }
    // Inner (and outer-special) occurrences: scan nodes.
    for e in prog.iter() {
        match (&e.kind, target) {
            (
                NKind::Let {
                    origin: Some(f),
                    bindings,
                    ..
                },
                FnRef::Access(name),
            ) if f == name => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: bindings.iter().map(|(_, id)| *id).collect(),
                    ret: e.id,
                });
            }
            (NKind::Read(attr, recv), FnRef::Read(a)) if attr == a => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: vec![*recv],
                    ret: e.id,
                });
            }
            (NKind::Write(attr, recv, val), FnRef::Write(a)) if attr == a => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: vec![*recv, *val],
                    ret: e.id,
                });
            }
            (NKind::New(class, args), FnRef::New(c)) if class == c => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: args.iter().map(|(_, id)| *id).collect(),
                    ret: e.id,
                });
            }
            _ => {}
        }
    }
    out
}

/// If the occurrence achieves every capability of the requirement, return
/// the witness terms (in requirement order).
fn occurrence_violates<C: CapabilityView>(
    prog: &NProgram,
    closure: &C,
    req: &Requirement,
    occ: &Occurrence,
) -> Option<Vec<Term>> {
    let mut witnesses = Vec::new();
    match occ.kind {
        OccurrenceKind::OuterAccess { outer } => {
            let o = &prog.outers[outer];
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let ty = o
                    .params
                    .get(i)
                    .map(|(_, t)| t)
                    .cloned()
                    .unwrap_or(Type::Null);
                for cap in caps {
                    // The user supplies the argument directly: alterability
                    // is free; inferability is free exactly for basic types.
                    let achieved = match cap {
                        Cap::Ta | Cap::Pa => true,
                        Cap::Ti | Cap::Pi => ty.is_basic(),
                    };
                    if !achieved {
                        return None;
                    }
                    // No closure witness — mark with the body root's terms
                    // where possible; use a synthetic Ta/Ti on the root to
                    // keep the report non-empty.
                }
            }
            for cap in &req.ret_caps {
                let w = cap_witness(closure, occ.ret, *cap)?;
                witnesses.push(w);
            }
            Some(witnesses)
        }
        OccurrenceKind::Inner { .. } => {
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let arg = *occ.args.get(i)?;
                for cap in caps {
                    let w = cap_witness(closure, arg, *cap)?;
                    witnesses.push(w);
                }
            }
            for cap in &req.ret_caps {
                let w = cap_witness(closure, occ.ret, *cap)?;
                witnesses.push(w);
            }
            Some(witnesses)
        }
    }
}

fn cap_witness<C: CapabilityView>(closure: &C, e: ExprId, cap: Cap) -> Option<Term> {
    match cap {
        Cap::Ta => closure.has_ta(e).then_some(Term::Ta(e)),
        Cap::Pa => closure.has_pa(e).then_some(Term::Pa(e)),
        Cap::Ti => closure.ti_witness(e),
        Cap::Pi => closure.pi_witness(e),
    }
}

/// Group-scheduling policy for the batch worker pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSchedule {
    /// Static partitioning: each worker owns one contiguous chunk of the
    /// group list and never looks at anyone else's. A skewed batch (one
    /// giant group next to thousands of tiny ones) serializes on whichever
    /// worker drew the giant chunk — kept as the baseline the `population`
    /// bench experiment measures the stealing speedup against.
    Fixed,
    /// Work stealing (the default): workers start from the same contiguous
    /// chunks, held in per-worker deques, but an idle worker steals the
    /// back half of the first non-empty victim deque it finds instead of
    /// going idle. Output is unaffected — results are written into slots
    /// indexed by group, so scheduling order never shows.
    #[default]
    WorkStealing,
}

/// Options for [`analyze_batch`].
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads for the group fan-out. `0` auto-detects the machine
    /// parallelism ([`std::thread::available_parallelism`], falling back to
    /// 1 when the platform cannot say); `1` runs serially on the calling
    /// thread; larger values are clamped to the group count.
    pub jobs: usize,
    /// How groups are distributed across workers. Never affects the output
    /// (verdicts are byte-identical either way); [`BatchSchedule::Fixed`]
    /// exists as the measured baseline for the work-stealing speedup.
    pub schedule: BatchSchedule,
    /// Proof mode for the shared closures. [`ProofMode::Full`] is only
    /// needed when something will print derivations from the kept
    /// artifacts (the CLI `--explain` path).
    pub proofs: ProofMode,
    /// Keep each group's `(NProgram, Closure)` on [`BatchGroup::artifacts`]
    /// so callers can render explanations without recomputing.
    pub keep_artifacts: bool,
    /// Collect [`ClosureStats`] and per-phase timings per group.
    pub collect_stats: bool,
    /// Force full saturation even when the group is eligible for the
    /// demand-driven engine. Verdicts are identical either way; this is the
    /// escape hatch (CLI `--full-saturation`) and the oracle mode for the
    /// demand differential tests. Groups needing proofs or kept artifacts
    /// saturate fully regardless — a partial closure cannot back
    /// `--explain`-style derivation rendering for arbitrary terms.
    pub full_saturation: bool,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            jobs: 1,
            schedule: BatchSchedule::WorkStealing,
            proofs: ProofMode::Off,
            keep_artifacts: false,
            collect_stats: false,
            full_saturation: false,
        }
    }
}

/// One unit of shared work in a batch run: all requirements naming the same
/// user (and therefore sharing one unfolding and one closure).
#[derive(Debug)]
pub struct BatchGroup {
    /// The user whose capability list this group analyzed.
    pub user: UserName,
    /// Indexes into the input requirement slice, in input order.
    pub req_indexes: Vec<usize>,
    /// Phase timings and closure counters (zeroed unless
    /// [`BatchOptions::collect_stats`]; `occurrences_checked` sums over the
    /// group's requirements).
    pub stats: AnalysisStats,
    /// Wall-clock of each requirement's check phase, aligned with
    /// `req_indexes`.
    pub check_times: Vec<Duration>,
    /// Occurrences checked per requirement, aligned with `req_indexes`.
    pub check_occurrences: Vec<u64>,
    /// The shared unfolding and closure, when
    /// [`BatchOptions::keep_artifacts`] and the shared phases succeeded.
    pub artifacts: Option<(NProgram, Closure)>,
}

/// The result of [`analyze_batch`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-requirement verdicts, in input order. A failure in a group's
    /// shared phase (unknown user, unfold or closure budget) is reported on
    /// every requirement of that group — exactly what per-requirement
    /// [`analyze`] calls would have returned.
    pub verdicts: Vec<Result<Verdict, AnalysisError>>,
    /// Per-group bookkeeping, in first-seen order of the users.
    pub groups: Vec<BatchGroup>,
    /// Worker threads actually used (after resolving `jobs == 0` and
    /// clamping to the group count).
    pub jobs_used: usize,
    /// Steal operations performed by the work-stealing pool: 0 for serial
    /// runs and for [`BatchSchedule::Fixed`].
    pub steals: u64,
    /// `(len, capacity)` of the [`ClosureCache`] after this batch, when one
    /// was passed to [`analyze_batch_cached`]; `None` for uncached runs.
    pub cache_occupancy: Option<(usize, usize)>,
    /// Lifetime hit/miss counters of the cache after this batch, when one
    /// was passed; `None` for uncached runs. Lifetime, not per-batch: the
    /// cache is shared across calls, so consumers report the running
    /// totals (monotone counters).
    pub cache_stats: Option<CacheStats>,
}

/// A double-hash fingerprint of a canonical text rendering. Two 64-bit
/// `DefaultHasher` runs with different seeds: collisions would require both
/// to collide simultaneously, which is good enough for a cache key derived
/// from exact pretty-printed inputs.
fn fingerprint(tag: &str, text: &str) -> (u64, u64) {
    let mut h1 = DefaultHasher::new();
    tag.hash(&mut h1);
    text.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    0x9e37_79b9_7f4a_7c15_u64.hash(&mut h2);
    tag.hash(&mut h2);
    text.hash(&mut h2);
    (h1.finish(), h2.finish())
}

/// Cache key: schema, capability-list and configuration fingerprints. The
/// user's *name* is deliberately excluded — two users granted identical
/// capability lists unfold to the same `S'(F)` and saturate to the same
/// closure, so they share an entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CacheKey {
    schema_fp: (u64, u64),
    caps_fp: (u64, u64),
    config_fp: (u64, u64),
}

/// One cached partial closure: the shared unfolding, the slice-restricted
/// closure, which requirement shapes it was computed for, and the
/// occurrence memo accumulated so far.
#[derive(Clone)]
struct CacheEntry {
    prog: Arc<NProgram>,
    closure: Arc<Closure>,
    /// Requirement shapes the plan was built from (user field ignored).
    covered: Vec<Requirement>,
    /// Memoized `occurrences(prog, target)` results.
    occs: Vec<(FnRef, Arc<Vec<Occurrence>>)>,
    /// The plan the closure was computed under, for slice-coverage hits.
    plan: Arc<DemandPlan>,
    /// Did the sliced worklist drain (no early exit)? A drained closure
    /// answers *every* query whose goals lie inside the slice; an
    /// early-exited one only answers the goals it was tracking.
    drained: bool,
}

/// One lock-striped segment of a [`ClosureCache`]: entries tagged with a
/// last-touch tick, evicted least-recently-touched first.
#[derive(Default)]
struct CacheShard {
    entries: Vec<(CacheKey, CacheEntry, u64)>,
    tick: u64,
}

impl CacheShard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Lifetime counters of a [`ClosureCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Groups served without any saturation.
    pub hits: u64,
    /// Groups that had to saturate: cold misses plus union recomputes.
    pub misses: u64,
    /// The subset of `misses` that found a cached entry for the key but
    /// could not cover the new goals, so the closure was recomputed —
    /// against the cached unfolding — with the union of old and new goal
    /// sets.
    pub union_recomputes: u64,
    /// Entries dropped because a shard exceeded its capacity; the
    /// least-recently-touched entry of the full shard goes first.
    pub evictions: u64,
}

/// A cross-call cache of demand-driven closures, keyed by
/// `(schema, capability list, analysis config)` fingerprints.
///
/// `A(R)`'s expensive phases depend only on that triple plus the goal set;
/// repeated [`analyze_batch_cached`] calls against the same policy (a
/// REPL-style CLI session, a watch loop, the advisor's repair search)
/// rediscover the same closures. A hit requires the cached run to *cover*
/// the new requirements: either the same requirement shape was analyzed
/// before, or the cached worklist drained and every new goal expression
/// lies inside the cached slice (the partial closure then already contains
/// every term the verdict can observe). Anything else recomputes — against
/// the cached unfolding — with the union of old and new goals, and the
/// refreshed entry replaces the old one.
///
/// Bounded LRU, lock-striped: entries are spread over `shard_count()`
/// independently locked segments keyed by the capability-list fingerprint,
/// so concurrent hits on different keys never contend on one mutex. Each
/// shard evicts its least-recently-touched entry past its share of the
/// capacity (a hit refreshes recency). Lookups hold a shard lock only
/// briefly and saturation runs outside it (concurrent misses on one key may
/// duplicate work, last writer wins).
pub struct ClosureCache {
    shards: Vec<Mutex<CacheShard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    union_recomputes: AtomicU64,
    evictions: AtomicU64,
}

impl ClosureCache {
    /// A cache holding at most `capacity` closures (minimum 1), striped
    /// over `capacity / 8` lock shards (clamped to 1..=16). Small caches
    /// (capacity < 16) keep a single shard, which preserves exact global
    /// LRU order; the striped layout approximates it per shard.
    pub fn new(capacity: usize) -> ClosureCache {
        let capacity = capacity.max(1);
        ClosureCache::with_shards(capacity, (capacity / 8).clamp(1, 16))
    }

    /// A cache with an explicit shard count. The capacity is rounded up to
    /// a multiple of the shard count: each shard holds at most
    /// `capacity.div_ceil(shards)` entries.
    pub fn with_shards(capacity: usize, shards: usize) -> ClosureCache {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        ClosureCache {
            shards: (0..shards)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            union_recomputes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Lifetime counters. A "hit" means a group was served without any
    /// saturation; recompute-with-union counts as a miss even though it
    /// reuses the cached unfolding, and is additionally tallied in
    /// [`CacheStats::union_recomputes`].
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            union_recomputes: self.union_recomputes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached closures across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).entries.len())
            .sum()
    }

    /// Maximum number of closures the cache retains (per-shard LRU eviction
    /// past each shard's share).
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Number of lock-striped shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Occupancy of the fullest shard — the striping diagnostic behind the
    /// CLI's `cache.shard.max_len` gauge.
    pub fn max_shard_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).entries.len())
            .max()
            .unwrap_or(0)
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<CacheShard> {
        // Stripe on every key component. Within one batch the schema and
        // config fingerprints are constant, but the cache outlives batches:
        // a resident process serving several policies (or re-checking one
        // policy under different budgets) holds entries whose keys differ
        // *only* in those components, and striping on `caps_fp` alone
        // pigeonholed all of them onto a single shard — one mutex carrying
        // every lookup and one shard's LRU share bounding the whole cache.
        // The rotations keep the three double-hashes from cancelling.
        let mix = key.caps_fp.0
            ^ key.caps_fp.1.rotate_left(11)
            ^ key.schema_fp.0.rotate_left(23)
            ^ key.schema_fp.1.rotate_left(31)
            ^ key.config_fp.0.rotate_left(43)
            ^ key.config_fp.1.rotate_left(53);
        let idx = mix as usize % self.shards.len();
        &self.shards[idx]
    }

    fn lookup(&self, key: &CacheKey) -> Option<CacheEntry> {
        let mut shard = lock_shard(self.shard_for(key));
        let tick = shard.touch();
        shard
            .entries
            .iter_mut()
            .find(|(k, _, _)| k == key)
            .map(|(_, e, stamp)| {
                *stamp = tick;
                e.clone()
            })
    }

    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn note_miss(&self, union_recompute: bool) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if union_recompute {
            self.union_recomputes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn store(&self, key: CacheKey, entry: CacheEntry) {
        let mut shard = lock_shard(self.shard_for(&key));
        let tick = shard.touch();
        if let Some(slot) = shard.entries.iter_mut().find(|(k, _, _)| *k == key) {
            slot.1 = entry;
            slot.2 = tick;
            return;
        }
        shard.entries.push((key, entry, tick));
        if shard.entries.len() > self.per_shard {
            let oldest = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("a full shard is non-empty");
            shard.entries.remove(oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn lock_shard(shard: &Mutex<CacheShard>) -> std::sync::MutexGuard<'_, CacheShard> {
    shard.lock().expect("no panics hold a cache shard lock")
}

impl Default for ClosureCache {
    fn default() -> ClosureCache {
        ClosureCache::new(64)
    }
}

impl fmt::Debug for ClosureCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("ClosureCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("shards", &self.shard_count())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("union_recomputes", &stats.union_recomputes)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

/// Do two requirements ask the same question of the closure? The user is
/// ignored: within one cache entry the capability list is already fixed.
fn same_goals(a: &Requirement, b: &Requirement) -> bool {
    a.target == b.target && a.arg_caps == b.arg_caps && a.ret_caps == b.ret_caps
}

/// Can this entry answer all of `reqs` without recomputing?
fn entry_covers(entry: &CacheEntry, reqs: &[&Requirement]) -> bool {
    reqs.iter().all(|r| {
        if entry.covered.iter().any(|c| same_goals(c, r)) {
            return true;
        }
        if !entry.drained {
            return false;
        }
        // Drained closure: correct for any goal inside the cached slice.
        let occs = entry
            .occs
            .iter()
            .find(|(t, _)| *t == r.target)
            .map(|(_, o)| Arc::clone(o))
            .unwrap_or_else(|| Arc::new(occurrences(&entry.prog, &r.target)));
        goal_exprs(&entry.prog, r, &occs)
            .iter()
            .all(|&e| entry.plan.covers_expr(e))
    })
}

/// Shared per-batch cache context: the cache plus the fingerprints that are
/// constant across groups (schema and config), computed once per call.
struct CacheCtx<'a> {
    cache: &'a ClosureCache,
    schema_fp: (u64, u64),
    config_fp: (u64, u64),
}

/// Serve one group's shared phases through the cache: return the unfolding,
/// the closure and the occurrence memo, recomputing (with the union of
/// cached and new goals) only when the cached entry cannot cover the
/// group's requirements.
fn demand_shared_cached(
    ctx: &CacheCtx<'_>,
    key: CacheKey,
    schema: &Schema,
    user: &UserName,
    config: &AnalysisConfig,
    group_reqs: &[&Requirement],
) -> Result<(Arc<NProgram>, Arc<Closure>, OccMemo), AnalysisError> {
    let caps = schema
        .user(user)
        .ok_or_else(|| AnalysisError::UnknownUser(user.to_string()))?;
    let prior = ctx.cache.lookup(&key);
    if let Some(entry) = &prior {
        if entry_covers(entry, group_reqs) {
            ctx.cache.note_hit();
            return Ok((
                Arc::clone(&entry.prog),
                Arc::clone(&entry.closure),
                OccMemo::from_entries(entry.occs.clone()),
            ));
        }
    }
    ctx.cache.note_miss(prior.is_some());
    let (prog, mut memo, mut covered) = match prior {
        Some(entry) => (entry.prog, OccMemo::from_entries(entry.occs), entry.covered),
        None => (
            Arc::new(NProgram::unfold_with_limit(
                schema,
                caps,
                config.node_limit,
            )?),
            OccMemo::default(),
            Vec::new(),
        ),
    };
    for r in group_reqs {
        if !covered.iter().any(|c| same_goals(c, r)) {
            covered.push((*r).clone());
        }
    }
    let plan = {
        let pairs: Vec<(&Requirement, Arc<Vec<Occurrence>>)> = covered
            .iter()
            .map(|r| {
                let occs = memo.get(&prog, &r.target);
                (r, occs)
            })
            .collect();
        DemandPlan::build(&prog, pairs.iter().map(|(r, o)| (*r, o.as_slice())))
    };
    let closure = Arc::new(Closure::compute_demand_saturation(
        &prog,
        &config.rules,
        config.term_limit,
        &plan,
        config.saturation,
    )?);
    let drained = !closure.early_exited();
    ctx.cache.store(
        key,
        CacheEntry {
            prog: Arc::clone(&prog),
            closure: Arc::clone(&closure),
            covered,
            occs: memo.entries().to_vec(),
            plan: Arc::new(plan),
            drained,
        },
    );
    Ok((prog, closure, memo))
}

/// Per-group occurrence memo: `occurrences(prog, target)` depends only on
/// the program and the target, so requirements sharing a target share one
/// enumeration. Linear scan — a group rarely names more than a handful of
/// distinct targets.
#[derive(Default)]
struct OccMemo {
    entries: Vec<(FnRef, Arc<Vec<Occurrence>>)>,
}

impl OccMemo {
    fn from_entries(entries: Vec<(FnRef, Arc<Vec<Occurrence>>)>) -> OccMemo {
        OccMemo { entries }
    }

    fn entries(&self) -> &[(FnRef, Arc<Vec<Occurrence>>)] {
        &self.entries
    }

    fn get(&mut self, prog: &NProgram, target: &FnRef) -> Arc<Vec<Occurrence>> {
        if let Some((_, occs)) = self.entries.iter().find(|(t, _)| t == target) {
            return Arc::clone(occs);
        }
        let occs = Arc::new(occurrences(prog, target));
        self.entries.push((target.clone(), Arc::clone(&occs)));
        occs
    }
}

/// Analyze a batch of requirements, unfolding and saturating **once per
/// user** instead of once per requirement.
///
/// `A(R)`'s expensive phases — unfolding `S'(F)` and the `F(F)` closure —
/// depend only on the requirement's user (its capability list) and the
/// analysis configuration, which is shared by the whole call. Requirements
/// are therefore grouped by user in first-seen order; each group runs
/// unfold → closure once and then the cheap per-requirement verdict check.
/// Groups fan out across a hand-rolled `std::thread::scope` work-stealing
/// pool ([`BatchOptions::jobs`] workers over per-worker deques — see
/// [`BatchSchedule`]), so a policy file with many users saturates in
/// parallel even when group sizes are heavily skewed.
///
/// Verdicts are identical to per-requirement [`analyze_with_config`] calls,
/// in input order, regardless of `jobs` — groups are independent and each
/// group's work is deterministic.
pub fn analyze_batch(
    schema: &Schema,
    reqs: &[Requirement],
    config: &AnalysisConfig,
    opts: &BatchOptions,
) -> BatchOutcome {
    analyze_batch_cached(schema, reqs, config, opts, None)
}

/// [`analyze_batch`] with an optional cross-call [`ClosureCache`].
///
/// Cache reuse applies only to groups that run demand-driven without stats
/// collection (`!full_saturation`, `proofs == Off`, `!keep_artifacts`,
/// `!collect_stats`) — full closures, proof-carrying closures and
/// per-group counters are request-specific and bypass it. Passing `None`
/// is exactly [`analyze_batch`].
pub fn analyze_batch_cached(
    schema: &Schema,
    reqs: &[Requirement],
    config: &AnalysisConfig,
    opts: &BatchOptions,
    cache: Option<&ClosureCache>,
) -> BatchOutcome {
    let ctx = cache.map(|cache| CacheCtx {
        cache,
        schema_fp: fingerprint("schema", &schema.to_string()),
        config_fp: semantic_fingerprint(config),
    });
    let grouped = group_by_user(reqs);
    let n_groups = grouped.len();
    let jobs = effective_jobs(opts.jobs).min(n_groups.max(1));
    type GroupOut = (BatchGroup, Vec<(usize, Result<Verdict, AnalysisError>)>);
    let mut outs: Vec<Option<GroupOut>> = Vec::with_capacity(n_groups);
    let mut steals = 0;

    if jobs <= 1 {
        for (user, idxs) in &grouped {
            outs.push(Some(run_group(
                schema,
                reqs,
                config,
                opts,
                user,
                idxs,
                ctx.as_ref(),
            )));
        }
    } else {
        // Per-slot mutexes keep result writes contention-free and slot
        // order independent of scheduling, so the pool's nondeterministic
        // group→worker assignment never reaches the output.
        let slots: Vec<Mutex<Option<GroupOut>>> = (0..n_groups).map(|_| Mutex::new(None)).collect();
        let (_, pool_steals) = run_pool(
            n_groups,
            jobs,
            opts.schedule,
            |_| (),
            |_state, gi| {
                let (user, idxs) = &grouped[gi];
                let out = run_group(schema, reqs, config, opts, user, idxs, ctx.as_ref());
                *slots[gi].lock().expect("no panics hold this lock") = Some(out);
            },
        );
        steals = pool_steals;
        for slot in slots {
            outs.push(slot.into_inner().expect("no panics hold this lock"));
        }
    }

    let mut verdicts: Vec<Option<Result<Verdict, AnalysisError>>> =
        reqs.iter().map(|_| None).collect();
    let mut groups = Vec::with_capacity(n_groups);
    for out in outs {
        let (group, vs) = out.expect("every group index was claimed by a worker");
        for (i, v) in vs {
            verdicts[i] = Some(v);
        }
        groups.push(group);
    }
    BatchOutcome {
        verdicts: verdicts
            .into_iter()
            .map(|v| v.expect("every requirement belongs to exactly one group"))
            .collect(),
        groups,
        jobs_used: jobs,
        steals,
        cache_occupancy: cache.map(|c| (c.len(), c.capacity())),
        cache_stats: cache.map(|c| c.stats()),
    }
}

/// Group requirement indexes by user, first-seen order — the unit of shared
/// work for both the buffered and streaming batch drivers.
fn group_by_user(reqs: &[Requirement]) -> Vec<(UserName, Vec<usize>)> {
    let mut group_of: HashMap<UserName, usize> = HashMap::new();
    let mut grouped: Vec<(UserName, Vec<usize>)> = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        let gi = *group_of.entry(r.user.clone()).or_insert_with(|| {
            grouped.push((r.user.clone(), Vec::new()));
            grouped.len() - 1
        });
        grouped[gi].1.push(i);
    }
    grouped
}

/// Resolve a requested job count: `0` auto-detects the machine's
/// [`std::thread::available_parallelism`], falling back to 1 when the
/// platform cannot say. Any other value passes through unchanged.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// The batch worker pool. Spawns `jobs` scoped workers over group indexes
/// `0..n_groups`, each seeded with a contiguous chunk of the index space in
/// a per-worker deque. Under [`BatchSchedule::WorkStealing`], a worker
/// whose deque drains steals the back half of the first non-empty victim
/// deque it finds (scanning from its right neighbour) instead of exiting —
/// so one giant group no longer strands the rest of a skewed batch on a
/// single worker. Under [`BatchSchedule::Fixed`] it exits as soon as its
/// own chunk drains.
///
/// Every group index is processed exactly once: indexes only ever move
/// between deques under a victim's lock, and a worker drains its own deque
/// before exiting. Each worker threads a private state value (`init` →
/// `work` → returned at join), which is how the streaming path folds
/// per-worker [`ClosureStats`] without a shared lock. Returns the worker
/// states in worker-index order plus the number of steals performed.
fn run_pool<S, I, W>(
    n_groups: usize,
    jobs: usize,
    schedule: BatchSchedule,
    init: I,
    work: W,
) -> (Vec<S>, u64)
where
    S: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) + Sync,
{
    let steals = AtomicU64::new(0);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| {
            let start = w * n_groups / jobs;
            let end = (w + 1) * n_groups / jobs;
            Mutex::new((start..end).collect())
        })
        .collect();
    let states = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let (queues, steals, init, work) = (&queues, &steals, &init, &work);
                scope.spawn(move || {
                    let lock = |v: usize| queues[v].lock().expect("no panics hold a queue lock");
                    let mut state = init(w);
                    loop {
                        if let Some(gi) = lock(w).pop_front() {
                            work(&mut state, gi);
                            continue;
                        }
                        if schedule == BatchSchedule::Fixed {
                            break;
                        }
                        let mut stolen = VecDeque::new();
                        for off in 1..jobs {
                            let mut q = lock((w + off) % jobs);
                            let len = q.len();
                            if len > 0 {
                                stolen = q.split_off(len - len.div_ceil(2));
                                break;
                            }
                        }
                        if stolen.is_empty() {
                            // Every deque was empty when scanned; any group
                            // still in flight is owned by the worker running
                            // it, so there is nothing left to take.
                            break;
                        }
                        steals.fetch_add(1, Ordering::Relaxed);
                        *lock(w) = stolen;
                    }
                    state
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    (states, steals.load(Ordering::Relaxed))
}

/// One completed group, as delivered to an [`AnalysisSink`]. Records may
/// arrive in any order under a parallel pool — `group_index` (the group's
/// position in first-seen user order) lets a consumer reassemble input
/// order, and each verdict is tagged with its requirement's index in the
/// caller's input slice.
#[derive(Debug)]
pub struct GroupRecord {
    /// Index of the group in first-seen user order.
    pub group_index: usize,
    /// Index of the pool worker that analyzed this group (0 on the serial
    /// path). Under [`BatchSchedule::WorkStealing`] this is the worker that
    /// *executed* the group, which may differ from the worker whose chunk
    /// it was seeded into — the trace of how the pool balanced the batch.
    pub worker: usize,
    /// The user whose capability list this group analyzed.
    pub user: UserName,
    /// `(requirement index, verdict)` pairs, input order within the group.
    pub verdicts: Vec<(usize, Result<Verdict, AnalysisError>)>,
    /// Occurrences checked across the group's requirements.
    pub occurrences_checked: u64,
}

/// A consumer of streamed batch results. Implementations must be
/// thread-safe: under a parallel pool, `emit` is called concurrently from
/// worker threads as groups complete.
pub trait AnalysisSink: Sync {
    /// Called exactly once per group, the moment its verdicts are ready.
    /// Ordering is unspecified when `jobs > 1`.
    fn emit(&self, record: GroupRecord);
}

/// The simplest sink: buffer every record in completion order (tests, and
/// consumers that want to reassemble input order themselves).
impl AnalysisSink for Mutex<Vec<GroupRecord>> {
    fn emit(&self, record: GroupRecord) {
        self.lock()
            .expect("no panics hold the sink lock")
            .push(record);
    }
}

/// What [`analyze_batch_streaming`] returns once the last record has been
/// emitted: aggregate counters only — nothing per-requirement or per-group
/// is buffered, which is the point.
#[derive(Debug)]
pub struct StreamSummary {
    /// Groups analyzed (= records emitted).
    pub groups: usize,
    /// Requirements across all groups.
    pub requirements: usize,
    /// Worker threads actually used (after resolving `jobs == 0` and
    /// clamping to the group count).
    pub jobs_used: usize,
    /// Steal operations performed by the work-stealing pool.
    pub steals: u64,
    /// Closure counters folded across all groups (zeroed unless
    /// [`BatchOptions::collect_stats`]). Each worker merges its own groups'
    /// stats locally and the cross-worker fold happens once at join, in
    /// worker-index order — one merge per worker instead of one lock
    /// round-trip per group. Totals, maxima and sticky flags are identical
    /// to a serial fold; only the row order of the per-label tables can
    /// differ (the merge contract sums labels wherever they sit).
    pub closure: ClosureStats,
    /// Total occurrences checked.
    pub occurrences: u64,
    /// `(len, capacity)` of the cache after this batch, when one was passed.
    pub cache_occupancy: Option<(usize, usize)>,
    /// Lifetime cache counters after this batch, when one was passed.
    pub cache_stats: Option<CacheStats>,
}

/// [`analyze_batch_cached`], streaming: each group's verdicts are handed to
/// `sink.emit` the moment the group completes, and nothing per-group is
/// retained — memory stays flat no matter how many users the batch holds.
/// Grouping, cache eligibility and the verdicts themselves are identical to
/// the buffered path (the differential suite reassembles records by
/// `group_index` and compares byte-for-byte).
pub fn analyze_batch_streaming(
    schema: &Schema,
    reqs: &[Requirement],
    config: &AnalysisConfig,
    opts: &BatchOptions,
    cache: Option<&ClosureCache>,
    sink: &dyn AnalysisSink,
) -> StreamSummary {
    let ctx = cache.map(|cache| CacheCtx {
        cache,
        schema_fp: fingerprint("schema", &schema.to_string()),
        config_fp: semantic_fingerprint(config),
    });
    let grouped = group_by_user(reqs);
    let n_groups = grouped.len();
    let jobs = effective_jobs(opts.jobs).min(n_groups.max(1));

    #[derive(Default)]
    struct WorkerAcc {
        worker: usize,
        closure: ClosureStats,
        occurrences: u64,
    }

    let emit_group = |acc: &mut WorkerAcc, gi: usize| {
        let (user, idxs) = &grouped[gi];
        let (group, verdicts) = run_group(schema, reqs, config, opts, user, idxs, ctx.as_ref());
        acc.closure.merge(&group.stats.closure);
        acc.occurrences += group.stats.occurrences_checked;
        sink.emit(GroupRecord {
            group_index: gi,
            worker: acc.worker,
            user: group.user,
            verdicts,
            occurrences_checked: group.stats.occurrences_checked,
        });
    };

    let (accs, steals) = if jobs <= 1 {
        let mut acc = WorkerAcc::default();
        for gi in 0..n_groups {
            emit_group(&mut acc, gi);
        }
        (vec![acc], 0)
    } else {
        run_pool(
            n_groups,
            jobs,
            opts.schedule,
            |w| WorkerAcc {
                worker: w,
                ..WorkerAcc::default()
            },
            emit_group,
        )
    };

    let mut closure = ClosureStats::default();
    let mut occurrences = 0;
    for acc in &accs {
        closure.merge(&acc.closure);
        occurrences += acc.occurrences;
    }
    StreamSummary {
        groups: n_groups,
        requirements: reqs.len(),
        jobs_used: jobs,
        steals,
        closure,
        occurrences,
        cache_occupancy: cache.map(|c| (c.len(), c.capacity())),
        cache_stats: cache.map(|c| c.stats()),
    }
}

/// Per-requirement verdicts from one group run, tagged with each
/// requirement's index in the caller's input order.
type GroupVerdicts = Vec<(usize, Result<Verdict, AnalysisError>)>;

/// A group's shared unfolding and closure: owned when computed for this
/// group alone, `Arc`-shared when served from a [`ClosureCache`]. The
/// owned pair is boxed to keep the variants a pointer apart in size.
enum SharedArtifacts {
    Owned(Box<(NProgram, Closure)>),
    Shared(Arc<NProgram>, Arc<Closure>),
}

impl SharedArtifacts {
    fn prog(&self) -> &NProgram {
        match self {
            SharedArtifacts::Owned(b) => &b.0,
            SharedArtifacts::Shared(p, _) => p,
        }
    }

    fn closure(&self) -> &Closure {
        match self {
            SharedArtifacts::Owned(b) => &b.1,
            SharedArtifacts::Shared(_, c) => c,
        }
    }

    fn into_owned(self) -> Option<(NProgram, Closure)> {
        match self {
            SharedArtifacts::Owned(b) => Some(*b),
            // keep_artifacts disables both the demand and cache paths, so
            // a Shared group never has artifacts requested.
            SharedArtifacts::Shared(..) => None,
        }
    }
}

/// The shared phases plus per-requirement checks for one user group.
fn run_group(
    schema: &Schema,
    reqs: &[Requirement],
    config: &AnalysisConfig,
    opts: &BatchOptions,
    user: &UserName,
    req_indexes: &[usize],
    cache: Option<&CacheCtx<'_>>,
) -> (BatchGroup, GroupVerdicts) {
    let mut group = BatchGroup {
        user: user.clone(),
        req_indexes: req_indexes.to_vec(),
        stats: AnalysisStats::default(),
        check_times: Vec::with_capacity(req_indexes.len()),
        check_occurrences: Vec::with_capacity(req_indexes.len()),
        artifacts: None,
    };
    // Demand-driven saturation answers exactly the goal queries the checks
    // below will make; anything that inspects the closure beyond those
    // queries (proof rendering, kept artifacts) needs the full fixpoint.
    let use_demand = !opts.full_saturation && opts.proofs == ProofMode::Off && !opts.keep_artifacts;
    let mut memo = OccMemo::default();
    let shared: Result<SharedArtifacts, AnalysisError> = (|| {
        if use_demand {
            if let Some(ctx) = cache.filter(|_| !opts.collect_stats) {
                let key = CacheKey {
                    schema_fp: ctx.schema_fp,
                    caps_fp: {
                        let caps = schema
                            .user(user)
                            .ok_or_else(|| AnalysisError::UnknownUser(user.to_string()))?;
                        fingerprint("caps", &caps.to_string())
                    },
                    config_fp: ctx.config_fp,
                };
                let group_reqs: Vec<&Requirement> = req_indexes.iter().map(|&i| &reqs[i]).collect();
                let (prog, closure, cached_memo) = group.stats.phases.time("closure", || {
                    demand_shared_cached(ctx, key, schema, user, config, &group_reqs)
                })?;
                group.stats.program_nodes = prog.len() as u64;
                memo = cached_memo;
                return Ok(SharedArtifacts::Shared(prog, closure));
            }
            let caps = schema
                .user(user)
                .ok_or_else(|| AnalysisError::UnknownUser(user.to_string()))?;
            let prog = group.stats.phases.time("unfold", || {
                NProgram::unfold_with_limit(schema, caps, config.node_limit)
            })?;
            group.stats.program_nodes = prog.len() as u64;
            let pairs: Vec<(usize, Arc<Vec<Occurrence>>)> = req_indexes
                .iter()
                .map(|&i| (i, memo.get(&prog, &reqs[i].target)))
                .collect();
            let closure = if opts.collect_stats {
                let (c, cstats) = group.stats.phases.time("closure", || {
                    let plan = DemandPlan::build(
                        &prog,
                        pairs.iter().map(|(i, o)| (&reqs[*i], o.as_slice())),
                    );
                    Closure::compute_demand_with_stats_saturation(
                        &prog,
                        &config.rules,
                        config.term_limit,
                        &plan,
                        config.saturation,
                    )
                });
                group.stats.closure = cstats;
                c?
            } else {
                group.stats.phases.time("closure", || {
                    let plan = DemandPlan::build(
                        &prog,
                        pairs.iter().map(|(i, o)| (&reqs[*i], o.as_slice())),
                    );
                    Closure::compute_demand_saturation(
                        &prog,
                        &config.rules,
                        config.term_limit,
                        &plan,
                        config.saturation,
                    )
                })?
            };
            return Ok(SharedArtifacts::Owned(Box::new((prog, closure))));
        }
        let caps = schema
            .user(user)
            .ok_or_else(|| AnalysisError::UnknownUser(user.to_string()))?;
        let prog = group.stats.phases.time("unfold", || {
            NProgram::unfold_with_limit(schema, caps, config.node_limit)
        })?;
        group.stats.program_nodes = prog.len() as u64;
        let closure = if opts.collect_stats {
            let (c, cstats) = group.stats.phases.time("closure", || {
                Closure::compute_with_stats_saturation(
                    &prog,
                    &config.rules,
                    config.term_limit,
                    opts.proofs,
                    config.saturation,
                )
            });
            group.stats.closure = cstats;
            c?
        } else {
            group.stats.phases.time("closure", || {
                Closure::compute_with_saturation(
                    &prog,
                    &config.rules,
                    config.term_limit,
                    opts.proofs,
                    config.saturation,
                )
            })?
        };
        Ok(SharedArtifacts::Owned(Box::new((prog, closure))))
    })();

    let mut verdicts = Vec::with_capacity(req_indexes.len());
    match shared {
        Err(e) => {
            for &i in req_indexes {
                verdicts.push((i, Err(e.clone())));
            }
        }
        Ok(shared) => {
            let prog = shared.prog();
            let closure = shared.closure();
            let mut check_total = Duration::ZERO;
            for &i in req_indexes {
                let req = &reqs[i];
                let start = Instant::now();
                let occs = memo.get(prog, &req.target);
                group.check_occurrences.push(occs.len() as u64);
                group.stats.occurrences_checked += occs.len() as u64;
                let v = check_with_occurrences(prog, closure, req, &occs);
                let elapsed = start.elapsed();
                check_total += elapsed;
                group.check_times.push(elapsed);
                verdicts.push((i, Ok(v)));
            }
            group.stats.phases.add("check", check_total);
            if opts.keep_artifacts {
                group.artifacts = shared.into_owned();
            }
        }
    }
    (group, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_requirement, parse_schema};

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }

        fn calcSalary(budget: int, profit: int): int {
          budget / 10 + profit / 2
        }

        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }

        fn updateSalary(broker: Broker): null {
          w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
        }

        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
        user payroll { updateSalary, w_budget }
        user safe_payroll { updateSalary }
        user reader { r_salary }
    "#;

    fn schema() -> Schema {
        let s = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&s).unwrap();
        s
    }

    #[test]
    fn clerk_salary_inference_flaw_detected() {
        // §4.2: (clerk, r_salary(x):ti) is NOT satisfied.
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated(), "Figure 1 flaw must be detected");
    }

    #[test]
    fn safe_clerk_is_satisfied() {
        let s = schema();
        let r = parse_requirement("(safe_clerk, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated(), "checkBudget alone leaks nothing total");
    }

    #[test]
    fn payroll_alterability_flaw_detected() {
        // §3.1's second example: with w_budget the payroll user controls
        // the new salary — (payroll, w_salary(x, v:ta)) is violated.
        let s = schema();
        let r = parse_requirement("(payroll, w_salary(x, v: ta))").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated());
    }

    #[test]
    fn safe_payroll_keeps_salary_uncontrolled() {
        let s = schema();
        let r = parse_requirement("(safe_payroll, w_salary(x, v: ta))").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated());
    }

    #[test]
    fn direct_grant_is_flagged_via_outer_occurrence() {
        // A user holding r_salary outright trivially violates ti-on-return.
        let s = schema();
        let r = parse_requirement("(reader, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated());
    }

    #[test]
    fn unknown_user_is_an_error() {
        let s = schema();
        let r = parse_requirement("(ghost, r_salary(x) : ti)").unwrap();
        assert!(matches!(
            analyze(&s, &r),
            Err(AnalysisError::UnknownUser(_))
        ));
    }

    #[test]
    fn unreachable_target_is_satisfied() {
        // safe_payroll never touches `name`.
        let s = schema();
        let r = parse_requirement("(safe_payroll, r_name(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated());
    }

    #[test]
    fn monotonicity_in_capabilities() {
        // Granting more functions can only add violations (P8).
        let s = schema();
        let weak = parse_requirement("(safe_clerk, r_salary(x) : pi)").unwrap();
        let strong = parse_requirement("(clerk, r_salary(x) : pi)").unwrap();
        let vw = analyze(&s, &weak).unwrap();
        let vs = analyze(&s, &strong).unwrap();
        if vw.is_violated() {
            assert!(vs.is_violated());
        }
    }

    #[test]
    fn analyze_with_stats_reports_phases_and_counters() {
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let (v, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        assert!(v.unwrap().is_violated(), "same verdict as analyze()");
        for phase in ["unfold", "closure", "check"] {
            assert!(stats.phases.get(phase).is_some(), "missing phase {phase}");
        }
        assert!(stats.program_nodes > 0);
        assert!(stats.occurrences_checked > 0);
        assert!(stats.closure.total_terms() > 0);
        assert!(!stats.closure.aborted);
    }

    #[test]
    fn analyze_with_stats_round_trips_through_json() {
        use secflow_obs::{Json, MetricsReport, Recorder};
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let (_, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        let mut rec = Recorder::new();
        stats.record_to(&mut rec);
        let report = rec.into_report();
        let text = report.to_json().pretty();
        let back = MetricsReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        for name in [
            "closure.terms.total",
            "closure.rounds",
            "analysis.program_nodes",
            "analysis.occurrences",
        ] {
            assert_eq!(back.counter(name), report.counter(name), "{name}");
            assert!(report.counter(name).unwrap() > 0, "{name} is zero");
        }
        assert!(back.span("closure").is_some());
    }

    #[test]
    fn analyze_with_stats_reports_partial_runs() {
        // Unknown user: no phases ran, stats stay default but come back.
        let s = schema();
        let r = parse_requirement("(ghost, r_salary(x) : ti)").unwrap();
        let (v, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        assert!(matches!(v, Err(AnalysisError::UnknownUser(_))));
        assert!(stats.phases.is_empty());
        // Closure budget abort: unfold + closure phases ran, check did not.
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let config = AnalysisConfig {
            term_limit: 5,
            ..AnalysisConfig::default()
        };
        let (v, stats) = analyze_with_stats(&s, &r, &config);
        assert!(matches!(v, Err(AnalysisError::Closure(_))));
        assert!(stats.closure.aborted);
        assert!(stats.phases.get("closure").is_some());
        assert!(stats.phases.get("check").is_none());
    }

    #[test]
    fn occurrences_enumerated() {
        let s = schema();
        let caps = s.user_str("payroll").unwrap();
        let prog = NProgram::unfold(&s, caps).unwrap();
        // w_salary appears once (inside updateSalary); r_budget twice is a
        // read, not the target.
        let occ = occurrences(&prog, &FnRef::write("salary"));
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].args.len(), 2);
        // calcSalary appears as one inner let(f).
        let occ = occurrences(&prog, &FnRef::access("calcSalary"));
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].args.len(), 2);
        // updateSalary is an outer grant.
        let occ = occurrences(&prog, &FnRef::access("updateSalary"));
        assert_eq!(occ.len(), 1);
        assert!(matches!(occ[0].kind, OccurrenceKind::OuterAccess { .. }));
    }

    fn batch_reqs() -> Vec<Requirement> {
        [
            "(clerk, r_salary(x) : ti)",
            "(safe_clerk, r_salary(x) : ti)",
            "(payroll, w_salary(x, v: ta))",
            "(clerk, r_salary(x) : pi)",
            "(safe_payroll, w_salary(x, v: ta))",
        ]
        .iter()
        .map(|s| parse_requirement(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_per_requirement_analyze() {
        let s = schema();
        let reqs = batch_reqs();
        let expected: Vec<_> = reqs.iter().map(|r| analyze(&s, r)).collect();
        for jobs in [1, 4] {
            let opts = BatchOptions {
                jobs,
                ..BatchOptions::default()
            };
            let out = analyze_batch(&s, &reqs, &AnalysisConfig::default(), &opts);
            assert_eq!(out.verdicts, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn batch_groups_by_user_in_first_seen_order() {
        let s = schema();
        let reqs = batch_reqs();
        let out = analyze_batch(
            &s,
            &reqs,
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        let users: Vec<&str> = out.groups.iter().map(|g| g.user.as_str()).collect();
        assert_eq!(users, ["clerk", "safe_clerk", "payroll", "safe_payroll"]);
        // clerk's two requirements share one group.
        assert_eq!(out.groups[0].req_indexes, [0, 3]);
        assert_eq!(out.jobs_used, 1);
    }

    #[test]
    fn batch_reports_group_errors_per_requirement() {
        let s = schema();
        let reqs: Vec<_> = [
            "(ghost, r_salary(x) : ti)",
            "(clerk, r_salary(x) : ti)",
            "(ghost, r_budget(x) : ti)",
        ]
        .iter()
        .map(|r| parse_requirement(r).unwrap())
        .collect();
        let out = analyze_batch(
            &s,
            &reqs,
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        assert!(matches!(
            out.verdicts[0],
            Err(AnalysisError::UnknownUser(_))
        ));
        assert!(out.verdicts[1].as_ref().unwrap().is_violated());
        assert!(matches!(
            out.verdicts[2],
            Err(AnalysisError::UnknownUser(_))
        ));
    }

    #[test]
    fn batch_keeps_artifacts_and_stats_when_asked() {
        let s = schema();
        let reqs = batch_reqs();
        let opts = BatchOptions {
            jobs: 2,
            schedule: BatchSchedule::WorkStealing,
            proofs: ProofMode::Full,
            keep_artifacts: true,
            collect_stats: true,
            full_saturation: false,
        };
        let out = analyze_batch(&s, &reqs, &AnalysisConfig::default(), &opts);
        assert_eq!(out.jobs_used, 2);
        for g in &out.groups {
            let (prog, closure) = g.artifacts.as_ref().expect("artifacts kept");
            assert!(!prog.is_empty());
            assert_eq!(closure.proof_mode(), ProofMode::Full);
            assert!(g.stats.phases.get("unfold").is_some());
            assert!(g.stats.phases.get("closure").is_some());
            assert!(g.stats.phases.get("check").is_some());
            assert!(g.stats.closure.total_terms() as usize == closure.len());
            assert_eq!(g.check_times.len(), g.req_indexes.len());
            assert_eq!(g.check_occurrences.len(), g.req_indexes.len());
        }
        // Proof-carrying artifacts can render derivations (the --explain
        // path reuses them instead of recomputing).
        let (_, clerk_closure) = out.groups[0].artifacts.as_ref().unwrap();
        let witness = clerk_closure.ti_witness(5).expect("Figure 1 ti");
        assert!(clerk_closure.proof(&witness).is_some());
    }

    #[test]
    fn analyze_matches_full_saturation_on_the_fixture() {
        let s = schema();
        for req in [
            "(clerk, r_salary(x) : ti)",
            "(safe_clerk, r_salary(x) : ti)",
            "(payroll, w_salary(x, v: ta))",
            "(safe_payroll, w_salary(x, v: ta))",
            "(reader, r_salary(x) : ti)",
            "(safe_payroll, r_name(x) : ti)",
        ] {
            let r = parse_requirement(req).unwrap();
            let demand = analyze(&s, &r).unwrap();
            let full = analyze_full(&s, &r, &AnalysisConfig::default()).unwrap();
            assert_eq!(demand, full, "{req}");
        }
    }

    #[test]
    fn batch_full_saturation_matches_demand_default() {
        let s = schema();
        let reqs = batch_reqs();
        let demand = analyze_batch(
            &s,
            &reqs,
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        let full = analyze_batch(
            &s,
            &reqs,
            &AnalysisConfig::default(),
            &BatchOptions {
                full_saturation: true,
                ..BatchOptions::default()
            },
        );
        assert_eq!(demand.verdicts, full.verdicts);
        assert_eq!(
            demand.cache_occupancy, None,
            "uncached batches report no occupancy"
        );
    }

    #[test]
    fn cache_serves_repeat_batches_without_recomputing() {
        let s = schema();
        let reqs = batch_reqs();
        let cache = ClosureCache::new(8);
        let config = AnalysisConfig::default();
        let opts = BatchOptions::default();
        let first = analyze_batch_cached(&s, &reqs, &config, &opts, Some(&cache));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 4), "four users, all cold");
        assert_eq!(stats.union_recomputes, 0, "cold misses are not recomputes");
        assert_eq!(cache.len(), 4);
        assert_eq!(
            first.cache_occupancy,
            Some((4, 8)),
            "occupancy reported after a cached batch"
        );
        let second = analyze_batch_cached(&s, &reqs, &config, &opts, Some(&cache));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (4, 4),
            "identical batch fully served"
        );
        assert_eq!(first.verdicts, second.verdicts);
        let expected: Vec<_> = reqs.iter().map(|r| analyze(&s, r)).collect();
        assert_eq!(second.verdicts, expected);
    }

    #[test]
    fn cache_unions_goals_for_new_requirements() {
        let s = schema();
        let config = AnalysisConfig::default();
        let opts = BatchOptions::default();
        let cache = ClosureCache::new(8);
        let first = [parse_requirement("(clerk, r_salary(x) : ti)").unwrap()];
        analyze_batch_cached(&s, &first, &config, &opts, Some(&cache));
        // A different goal on the same user: recompute against the cached
        // unfolding with the union of goal sets, then serve both shapes.
        let second = [parse_requirement("(clerk, r_budget(x) : ta)").unwrap()];
        let out = analyze_batch_cached(&s, &second, &config, &opts, Some(&cache));
        assert_eq!(
            out.verdicts[0],
            analyze(&s, &second[0]),
            "union recompute keeps verdicts identical"
        );
        assert_eq!(cache.len(), 1, "same key, refreshed entry");
        assert_eq!(
            cache.stats().union_recomputes,
            1,
            "second goal shape recomputed against the cached entry"
        );
        let both: Vec<_> = ["(clerk, r_salary(x) : ti)", "(clerk, r_budget(x) : ta)"]
            .iter()
            .map(|r| parse_requirement(r).unwrap())
            .collect();
        let before = cache.stats();
        let out = analyze_batch_cached(&s, &both, &config, &opts, Some(&cache));
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 1, "union entry hits");
        assert_eq!(after.misses, before.misses, "no further misses");
        assert_eq!(after.union_recomputes, before.union_recomputes);
        let expected: Vec<_> = both.iter().map(|r| analyze(&s, r)).collect();
        assert_eq!(out.verdicts, expected);
    }

    #[test]
    fn cache_shares_entries_between_identically_granted_users() {
        // The key fingerprints the capability list, not the user name:
        // payroll and a clone user with the same grants share one entry.
        let text = format!("{STOCKBROKER}\n user payroll_twin {{ updateSalary, w_budget }}");
        let s = parse_schema(&text).unwrap();
        oodb_lang::check_schema(&s).unwrap();
        let config = AnalysisConfig::default();
        let opts = BatchOptions::default();
        let cache = ClosureCache::new(8);
        let a = [parse_requirement("(payroll, w_salary(x, v: ta))").unwrap()];
        analyze_batch_cached(&s, &a, &config, &opts, Some(&cache));
        let b = [parse_requirement("(payroll_twin, w_salary(x, v: ta))").unwrap()];
        let out = analyze_batch_cached(&s, &b, &config, &opts, Some(&cache));
        assert_eq!(cache.stats().hits, 1, "twin user hits payroll's entry");
        assert_eq!(out.verdicts[0], analyze(&s, &b[0]));
    }

    #[test]
    fn cache_evicts_least_recently_used_past_capacity() {
        let s = schema();
        let config = AnalysisConfig::default();
        let opts = BatchOptions::default();
        let cache = ClosureCache::new(2);
        assert_eq!(cache.shard_count(), 1, "small caches keep exact LRU order");
        for user in ["clerk", "safe_clerk"] {
            let r = [parse_requirement(&format!("({user}, r_salary(x) : ti)")).unwrap()];
            analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        }
        // Touch clerk so safe_clerk becomes least-recently-used; a FIFO
        // cache would evict clerk (the oldest insert) regardless.
        let r = [parse_requirement("(clerk, r_salary(x) : ti)").unwrap()];
        analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        let r = [parse_requirement("(payroll, r_salary(x) : ti)").unwrap()];
        analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let before = cache.stats().hits;
        let r = [parse_requirement("(clerk, r_salary(x) : ti)").unwrap()];
        analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        assert_eq!(cache.stats().hits, before + 1, "touched entry survived");
        let r = [parse_requirement("(safe_clerk, r_salary(x) : ti)").unwrap()];
        analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        assert_eq!(cache.stats().hits, before + 1, "LRU entry was evicted");
    }

    #[test]
    fn cache_striping_is_bounded_per_shard() {
        let cache = ClosureCache::default();
        assert_eq!(cache.capacity(), 64);
        assert_eq!(cache.shard_count(), 8);
        let cache = ClosureCache::with_shards(8, 4);
        assert_eq!(cache.capacity(), 8);
        assert_eq!(cache.shard_count(), 4);
        let s = schema();
        let config = AnalysisConfig::default();
        let opts = BatchOptions::default();
        for user in ["clerk", "safe_clerk", "payroll", "safe_payroll", "reader"] {
            let r = [parse_requirement(&format!("({user}, r_salary(x) : ti)")).unwrap()];
            analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        }
        // Five distinct capability lists over 4 shards of 2: every shard
        // stays within its bound; at most one pigeonholed eviction.
        assert!(cache.max_shard_len() <= 2);
        assert!(cache.len() >= 4, "len {} after 5 inserts", cache.len());
        // Entries are findable after striping: a repeat batch hits.
        let before = cache.stats().hits;
        let r = [parse_requirement("(reader, r_salary(x) : ti)").unwrap()];
        analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        assert_eq!(cache.stats().hits, before + 1);
    }

    #[test]
    fn shard_striping_spreads_keys_differing_only_in_config() {
        // Regression: shard selection once striped on `caps_fp` alone, so
        // every key a resident process accumulates for one capability list
        // under different budgets (or one policy under several configs)
        // pigeonholed onto a single shard — one mutex carried every lookup
        // and that shard's LRU share bounded the whole cache.
        let cache = ClosureCache::with_shards(16, 4);
        let s = schema();
        let opts = BatchOptions::default();
        let r = [parse_requirement("(clerk, r_salary(x) : ti)").unwrap()];
        let limits = [1_000, 1_001, 1_002, 1_003, 1_004, 1_005, 1_006, 1_007];
        for limit in limits {
            let config = AnalysisConfig {
                term_limit: limit,
                ..AnalysisConfig::default()
            };
            analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        }
        // Eight distinct keys over 4 shards of 4: under caps-only striping
        // they all hit one shard, which evicts down to 4 entries; mixed
        // striping keeps all 8 and no shard holds them all.
        assert_eq!(cache.len(), limits.len(), "no pigeonhole evictions");
        assert!(
            cache.max_shard_len() < limits.len(),
            "keys differing only in config landed on one shard \
             (max_shard_len {})",
            cache.max_shard_len()
        );
        // Entries stay findable after the striping change: repeats hit.
        let before = cache.stats().hits;
        let config = AnalysisConfig {
            term_limit: limits[0],
            ..AnalysisConfig::default()
        };
        analyze_batch_cached(&s, &r, &config, &opts, Some(&cache));
        assert_eq!(cache.stats().hits, before + 1);
    }

    #[test]
    fn saturation_mode_toggle_keeps_cache_identity() {
        // Regression: `config_fp` once hashed the whole `Debug` rendering
        // of `AnalysisConfig`, so any semantically neutral knob — every
        // [`SaturationMode`] computes an identical closure — changed cache
        // identity and spuriously invalidated entries.
        let cache = ClosureCache::new(8);
        let s = schema();
        let opts = BatchOptions::default();
        let r = [parse_requirement("(clerk, r_salary(x) : ti)").unwrap()];
        let scalar = AnalysisConfig {
            saturation: SaturationMode::SemiNaive,
            ..AnalysisConfig::default()
        };
        let first = analyze_batch_cached(&s, &r, &scalar, &opts, Some(&cache));
        assert_eq!(cache.stats().misses, 1, "cold miss saturates once");
        let chunked = AnalysisConfig {
            saturation: SaturationMode::Chunked,
            ..AnalysisConfig::default()
        };
        let second = analyze_batch_cached(&s, &r, &chunked, &opts, Some(&cache));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 1),
            "a saturation-mode toggle must hit the cached closure"
        );
        assert_eq!(first.verdicts, second.verdicts);
        // A field that can change closure contents still misses.
        let tighter = AnalysisConfig {
            term_limit: DEFAULT_TERM_LIMIT - 1,
            ..AnalysisConfig::default()
        };
        analyze_batch_cached(&s, &r, &tighter, &opts, Some(&cache));
        assert_eq!(cache.stats().misses, 2, "budget changes are semantic");
    }

    #[test]
    fn jobs_zero_auto_detects_parallelism() {
        let s = schema();
        let reqs = batch_reqs();
        let expected: Vec<_> = reqs.iter().map(|r| analyze(&s, r)).collect();
        let out = analyze_batch(
            &s,
            &reqs,
            &AnalysisConfig::default(),
            &BatchOptions {
                jobs: 0,
                ..BatchOptions::default()
            },
        );
        assert_eq!(out.verdicts, expected);
        assert!(effective_jobs(0) >= 1);
        assert_eq!(out.jobs_used, effective_jobs(0).min(out.groups.len()));
    }

    #[test]
    fn fixed_and_stealing_schedules_agree() {
        let s = schema();
        let reqs = batch_reqs();
        let expected: Vec<_> = reqs.iter().map(|r| analyze(&s, r)).collect();
        for schedule in [BatchSchedule::Fixed, BatchSchedule::WorkStealing] {
            for jobs in [2, 3, 8] {
                let out = analyze_batch(
                    &s,
                    &reqs,
                    &AnalysisConfig::default(),
                    &BatchOptions {
                        jobs,
                        schedule,
                        ..BatchOptions::default()
                    },
                );
                assert_eq!(out.verdicts, expected, "jobs={jobs} schedule={schedule:?}");
                if schedule == BatchSchedule::Fixed {
                    assert_eq!(out.steals, 0, "fixed partitioning never steals");
                }
            }
        }
    }

    #[test]
    fn streaming_matches_buffered_and_covers_every_group() {
        let s = schema();
        let reqs = batch_reqs();
        let config = AnalysisConfig::default();
        for jobs in [1, 4] {
            let opts = BatchOptions {
                jobs,
                ..BatchOptions::default()
            };
            let buffered = analyze_batch(&s, &reqs, &config, &opts);
            let sink: Mutex<Vec<GroupRecord>> = Mutex::new(Vec::new());
            let summary = analyze_batch_streaming(&s, &reqs, &config, &opts, None, &sink);
            let mut records = sink.into_inner().unwrap();
            records.sort_by_key(|r| r.group_index);
            assert_eq!(summary.groups, buffered.groups.len());
            assert_eq!(summary.requirements, reqs.len());
            let users: Vec<_> = records.iter().map(|r| r.user.clone()).collect();
            let expected_users: Vec<_> = buffered.groups.iter().map(|g| g.user.clone()).collect();
            assert_eq!(users, expected_users, "records reassemble to group order");
            let mut verdicts: Vec<Option<Result<Verdict, AnalysisError>>> =
                reqs.iter().map(|_| None).collect();
            for r in records {
                for (i, v) in r.verdicts {
                    verdicts[i] = Some(v);
                }
            }
            let verdicts: Vec<_> = verdicts
                .into_iter()
                .map(|v| v.expect("every requirement streamed exactly once"))
                .collect();
            assert_eq!(verdicts, buffered.verdicts, "jobs={jobs}");
        }
    }

    #[test]
    fn streaming_folds_stats_per_worker() {
        let s = schema();
        let reqs = batch_reqs();
        let config = AnalysisConfig::default();
        let opts = BatchOptions {
            jobs: 2,
            collect_stats: true,
            ..BatchOptions::default()
        };
        let sink: Mutex<Vec<GroupRecord>> = Mutex::new(Vec::new());
        let summary = analyze_batch_streaming(&s, &reqs, &config, &opts, None, &sink);
        // Aggregate totals equal a serial per-group fold: the per-worker
        // batching changes merge order, which the contract says is
        // invisible on sums, maxima and sticky flags.
        let buffered = analyze_batch(
            &s,
            &reqs,
            &config,
            &BatchOptions {
                jobs: 1,
                collect_stats: true,
                ..BatchOptions::default()
            },
        );
        let mut expect = ClosureStats::default();
        for g in &buffered.groups {
            expect.merge(&g.stats.closure);
        }
        assert_eq!(summary.closure.total_terms(), expect.total_terms());
        assert_eq!(summary.closure.rounds, expect.rounds);
        assert_eq!(summary.closure.derive_calls, expect.derive_calls);
        assert_eq!(summary.closure.worklist_peak, expect.worklist_peak);
        assert_eq!(
            summary.occurrences,
            buffered
                .groups
                .iter()
                .map(|g| g.stats.occurrences_checked)
                .sum::<u64>()
        );
    }

    #[test]
    fn cache_is_bypassed_when_stats_or_proofs_requested() {
        let s = schema();
        let reqs = batch_reqs();
        let config = AnalysisConfig::default();
        let cache = ClosureCache::new(8);
        for opts in [
            BatchOptions {
                collect_stats: true,
                ..BatchOptions::default()
            },
            BatchOptions {
                proofs: ProofMode::Full,
                keep_artifacts: true,
                ..BatchOptions::default()
            },
            BatchOptions {
                full_saturation: true,
                ..BatchOptions::default()
            },
        ] {
            let out = analyze_batch_cached(&s, &reqs, &config, &opts, Some(&cache));
            let expected: Vec<_> = reqs.iter().map(|r| analyze(&s, r)).collect();
            assert_eq!(out.verdicts, expected);
        }
        assert!(cache.is_empty(), "ineligible runs never touch the cache");
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn batch_on_empty_input_is_empty() {
        let s = schema();
        let out = analyze_batch(
            &s,
            &[],
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        assert!(out.verdicts.is_empty());
        assert!(out.groups.is_empty());
    }
}
