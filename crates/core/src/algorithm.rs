//! Algorithm `A(R)` (§4.1, Definition 6).
//!
//! > *"Given `R = (u, f(x1:c…,…,xn:c…):c…)`, `A(R)` calculates the closure
//! > set of all inferable terms of `F(F)` where `F` is a set of all
//! > functions in the capability list of `u`. Then, if there exists some
//! > `let(f) x1=e1,…,xn=en in … end ∈ S'(F)` for which all terms
//! > corresponding to capabilities specified in `R` are included in the
//! > closure set, `A(R)` determines that `R` is not satisfied."*
//!
//! Occurrences of the target function are:
//!
//! * every `let(f) …` node produced by unfolding an inner invocation —
//!   argument position `i` maps to the binding expression `e_i`, the
//!   returned value to the `let` node itself;
//! * every `r_att` / `w_att` / `new C` node when the target is a special
//!   function — arguments are the node's children, the returned value the
//!   node itself (the paper: *"`let(f) … end` is replaced by
//!   `f(e1,…,en)`"*);
//! * the *outer-most* entry when the target is itself in the capability
//!   list: the user invokes it directly from a query, so capabilities on
//!   its arguments are achievable axiomatically (the user supplies them:
//!   `ta`/`pa` always, `ti`/`pi` exactly for basic-typed parameters) and
//!   capabilities on the returned value are read off the body root.

use crate::closure::{Closure, ClosureError, ProofMode, DEFAULT_TERM_LIMIT};
use crate::report::{Occurrence, OccurrenceKind, Verdict, Violation};
use crate::rules::RuleConfig;
use crate::stats::ClosureStats;
use crate::term::Term;
use crate::unfold::{ExprId, NKind, NProgram, UnfoldError, DEFAULT_NODE_LIMIT};
use oodb_lang::requirement::{Cap, Requirement};
use oodb_lang::Schema;
use oodb_model::{FnRef, Type, UserName};
use secflow_obs::{MetricsSink, Phases};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables for one analysis run.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Rule groups (ablation).
    pub rules: RuleConfig,
    /// Closure term budget.
    pub term_limit: usize,
    /// Unfolding node budget.
    pub node_limit: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            rules: RuleConfig::default(),
            term_limit: DEFAULT_TERM_LIMIT,
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }
}

/// Analysis failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The requirement references an unknown user.
    UnknownUser(String),
    /// Unfolding failed.
    Unfold(UnfoldError),
    /// The closure exceeded its budget.
    Closure(ClosureError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownUser(u) => write!(f, "unknown user `{u}`"),
            AnalysisError::Unfold(e) => write!(f, "{e}"),
            AnalysisError::Closure(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<UnfoldError> for AnalysisError {
    fn from(e: UnfoldError) -> Self {
        AnalysisError::Unfold(e)
    }
}

impl From<ClosureError> for AnalysisError {
    fn from(e: ClosureError) -> Self {
        AnalysisError::Closure(e)
    }
}

/// Run `A(R)` with default configuration.
///
/// ```
/// use oodb_lang::{check_schema, parse_requirement, parse_schema};
/// use secflow::algorithm::analyze;
///
/// let schema = parse_schema(r#"
///     class Broker { salary: int, budget: int }
///     fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
///     user clerk { checkBudget, w_budget }
/// "#).unwrap();
/// check_schema(&schema).unwrap();
///
/// let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
/// assert!(analyze(&schema, &req).unwrap().is_violated());
/// ```
pub fn analyze(schema: &Schema, req: &Requirement) -> Result<Verdict, AnalysisError> {
    analyze_with_config(schema, req, &AnalysisConfig::default())
}

/// Run `A(R)` with explicit configuration. The schema must already be
/// type-checked (see [`oodb_lang::check_schema`]).
pub fn analyze_with_config(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> Result<Verdict, AnalysisError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
    let prog = NProgram::unfold_with_limit(schema, caps, config.node_limit)?;
    // Membership-only closure: verdicts never read derivations, so the
    // proof map would be pure allocation overhead here.
    let closure =
        Closure::compute_with_mode(&prog, &config.rules, config.term_limit, ProofMode::Off)?;
    Ok(check_against(&prog, &closure, req))
}

/// Everything measured during one [`analyze_with_stats`] run: per-phase
/// wall-clock (unfold → closure → check) plus the closure's own counters.
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Wall-clock per analysis phase, in execution order.
    pub phases: Phases,
    /// Closure counters (defaulted when unfolding failed before closure).
    pub closure: ClosureStats,
    /// Unfolded program size in nodes (0 when unfolding failed).
    pub program_nodes: u64,
    /// Occurrences of the target function that were checked.
    pub occurrences_checked: u64,
}

impl AnalysisStats {
    /// Report phase spans and closure counters into a sink, plus the
    /// `analysis.program_nodes` / `analysis.occurrences` counters.
    pub fn record_to(&self, sink: &mut dyn MetricsSink) {
        self.phases.record_to(sink);
        self.closure.record_to(sink);
        sink.counter("analysis.program_nodes", self.program_nodes);
        sink.counter("analysis.occurrences", self.occurrences_checked);
    }
}

/// Run `A(R)` like [`analyze_with_config`], but also return
/// [`AnalysisStats`]: per-phase timings and the closure's internal
/// counters. Stats describe whatever phases ran, even when the analysis
/// errors out part-way (unknown user, unfolding budget, closure budget).
pub fn analyze_with_stats(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> (Result<Verdict, AnalysisError>, AnalysisStats) {
    let mut stats = AnalysisStats::default();
    let result = (|| {
        let caps = schema
            .user(&req.user)
            .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
        let prog = stats.phases.time("unfold", || {
            NProgram::unfold_with_limit(schema, caps, config.node_limit)
        })?;
        stats.program_nodes = prog.iter().count() as u64;
        let (closure, cstats) = stats.phases.time("closure", || {
            Closure::compute_with_stats_mode(
                &prog,
                &config.rules,
                config.term_limit,
                ProofMode::Off,
            )
        });
        stats.closure = cstats;
        let closure = closure?;
        Ok(stats.phases.time("check", || {
            let occs = occurrences(&prog, &req.target);
            stats.occurrences_checked = occs.len() as u64;
            check_against(&prog, &closure, req)
        }))
    })();
    (result, stats)
}

/// The capability queries `A(R)`'s verdict check needs from a closure.
///
/// Both closure engines implement this — the fast dense engine
/// ([`Closure`]) and the retained slow-path oracle
/// ([`crate::reference::RefClosure`]) — so [`check_against`] produces
/// verdicts from either, which is what lets the differential tests compare
/// end-to-end `analyze` results rather than just term sets.
pub trait CapabilityView {
    /// Is `ta[e]` in the closure?
    fn has_ta(&self, e: ExprId) -> bool;
    /// Is `pa[e]` in the closure?
    fn has_pa(&self, e: ExprId) -> bool;
    /// A `ti` term on `e`, deterministic (first origin derived).
    fn ti_witness(&self, e: ExprId) -> Option<Term>;
    /// A `pi` term on `e`, deterministic.
    fn pi_witness(&self, e: ExprId) -> Option<Term>;
}

impl CapabilityView for Closure {
    fn has_ta(&self, e: ExprId) -> bool {
        Closure::has_ta(self, e)
    }
    fn has_pa(&self, e: ExprId) -> bool {
        Closure::has_pa(self, e)
    }
    fn ti_witness(&self, e: ExprId) -> Option<Term> {
        Closure::ti_witness(self, e)
    }
    fn pi_witness(&self, e: ExprId) -> Option<Term> {
        Closure::pi_witness(self, e)
    }
}

/// Check a requirement against an already-computed closure (used when many
/// requirements share one capability list — the common case in the bench
/// harness and the batch driver).
pub fn check_against<C: CapabilityView>(
    prog: &NProgram,
    closure: &C,
    req: &Requirement,
) -> Verdict {
    let mut violations = Vec::new();
    for occ in occurrences(prog, &req.target) {
        if let Some(witnesses) = occurrence_violates(prog, closure, req, &occ) {
            violations.push(Violation {
                occurrence: occ,
                witnesses,
            });
        }
    }
    if violations.is_empty() {
        Verdict::Satisfied
    } else {
        Verdict::Violated(violations)
    }
}

/// All occurrences of a target function in the unfolded program.
pub fn occurrences(prog: &NProgram, target: &FnRef) -> Vec<Occurrence> {
    let mut out = Vec::new();
    // Outer-most direct grants.
    for (idx, outer) in prog.outers.iter().enumerate() {
        // Outer special functions are plain nodes; the generic node scan
        // below picks them up with their ArgVar children.
        if &outer.fn_ref == target && outer.root != 0 {
            if let FnRef::Access(_) = target {
                out.push(Occurrence {
                    kind: OccurrenceKind::OuterAccess { outer: idx },
                    args: Vec::new(),
                    ret: outer.root,
                });
            }
        }
    }
    // Inner (and outer-special) occurrences: scan nodes.
    for e in prog.iter() {
        match (&e.kind, target) {
            (
                NKind::Let {
                    origin: Some(f),
                    bindings,
                    ..
                },
                FnRef::Access(name),
            ) if f == name => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: bindings.iter().map(|(_, id)| *id).collect(),
                    ret: e.id,
                });
            }
            (NKind::Read(attr, recv), FnRef::Read(a)) if attr == a => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: vec![*recv],
                    ret: e.id,
                });
            }
            (NKind::Write(attr, recv, val), FnRef::Write(a)) if attr == a => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: vec![*recv, *val],
                    ret: e.id,
                });
            }
            (NKind::New(class, args), FnRef::New(c)) if class == c => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: args.iter().map(|(_, id)| *id).collect(),
                    ret: e.id,
                });
            }
            _ => {}
        }
    }
    out
}

/// If the occurrence achieves every capability of the requirement, return
/// the witness terms (in requirement order).
fn occurrence_violates<C: CapabilityView>(
    prog: &NProgram,
    closure: &C,
    req: &Requirement,
    occ: &Occurrence,
) -> Option<Vec<Term>> {
    let mut witnesses = Vec::new();
    match occ.kind {
        OccurrenceKind::OuterAccess { outer } => {
            let o = &prog.outers[outer];
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let ty = o
                    .params
                    .get(i)
                    .map(|(_, t)| t)
                    .cloned()
                    .unwrap_or(Type::Null);
                for cap in caps {
                    // The user supplies the argument directly: alterability
                    // is free; inferability is free exactly for basic types.
                    let achieved = match cap {
                        Cap::Ta | Cap::Pa => true,
                        Cap::Ti | Cap::Pi => ty.is_basic(),
                    };
                    if !achieved {
                        return None;
                    }
                    // No closure witness — mark with the body root's terms
                    // where possible; use a synthetic Ta/Ti on the root to
                    // keep the report non-empty.
                }
            }
            for cap in &req.ret_caps {
                let w = cap_witness(closure, occ.ret, *cap)?;
                witnesses.push(w);
            }
            Some(witnesses)
        }
        OccurrenceKind::Inner { .. } => {
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let arg = *occ.args.get(i)?;
                for cap in caps {
                    let w = cap_witness(closure, arg, *cap)?;
                    witnesses.push(w);
                }
            }
            for cap in &req.ret_caps {
                let w = cap_witness(closure, occ.ret, *cap)?;
                witnesses.push(w);
            }
            Some(witnesses)
        }
    }
}

fn cap_witness<C: CapabilityView>(closure: &C, e: ExprId, cap: Cap) -> Option<Term> {
    match cap {
        Cap::Ta => closure.has_ta(e).then_some(Term::Ta(e)),
        Cap::Pa => closure.has_pa(e).then_some(Term::Pa(e)),
        Cap::Ti => closure.ti_witness(e),
        Cap::Pi => closure.pi_witness(e),
    }
}

/// Options for [`analyze_batch`].
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads for the group fan-out. `0` or `1` runs serially on
    /// the calling thread; larger values are clamped to the group count.
    pub jobs: usize,
    /// Proof mode for the shared closures. [`ProofMode::Full`] is only
    /// needed when something will print derivations from the kept
    /// artifacts (the CLI `--explain` path).
    pub proofs: ProofMode,
    /// Keep each group's `(NProgram, Closure)` on [`BatchGroup::artifacts`]
    /// so callers can render explanations without recomputing.
    pub keep_artifacts: bool,
    /// Collect [`ClosureStats`] and per-phase timings per group.
    pub collect_stats: bool,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            jobs: 1,
            proofs: ProofMode::Off,
            keep_artifacts: false,
            collect_stats: false,
        }
    }
}

/// One unit of shared work in a batch run: all requirements naming the same
/// user (and therefore sharing one unfolding and one closure).
#[derive(Debug)]
pub struct BatchGroup {
    /// The user whose capability list this group analyzed.
    pub user: UserName,
    /// Indexes into the input requirement slice, in input order.
    pub req_indexes: Vec<usize>,
    /// Phase timings and closure counters (zeroed unless
    /// [`BatchOptions::collect_stats`]; `occurrences_checked` sums over the
    /// group's requirements).
    pub stats: AnalysisStats,
    /// Wall-clock of each requirement's check phase, aligned with
    /// `req_indexes`.
    pub check_times: Vec<Duration>,
    /// Occurrences checked per requirement, aligned with `req_indexes`.
    pub check_occurrences: Vec<u64>,
    /// The shared unfolding and closure, when
    /// [`BatchOptions::keep_artifacts`] and the shared phases succeeded.
    pub artifacts: Option<(NProgram, Closure)>,
}

/// The result of [`analyze_batch`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-requirement verdicts, in input order. A failure in a group's
    /// shared phase (unknown user, unfold or closure budget) is reported on
    /// every requirement of that group — exactly what per-requirement
    /// [`analyze`] calls would have returned.
    pub verdicts: Vec<Result<Verdict, AnalysisError>>,
    /// Per-group bookkeeping, in first-seen order of the users.
    pub groups: Vec<BatchGroup>,
    /// Worker threads actually used (after clamping).
    pub jobs_used: usize,
}

/// Analyze a batch of requirements, unfolding and saturating **once per
/// user** instead of once per requirement.
///
/// `A(R)`'s expensive phases — unfolding `S'(F)` and the `F(F)` closure —
/// depend only on the requirement's user (its capability list) and the
/// analysis configuration, which is shared by the whole call. Requirements
/// are therefore grouped by user in first-seen order; each group runs
/// unfold → closure once and then the cheap per-requirement verdict check.
/// Groups fan out across a hand-rolled `std::thread::scope` pool
/// ([`BatchOptions::jobs`] workers pulling group indexes from an atomic
/// counter), so a policy file with many users saturates in parallel.
///
/// Verdicts are identical to per-requirement [`analyze_with_config`] calls,
/// in input order, regardless of `jobs` — groups are independent and each
/// group's work is deterministic.
pub fn analyze_batch(
    schema: &Schema,
    reqs: &[Requirement],
    config: &AnalysisConfig,
    opts: &BatchOptions,
) -> BatchOutcome {
    // Group requirement indexes by user, first-seen order.
    let mut group_of: HashMap<UserName, usize> = HashMap::new();
    let mut grouped: Vec<(UserName, Vec<usize>)> = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        let gi = *group_of.entry(r.user.clone()).or_insert_with(|| {
            grouped.push((r.user.clone(), Vec::new()));
            grouped.len() - 1
        });
        grouped[gi].1.push(i);
    }

    let n_groups = grouped.len();
    let jobs = opts.jobs.max(1).min(n_groups.max(1));
    type GroupOut = (BatchGroup, Vec<(usize, Result<Verdict, AnalysisError>)>);
    let mut outs: Vec<Option<GroupOut>> = Vec::with_capacity(n_groups);

    if jobs <= 1 {
        for (user, idxs) in &grouped {
            outs.push(Some(run_group(schema, reqs, config, opts, user, idxs)));
        }
    } else {
        // Work-stealing by atomic index: each worker pulls the next
        // unclaimed group. Per-slot mutexes keep result writes contention-
        // free and slot order independent of scheduling.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<GroupOut>>> = (0..n_groups).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let gi = next.fetch_add(1, Ordering::Relaxed);
                    if gi >= n_groups {
                        break;
                    }
                    let (user, idxs) = &grouped[gi];
                    let out = run_group(schema, reqs, config, opts, user, idxs);
                    *slots[gi].lock().expect("no panics hold this lock") = Some(out);
                });
            }
        });
        for slot in slots {
            outs.push(slot.into_inner().expect("no panics hold this lock"));
        }
    }

    let mut verdicts: Vec<Option<Result<Verdict, AnalysisError>>> =
        reqs.iter().map(|_| None).collect();
    let mut groups = Vec::with_capacity(n_groups);
    for out in outs {
        let (group, vs) = out.expect("every group index was claimed by a worker");
        for (i, v) in vs {
            verdicts[i] = Some(v);
        }
        groups.push(group);
    }
    BatchOutcome {
        verdicts: verdicts
            .into_iter()
            .map(|v| v.expect("every requirement belongs to exactly one group"))
            .collect(),
        groups,
        jobs_used: jobs,
    }
}

/// Per-requirement verdicts from one group run, tagged with each
/// requirement's index in the caller's input order.
type GroupVerdicts = Vec<(usize, Result<Verdict, AnalysisError>)>;

/// The shared phases plus per-requirement checks for one user group.
fn run_group(
    schema: &Schema,
    reqs: &[Requirement],
    config: &AnalysisConfig,
    opts: &BatchOptions,
    user: &UserName,
    req_indexes: &[usize],
) -> (BatchGroup, GroupVerdicts) {
    let mut group = BatchGroup {
        user: user.clone(),
        req_indexes: req_indexes.to_vec(),
        stats: AnalysisStats::default(),
        check_times: Vec::with_capacity(req_indexes.len()),
        check_occurrences: Vec::with_capacity(req_indexes.len()),
        artifacts: None,
    };
    let shared: Result<(NProgram, Closure), AnalysisError> = (|| {
        let caps = schema
            .user(user)
            .ok_or_else(|| AnalysisError::UnknownUser(user.to_string()))?;
        let prog = group.stats.phases.time("unfold", || {
            NProgram::unfold_with_limit(schema, caps, config.node_limit)
        })?;
        group.stats.program_nodes = prog.len() as u64;
        let closure = if opts.collect_stats {
            let (c, cstats) = group.stats.phases.time("closure", || {
                Closure::compute_with_stats_mode(
                    &prog,
                    &config.rules,
                    config.term_limit,
                    opts.proofs,
                )
            });
            group.stats.closure = cstats;
            c?
        } else {
            group.stats.phases.time("closure", || {
                Closure::compute_with_mode(&prog, &config.rules, config.term_limit, opts.proofs)
            })?
        };
        Ok((prog, closure))
    })();

    let mut verdicts = Vec::with_capacity(req_indexes.len());
    match shared {
        Err(e) => {
            for &i in req_indexes {
                verdicts.push((i, Err(e.clone())));
            }
        }
        Ok((prog, closure)) => {
            let mut check_total = Duration::ZERO;
            for &i in req_indexes {
                let req = &reqs[i];
                let start = Instant::now();
                let occs = occurrences(&prog, &req.target);
                group.check_occurrences.push(occs.len() as u64);
                group.stats.occurrences_checked += occs.len() as u64;
                let v = check_against(&prog, &closure, req);
                let elapsed = start.elapsed();
                check_total += elapsed;
                group.check_times.push(elapsed);
                verdicts.push((i, Ok(v)));
            }
            group.stats.phases.add("check", check_total);
            if opts.keep_artifacts {
                group.artifacts = Some((prog, closure));
            }
        }
    }
    (group, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_requirement, parse_schema};

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }

        fn calcSalary(budget: int, profit: int): int {
          budget / 10 + profit / 2
        }

        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }

        fn updateSalary(broker: Broker): null {
          w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
        }

        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
        user payroll { updateSalary, w_budget }
        user safe_payroll { updateSalary }
        user reader { r_salary }
    "#;

    fn schema() -> Schema {
        let s = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&s).unwrap();
        s
    }

    #[test]
    fn clerk_salary_inference_flaw_detected() {
        // §4.2: (clerk, r_salary(x):ti) is NOT satisfied.
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated(), "Figure 1 flaw must be detected");
    }

    #[test]
    fn safe_clerk_is_satisfied() {
        let s = schema();
        let r = parse_requirement("(safe_clerk, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated(), "checkBudget alone leaks nothing total");
    }

    #[test]
    fn payroll_alterability_flaw_detected() {
        // §3.1's second example: with w_budget the payroll user controls
        // the new salary — (payroll, w_salary(x, v:ta)) is violated.
        let s = schema();
        let r = parse_requirement("(payroll, w_salary(x, v: ta))").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated());
    }

    #[test]
    fn safe_payroll_keeps_salary_uncontrolled() {
        let s = schema();
        let r = parse_requirement("(safe_payroll, w_salary(x, v: ta))").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated());
    }

    #[test]
    fn direct_grant_is_flagged_via_outer_occurrence() {
        // A user holding r_salary outright trivially violates ti-on-return.
        let s = schema();
        let r = parse_requirement("(reader, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated());
    }

    #[test]
    fn unknown_user_is_an_error() {
        let s = schema();
        let r = parse_requirement("(ghost, r_salary(x) : ti)").unwrap();
        assert!(matches!(
            analyze(&s, &r),
            Err(AnalysisError::UnknownUser(_))
        ));
    }

    #[test]
    fn unreachable_target_is_satisfied() {
        // safe_payroll never touches `name`.
        let s = schema();
        let r = parse_requirement("(safe_payroll, r_name(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated());
    }

    #[test]
    fn monotonicity_in_capabilities() {
        // Granting more functions can only add violations (P8).
        let s = schema();
        let weak = parse_requirement("(safe_clerk, r_salary(x) : pi)").unwrap();
        let strong = parse_requirement("(clerk, r_salary(x) : pi)").unwrap();
        let vw = analyze(&s, &weak).unwrap();
        let vs = analyze(&s, &strong).unwrap();
        if vw.is_violated() {
            assert!(vs.is_violated());
        }
    }

    #[test]
    fn analyze_with_stats_reports_phases_and_counters() {
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let (v, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        assert!(v.unwrap().is_violated(), "same verdict as analyze()");
        for phase in ["unfold", "closure", "check"] {
            assert!(stats.phases.get(phase).is_some(), "missing phase {phase}");
        }
        assert!(stats.program_nodes > 0);
        assert!(stats.occurrences_checked > 0);
        assert!(stats.closure.total_terms() > 0);
        assert!(!stats.closure.aborted);
    }

    #[test]
    fn analyze_with_stats_round_trips_through_json() {
        use secflow_obs::{Json, MetricsReport, Recorder};
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let (_, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        let mut rec = Recorder::new();
        stats.record_to(&mut rec);
        let report = rec.into_report();
        let text = report.to_json().pretty();
        let back = MetricsReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        for name in [
            "closure.terms.total",
            "closure.rounds",
            "analysis.program_nodes",
            "analysis.occurrences",
        ] {
            assert_eq!(back.counter(name), report.counter(name), "{name}");
            assert!(report.counter(name).unwrap() > 0, "{name} is zero");
        }
        assert!(back.span("closure").is_some());
    }

    #[test]
    fn analyze_with_stats_reports_partial_runs() {
        // Unknown user: no phases ran, stats stay default but come back.
        let s = schema();
        let r = parse_requirement("(ghost, r_salary(x) : ti)").unwrap();
        let (v, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        assert!(matches!(v, Err(AnalysisError::UnknownUser(_))));
        assert!(stats.phases.is_empty());
        // Closure budget abort: unfold + closure phases ran, check did not.
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let config = AnalysisConfig {
            term_limit: 5,
            ..AnalysisConfig::default()
        };
        let (v, stats) = analyze_with_stats(&s, &r, &config);
        assert!(matches!(v, Err(AnalysisError::Closure(_))));
        assert!(stats.closure.aborted);
        assert!(stats.phases.get("closure").is_some());
        assert!(stats.phases.get("check").is_none());
    }

    #[test]
    fn occurrences_enumerated() {
        let s = schema();
        let caps = s.user_str("payroll").unwrap();
        let prog = NProgram::unfold(&s, caps).unwrap();
        // w_salary appears once (inside updateSalary); r_budget twice is a
        // read, not the target.
        let occ = occurrences(&prog, &FnRef::write("salary"));
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].args.len(), 2);
        // calcSalary appears as one inner let(f).
        let occ = occurrences(&prog, &FnRef::access("calcSalary"));
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].args.len(), 2);
        // updateSalary is an outer grant.
        let occ = occurrences(&prog, &FnRef::access("updateSalary"));
        assert_eq!(occ.len(), 1);
        assert!(matches!(occ[0].kind, OccurrenceKind::OuterAccess { .. }));
    }

    fn batch_reqs() -> Vec<Requirement> {
        [
            "(clerk, r_salary(x) : ti)",
            "(safe_clerk, r_salary(x) : ti)",
            "(payroll, w_salary(x, v: ta))",
            "(clerk, r_salary(x) : pi)",
            "(safe_payroll, w_salary(x, v: ta))",
        ]
        .iter()
        .map(|s| parse_requirement(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_per_requirement_analyze() {
        let s = schema();
        let reqs = batch_reqs();
        let expected: Vec<_> = reqs.iter().map(|r| analyze(&s, r)).collect();
        for jobs in [1, 4] {
            let opts = BatchOptions {
                jobs,
                ..BatchOptions::default()
            };
            let out = analyze_batch(&s, &reqs, &AnalysisConfig::default(), &opts);
            assert_eq!(out.verdicts, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn batch_groups_by_user_in_first_seen_order() {
        let s = schema();
        let reqs = batch_reqs();
        let out = analyze_batch(
            &s,
            &reqs,
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        let users: Vec<&str> = out.groups.iter().map(|g| g.user.as_str()).collect();
        assert_eq!(users, ["clerk", "safe_clerk", "payroll", "safe_payroll"]);
        // clerk's two requirements share one group.
        assert_eq!(out.groups[0].req_indexes, [0, 3]);
        assert_eq!(out.jobs_used, 1);
    }

    #[test]
    fn batch_reports_group_errors_per_requirement() {
        let s = schema();
        let reqs: Vec<_> = [
            "(ghost, r_salary(x) : ti)",
            "(clerk, r_salary(x) : ti)",
            "(ghost, r_budget(x) : ti)",
        ]
        .iter()
        .map(|r| parse_requirement(r).unwrap())
        .collect();
        let out = analyze_batch(
            &s,
            &reqs,
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        assert!(matches!(
            out.verdicts[0],
            Err(AnalysisError::UnknownUser(_))
        ));
        assert!(out.verdicts[1].as_ref().unwrap().is_violated());
        assert!(matches!(
            out.verdicts[2],
            Err(AnalysisError::UnknownUser(_))
        ));
    }

    #[test]
    fn batch_keeps_artifacts_and_stats_when_asked() {
        let s = schema();
        let reqs = batch_reqs();
        let opts = BatchOptions {
            jobs: 2,
            proofs: ProofMode::Full,
            keep_artifacts: true,
            collect_stats: true,
        };
        let out = analyze_batch(&s, &reqs, &AnalysisConfig::default(), &opts);
        assert_eq!(out.jobs_used, 2);
        for g in &out.groups {
            let (prog, closure) = g.artifacts.as_ref().expect("artifacts kept");
            assert!(!prog.is_empty());
            assert_eq!(closure.proof_mode(), ProofMode::Full);
            assert!(g.stats.phases.get("unfold").is_some());
            assert!(g.stats.phases.get("closure").is_some());
            assert!(g.stats.phases.get("check").is_some());
            assert!(g.stats.closure.total_terms() as usize == closure.len());
            assert_eq!(g.check_times.len(), g.req_indexes.len());
            assert_eq!(g.check_occurrences.len(), g.req_indexes.len());
        }
        // Proof-carrying artifacts can render derivations (the --explain
        // path reuses them instead of recomputing).
        let (_, clerk_closure) = out.groups[0].artifacts.as_ref().unwrap();
        let witness = clerk_closure.ti_witness(5).expect("Figure 1 ti");
        assert!(clerk_closure.proof(&witness).is_some());
    }

    #[test]
    fn batch_on_empty_input_is_empty() {
        let s = schema();
        let out = analyze_batch(
            &s,
            &[],
            &AnalysisConfig::default(),
            &BatchOptions::default(),
        );
        assert!(out.verdicts.is_empty());
        assert!(out.groups.is_empty());
    }
}
