//! Algorithm `A(R)` (§4.1, Definition 6).
//!
//! > *"Given `R = (u, f(x1:c…,…,xn:c…):c…)`, `A(R)` calculates the closure
//! > set of all inferable terms of `F(F)` where `F` is a set of all
//! > functions in the capability list of `u`. Then, if there exists some
//! > `let(f) x1=e1,…,xn=en in … end ∈ S'(F)` for which all terms
//! > corresponding to capabilities specified in `R` are included in the
//! > closure set, `A(R)` determines that `R` is not satisfied."*
//!
//! Occurrences of the target function are:
//!
//! * every `let(f) …` node produced by unfolding an inner invocation —
//!   argument position `i` maps to the binding expression `e_i`, the
//!   returned value to the `let` node itself;
//! * every `r_att` / `w_att` / `new C` node when the target is a special
//!   function — arguments are the node's children, the returned value the
//!   node itself (the paper: *"`let(f) … end` is replaced by
//!   `f(e1,…,en)`"*);
//! * the *outer-most* entry when the target is itself in the capability
//!   list: the user invokes it directly from a query, so capabilities on
//!   its arguments are achievable axiomatically (the user supplies them:
//!   `ta`/`pa` always, `ti`/`pi` exactly for basic-typed parameters) and
//!   capabilities on the returned value are read off the body root.

use crate::closure::{Closure, ClosureError, DEFAULT_TERM_LIMIT};
use crate::report::{Occurrence, OccurrenceKind, Verdict, Violation};
use crate::rules::RuleConfig;
use crate::stats::ClosureStats;
use crate::term::Term;
use crate::unfold::{ExprId, NKind, NProgram, UnfoldError, DEFAULT_NODE_LIMIT};
use oodb_lang::requirement::{Cap, Requirement};
use oodb_lang::Schema;
use oodb_model::{FnRef, Type};
use secflow_obs::{MetricsSink, Phases};
use std::fmt;

/// Tunables for one analysis run.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Rule groups (ablation).
    pub rules: RuleConfig,
    /// Closure term budget.
    pub term_limit: usize,
    /// Unfolding node budget.
    pub node_limit: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            rules: RuleConfig::default(),
            term_limit: DEFAULT_TERM_LIMIT,
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }
}

/// Analysis failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The requirement references an unknown user.
    UnknownUser(String),
    /// Unfolding failed.
    Unfold(UnfoldError),
    /// The closure exceeded its budget.
    Closure(ClosureError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownUser(u) => write!(f, "unknown user `{u}`"),
            AnalysisError::Unfold(e) => write!(f, "{e}"),
            AnalysisError::Closure(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<UnfoldError> for AnalysisError {
    fn from(e: UnfoldError) -> Self {
        AnalysisError::Unfold(e)
    }
}

impl From<ClosureError> for AnalysisError {
    fn from(e: ClosureError) -> Self {
        AnalysisError::Closure(e)
    }
}

/// Run `A(R)` with default configuration.
///
/// ```
/// use oodb_lang::{check_schema, parse_requirement, parse_schema};
/// use secflow::algorithm::analyze;
///
/// let schema = parse_schema(r#"
///     class Broker { salary: int, budget: int }
///     fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
///     user clerk { checkBudget, w_budget }
/// "#).unwrap();
/// check_schema(&schema).unwrap();
///
/// let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
/// assert!(analyze(&schema, &req).unwrap().is_violated());
/// ```
pub fn analyze(schema: &Schema, req: &Requirement) -> Result<Verdict, AnalysisError> {
    analyze_with_config(schema, req, &AnalysisConfig::default())
}

/// Run `A(R)` with explicit configuration. The schema must already be
/// type-checked (see [`oodb_lang::check_schema`]).
pub fn analyze_with_config(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> Result<Verdict, AnalysisError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
    let prog = NProgram::unfold_with_limit(schema, caps, config.node_limit)?;
    let closure = Closure::compute_with(&prog, &config.rules, config.term_limit)?;
    Ok(check_against(&prog, &closure, req))
}

/// Everything measured during one [`analyze_with_stats`] run: per-phase
/// wall-clock (unfold → closure → check) plus the closure's own counters.
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Wall-clock per analysis phase, in execution order.
    pub phases: Phases,
    /// Closure counters (defaulted when unfolding failed before closure).
    pub closure: ClosureStats,
    /// Unfolded program size in nodes (0 when unfolding failed).
    pub program_nodes: u64,
    /// Occurrences of the target function that were checked.
    pub occurrences_checked: u64,
}

impl AnalysisStats {
    /// Report phase spans and closure counters into a sink, plus the
    /// `analysis.program_nodes` / `analysis.occurrences` counters.
    pub fn record_to(&self, sink: &mut dyn MetricsSink) {
        self.phases.record_to(sink);
        self.closure.record_to(sink);
        sink.counter("analysis.program_nodes", self.program_nodes);
        sink.counter("analysis.occurrences", self.occurrences_checked);
    }
}

/// Run `A(R)` like [`analyze_with_config`], but also return
/// [`AnalysisStats`]: per-phase timings and the closure's internal
/// counters. Stats describe whatever phases ran, even when the analysis
/// errors out part-way (unknown user, unfolding budget, closure budget).
pub fn analyze_with_stats(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> (Result<Verdict, AnalysisError>, AnalysisStats) {
    let mut stats = AnalysisStats::default();
    let result = (|| {
        let caps = schema
            .user(&req.user)
            .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
        let prog = stats.phases.time("unfold", || {
            NProgram::unfold_with_limit(schema, caps, config.node_limit)
        })?;
        stats.program_nodes = prog.iter().count() as u64;
        let (closure, cstats) = stats.phases.time("closure", || {
            Closure::compute_with_stats(&prog, &config.rules, config.term_limit)
        });
        stats.closure = cstats;
        let closure = closure?;
        Ok(stats.phases.time("check", || {
            let occs = occurrences(&prog, &req.target);
            stats.occurrences_checked = occs.len() as u64;
            check_against(&prog, &closure, req)
        }))
    })();
    (result, stats)
}

/// Check a requirement against an already-computed closure (used when many
/// requirements share one capability list — the common case in the bench
/// harness).
pub fn check_against(prog: &NProgram, closure: &Closure, req: &Requirement) -> Verdict {
    let mut violations = Vec::new();
    for occ in occurrences(prog, &req.target) {
        if let Some(witnesses) = occurrence_violates(prog, closure, req, &occ) {
            violations.push(Violation {
                occurrence: occ,
                witnesses,
            });
        }
    }
    if violations.is_empty() {
        Verdict::Satisfied
    } else {
        Verdict::Violated(violations)
    }
}

/// All occurrences of a target function in the unfolded program.
pub fn occurrences(prog: &NProgram, target: &FnRef) -> Vec<Occurrence> {
    let mut out = Vec::new();
    // Outer-most direct grants.
    for (idx, outer) in prog.outers.iter().enumerate() {
        // Outer special functions are plain nodes; the generic node scan
        // below picks them up with their ArgVar children.
        if &outer.fn_ref == target && outer.root != 0 {
            if let FnRef::Access(_) = target {
                out.push(Occurrence {
                    kind: OccurrenceKind::OuterAccess { outer: idx },
                    args: Vec::new(),
                    ret: outer.root,
                });
            }
        }
    }
    // Inner (and outer-special) occurrences: scan nodes.
    for e in prog.iter() {
        match (&e.kind, target) {
            (
                NKind::Let {
                    origin: Some(f),
                    bindings,
                    ..
                },
                FnRef::Access(name),
            ) if f == name => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: bindings.iter().map(|(_, id)| *id).collect(),
                    ret: e.id,
                });
            }
            (NKind::Read(attr, recv), FnRef::Read(a)) if attr == a => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: vec![*recv],
                    ret: e.id,
                });
            }
            (NKind::Write(attr, recv, val), FnRef::Write(a)) if attr == a => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: vec![*recv, *val],
                    ret: e.id,
                });
            }
            (NKind::New(class, args), FnRef::New(c)) if class == c => {
                out.push(Occurrence {
                    kind: OccurrenceKind::Inner { node: e.id },
                    args: args.iter().map(|(_, id)| *id).collect(),
                    ret: e.id,
                });
            }
            _ => {}
        }
    }
    out
}

/// If the occurrence achieves every capability of the requirement, return
/// the witness terms (in requirement order).
fn occurrence_violates(
    prog: &NProgram,
    closure: &Closure,
    req: &Requirement,
    occ: &Occurrence,
) -> Option<Vec<Term>> {
    let mut witnesses = Vec::new();
    match occ.kind {
        OccurrenceKind::OuterAccess { outer } => {
            let o = &prog.outers[outer];
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let ty = o
                    .params
                    .get(i)
                    .map(|(_, t)| t)
                    .cloned()
                    .unwrap_or(Type::Null);
                for cap in caps {
                    // The user supplies the argument directly: alterability
                    // is free; inferability is free exactly for basic types.
                    let achieved = match cap {
                        Cap::Ta | Cap::Pa => true,
                        Cap::Ti | Cap::Pi => ty.is_basic(),
                    };
                    if !achieved {
                        return None;
                    }
                    // No closure witness — mark with the body root's terms
                    // where possible; use a synthetic Ta/Ti on the root to
                    // keep the report non-empty.
                }
            }
            for cap in &req.ret_caps {
                let w = cap_witness(closure, occ.ret, *cap)?;
                witnesses.push(w);
            }
            Some(witnesses)
        }
        OccurrenceKind::Inner { .. } => {
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let arg = *occ.args.get(i)?;
                for cap in caps {
                    let w = cap_witness(closure, arg, *cap)?;
                    witnesses.push(w);
                }
            }
            for cap in &req.ret_caps {
                let w = cap_witness(closure, occ.ret, *cap)?;
                witnesses.push(w);
            }
            Some(witnesses)
        }
    }
}

fn cap_witness(closure: &Closure, e: ExprId, cap: Cap) -> Option<Term> {
    match cap {
        Cap::Ta => closure.has_ta(e).then_some(Term::Ta(e)),
        Cap::Pa => closure.has_pa(e).then_some(Term::Pa(e)),
        Cap::Ti => closure.ti_witness(e),
        Cap::Pi => closure.pi_witness(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_requirement, parse_schema};

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }

        fn calcSalary(budget: int, profit: int): int {
          budget / 10 + profit / 2
        }

        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }

        fn updateSalary(broker: Broker): null {
          w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
        }

        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
        user payroll { updateSalary, w_budget }
        user safe_payroll { updateSalary }
        user reader { r_salary }
    "#;

    fn schema() -> Schema {
        let s = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&s).unwrap();
        s
    }

    #[test]
    fn clerk_salary_inference_flaw_detected() {
        // §4.2: (clerk, r_salary(x):ti) is NOT satisfied.
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated(), "Figure 1 flaw must be detected");
    }

    #[test]
    fn safe_clerk_is_satisfied() {
        let s = schema();
        let r = parse_requirement("(safe_clerk, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated(), "checkBudget alone leaks nothing total");
    }

    #[test]
    fn payroll_alterability_flaw_detected() {
        // §3.1's second example: with w_budget the payroll user controls
        // the new salary — (payroll, w_salary(x, v:ta)) is violated.
        let s = schema();
        let r = parse_requirement("(payroll, w_salary(x, v: ta))").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated());
    }

    #[test]
    fn safe_payroll_keeps_salary_uncontrolled() {
        let s = schema();
        let r = parse_requirement("(safe_payroll, w_salary(x, v: ta))").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated());
    }

    #[test]
    fn direct_grant_is_flagged_via_outer_occurrence() {
        // A user holding r_salary outright trivially violates ti-on-return.
        let s = schema();
        let r = parse_requirement("(reader, r_salary(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(v.is_violated());
    }

    #[test]
    fn unknown_user_is_an_error() {
        let s = schema();
        let r = parse_requirement("(ghost, r_salary(x) : ti)").unwrap();
        assert!(matches!(
            analyze(&s, &r),
            Err(AnalysisError::UnknownUser(_))
        ));
    }

    #[test]
    fn unreachable_target_is_satisfied() {
        // safe_payroll never touches `name`.
        let s = schema();
        let r = parse_requirement("(safe_payroll, r_name(x) : ti)").unwrap();
        let v = analyze(&s, &r).unwrap();
        assert!(!v.is_violated());
    }

    #[test]
    fn monotonicity_in_capabilities() {
        // Granting more functions can only add violations (P8).
        let s = schema();
        let weak = parse_requirement("(safe_clerk, r_salary(x) : pi)").unwrap();
        let strong = parse_requirement("(clerk, r_salary(x) : pi)").unwrap();
        let vw = analyze(&s, &weak).unwrap();
        let vs = analyze(&s, &strong).unwrap();
        if vw.is_violated() {
            assert!(vs.is_violated());
        }
    }

    #[test]
    fn analyze_with_stats_reports_phases_and_counters() {
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let (v, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        assert!(v.unwrap().is_violated(), "same verdict as analyze()");
        for phase in ["unfold", "closure", "check"] {
            assert!(stats.phases.get(phase).is_some(), "missing phase {phase}");
        }
        assert!(stats.program_nodes > 0);
        assert!(stats.occurrences_checked > 0);
        assert!(stats.closure.total_terms() > 0);
        assert!(!stats.closure.aborted);
    }

    #[test]
    fn analyze_with_stats_round_trips_through_json() {
        use secflow_obs::{Json, MetricsReport, Recorder};
        let s = schema();
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let (_, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        let mut rec = Recorder::new();
        stats.record_to(&mut rec);
        let report = rec.into_report();
        let text = report.to_json().pretty();
        let back = MetricsReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        for name in [
            "closure.terms.total",
            "closure.rounds",
            "analysis.program_nodes",
            "analysis.occurrences",
        ] {
            assert_eq!(back.counter(name), report.counter(name), "{name}");
            assert!(report.counter(name).unwrap() > 0, "{name} is zero");
        }
        assert!(back.span("closure").is_some());
    }

    #[test]
    fn analyze_with_stats_reports_partial_runs() {
        // Unknown user: no phases ran, stats stay default but come back.
        let s = schema();
        let r = parse_requirement("(ghost, r_salary(x) : ti)").unwrap();
        let (v, stats) = analyze_with_stats(&s, &r, &AnalysisConfig::default());
        assert!(matches!(v, Err(AnalysisError::UnknownUser(_))));
        assert!(stats.phases.is_empty());
        // Closure budget abort: unfold + closure phases ran, check did not.
        let r = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let config = AnalysisConfig {
            term_limit: 5,
            ..AnalysisConfig::default()
        };
        let (v, stats) = analyze_with_stats(&s, &r, &config);
        assert!(matches!(v, Err(AnalysisError::Closure(_))));
        assert!(stats.closure.aborted);
        assert!(stats.phases.get("closure").is_some());
        assert!(stats.phases.get("check").is_none());
    }

    #[test]
    fn occurrences_enumerated() {
        let s = schema();
        let caps = s.user_str("payroll").unwrap();
        let prog = NProgram::unfold(&s, caps).unwrap();
        // w_salary appears once (inside updateSalary); r_budget twice is a
        // read, not the target.
        let occ = occurrences(&prog, &FnRef::write("salary"));
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].args.len(), 2);
        // calcSalary appears as one inner let(f).
        let occ = occurrences(&prog, &FnRef::access("calcSalary"));
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].args.len(), 2);
        // updateSalary is an outer grant.
        let occ = occurrences(&prog, &FnRef::access("updateSalary"));
        assert_eq!(occ.len(), 1);
        assert!(matches!(occ[0].kind, OccurrenceKind::OuterAccess { .. }));
    }
}
