//! Closure instrumentation: the observer hook and [`ClosureStats`].
//!
//! The closure engine is generic over a [`ClosureObserver`]; the default
//! [`NoopObserver`] monomorphises every callback to nothing, so the
//! uninstrumented entry points ([`crate::closure::Closure::compute`],
//! [`crate::closure::Closure::compute_with`]) compile to exactly the code
//! they compiled to before this module existed. The stats-collecting entry
//! point pays for what it counts and nothing else.

use crate::term::Term;
use secflow_obs::MetricsSink;

/// Callbacks the closure engine reports into. Every method has an empty
/// default so observers implement only what they care about.
pub trait ClosureObserver {
    /// `derive` was called (before dedup).
    #[inline]
    fn derive_attempt(&mut self) {}

    /// The attempted term was already in the closure.
    #[inline]
    fn dedup_hit(&mut self) {}

    /// A rule produced a conclusion attempt (fires alongside
    /// `derive_attempt`, but labelled). Together with `term_inserted` this
    /// measures per-rule dedup rejection: `fired - derived_new` attempts
    /// under a label were re-derivations.
    #[inline]
    fn rule_fired(&mut self, _rule: &'static str) {}

    /// A new term entered the closure via `rule`.
    #[inline]
    fn term_inserted(&mut self, _t: &Term, _rule: &'static str) {}

    /// One worklist item was taken.
    #[inline]
    fn round(&mut self) {}

    /// The worklist length after a push (for high-water tracking).
    #[inline]
    fn worklist_len(&mut self, _len: usize) {}

    /// End-of-run report: allocated capacity of the interned term set and
    /// whether derivations were recorded
    /// ([`crate::closure::ProofMode::Full`]).
    #[inline]
    fn interner(&mut self, _capacity: usize, _proofs_recorded: bool) {}

    /// A derivation was refused by the demand slice (before `derive_attempt`).
    #[inline]
    fn sliced_out(&mut self) {}

    /// End-of-run report for demand mode: the relevance slice size and
    /// whether the run stopped early with every goal derived.
    #[inline]
    fn demand(&mut self, _slice_nodes: usize, _early_exit: bool) {}
}

/// The observer that observes nothing. This is what the plain `compute`
/// paths use; the optimiser deletes every callback.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl ClosureObserver for NoopObserver {}

/// Counters describing one closure run: terms per capability kind, rule
/// firings per label, fixpoint rounds, worklist high-water mark, dedup hit
/// rate and budget headroom.
///
/// `ClosureStats` is itself the observer — the engine writes straight into
/// it — and is returned even when the run aborts on
/// [`crate::closure::ClosureError::TermLimit`], so a budget post-mortem can
/// see how far the saturation got.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClosureStats {
    /// `ta[e]` terms inserted.
    pub terms_ta: u64,
    /// `pa[e]` terms inserted.
    pub terms_pa: u64,
    /// `ti[e,n,d]` terms inserted.
    pub terms_ti: u64,
    /// `pi[e,n,d]` terms inserted.
    pub terms_pi: u64,
    /// `pi*[(e,e),n,d]` terms inserted.
    pub terms_pistar: u64,
    /// `=[e1,e2]` terms inserted.
    pub terms_eq: u64,
    /// Insertions per rule label, in first-firing order ("derived-new").
    pub firings: Vec<(&'static str, u64)>,
    /// Conclusion attempts per rule label, in first-attempt order
    /// ("fired", deduplicated or not). `fired - derived_new` per label is
    /// the re-derivation volume semi-naive evaluation eliminates; the sum
    /// over labels equals [`ClosureStats::derive_calls`].
    pub rule_attempts: Vec<(&'static str, u64)>,
    /// Worklist items processed (equals [`crate::closure::Closure::rounds`]
    /// when the run completes).
    pub rounds: u64,
    /// Worklist length high-water mark.
    pub worklist_peak: u64,
    /// Total `derive` attempts, including deduplicated ones.
    pub derive_calls: u64,
    /// Attempts that found the term already present.
    pub dedup_hits: u64,
    /// The configured term budget.
    pub limit: u64,
    /// Did the run abort on the term budget?
    pub aborted: bool,
    /// Allocated capacity of the interned term set at end of run. Across a
    /// [`ClosureStats::merge`] this is the **peak** per-run capacity (the
    /// memory high-water mark of any one closure), not a sum.
    pub interner_capacity: u64,
    /// Summed interner capacity across merged runs — the denominator that
    /// keeps [`ClosureStats::interner_occupancy`] a terms-weighted load
    /// factor when one report covers several closures.
    pub interner_capacity_sum: u64,
    /// Were derivations recorded (`ProofMode::Full`)?
    pub proofs_recorded: bool,
    /// Derivations refused by the demand slice (0 under full saturation).
    pub sliced_out: u64,
    /// Relevance slice size in program occurrences (summed across merged
    /// demand runs; 0 under full saturation).
    pub slice_nodes: u64,
    /// Did any merged run stop early with every goal derived?
    pub early_exit: bool,
    /// Proof checks performed per rule label by the certifying checker
    /// ([`crate::checker`]); empty until a [`crate::checker::Certificate`]
    /// is absorbed. Monotone counters: merges sum per label.
    pub checker_checks: Vec<(&'static str, u64)>,
}

impl ClosureStats {
    /// Fresh stats for a run with the given term budget.
    pub fn new(limit: usize) -> ClosureStats {
        ClosureStats {
            limit: limit as u64,
            ..ClosureStats::default()
        }
    }

    /// Total terms inserted across all capability kinds.
    pub fn total_terms(&self) -> u64 {
        self.terms_ta
            + self.terms_pa
            + self.terms_ti
            + self.terms_pi
            + self.terms_pistar
            + self.terms_eq
    }

    /// Fraction of derive attempts that were duplicates (0 when none ran).
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.derive_calls == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.derive_calls as f64
        }
    }

    /// Fraction of the term budget still unused (0 when aborted).
    pub fn budget_headroom(&self) -> f64 {
        if self.limit == 0 {
            0.0
        } else {
            1.0 - (self.total_terms() as f64 / self.limit as f64).min(1.0)
        }
    }

    /// Fraction of the interner's allocated slots actually holding a term
    /// (0 when nothing was allocated). A persistently low occupancy means
    /// the term set over-reserved — a memory regression signal. Uses the
    /// *summed* capacity across merged runs, so the aggregate stays a
    /// terms-weighted load factor instead of comparing a total term count
    /// against a single run's allocation.
    pub fn interner_occupancy(&self) -> f64 {
        if self.interner_capacity_sum == 0 {
            0.0
        } else {
            self.total_terms() as f64 / self.interner_capacity_sum as f64
        }
    }

    /// Insertions under one rule label (0 if it never fired).
    pub fn firings_of(&self, label: &str) -> u64 {
        self.firings
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Conclusion attempts under one rule label (0 if it never fired).
    pub fn rule_attempts_of(&self, label: &str) -> u64 {
        self.rule_attempts
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Proof checks under one rule label (0 if nothing was certified).
    pub fn checker_checks_of(&self, label: &str) -> u64 {
        self.checker_checks
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Fold a certification's per-rule check counts into the stats (sums;
    /// a batch may certify several closures into one report).
    pub fn absorb_certificate(&mut self, cert: &crate::checker::Certificate) {
        for &(label, n) in &cert.rule_checks {
            if let Some((_, m)) = self.checker_checks.iter_mut().find(|(l, _)| *l == label) {
                *m += n;
            } else {
                self.checker_checks.push((label, n));
            }
        }
    }

    /// Fold another run's stats into this one (summing counts and firings;
    /// high-water marks and the budget take the maximum; `aborted` is
    /// sticky). Used when one report covers many closures — e.g. `check`
    /// over several requirements.
    pub fn merge(&mut self, other: &ClosureStats) {
        self.terms_ta += other.terms_ta;
        self.terms_pa += other.terms_pa;
        self.terms_ti += other.terms_ti;
        self.terms_pi += other.terms_pi;
        self.terms_pistar += other.terms_pistar;
        self.terms_eq += other.terms_eq;
        self.rounds += other.rounds;
        self.derive_calls += other.derive_calls;
        self.dedup_hits += other.dedup_hits;
        self.worklist_peak = self.worklist_peak.max(other.worklist_peak);
        self.limit = self.limit.max(other.limit);
        self.aborted |= other.aborted;
        // Peak capacity is a max (the memory high-water mark of any single
        // run); the occupancy denominator is the separate summed field —
        // summing the peak too would make the reported capacity of a batch
        // meaningless as a per-closure figure.
        self.interner_capacity = self.interner_capacity.max(other.interner_capacity);
        self.interner_capacity_sum += other.interner_capacity_sum;
        self.sliced_out += other.sliced_out;
        self.slice_nodes += other.slice_nodes;
        self.early_exit |= other.early_exit;
        self.proofs_recorded |= other.proofs_recorded;
        for &(label, n) in &other.firings {
            if let Some((_, m)) = self.firings.iter_mut().find(|(l, _)| *l == label) {
                *m += n;
            } else {
                self.firings.push((label, n));
            }
        }
        for &(label, n) in &other.rule_attempts {
            if let Some((_, m)) = self.rule_attempts.iter_mut().find(|(l, _)| *l == label) {
                *m += n;
            } else {
                self.rule_attempts.push((label, n));
            }
        }
        for &(label, n) in &other.checker_checks {
            if let Some((_, m)) = self.checker_checks.iter_mut().find(|(l, _)| *l == label) {
                *m += n;
            } else {
                self.checker_checks.push((label, n));
            }
        }
    }

    /// Report everything into a sink under the `closure.` namespace:
    /// per-kind and total term counters, `closure.rule.<label>` firing
    /// counters, round/worklist/dedup counters, and hit-rate/headroom
    /// gauges.
    pub fn record_to(&self, sink: &mut dyn MetricsSink) {
        sink.counter("closure.terms.ta", self.terms_ta);
        sink.counter("closure.terms.pa", self.terms_pa);
        sink.counter("closure.terms.ti", self.terms_ti);
        sink.counter("closure.terms.pi", self.terms_pi);
        sink.counter("closure.terms.pi_star", self.terms_pistar);
        sink.counter("closure.terms.eq", self.terms_eq);
        sink.counter("closure.terms.total", self.total_terms());
        sink.counter("closure.rounds", self.rounds);
        sink.counter("closure.worklist_peak", self.worklist_peak);
        sink.counter("closure.derive_calls", self.derive_calls);
        sink.counter("closure.dedup_hits", self.dedup_hits);
        sink.counter("closure.term_limit", self.limit);
        sink.counter("closure.aborted", u64::from(self.aborted));
        sink.counter("closure.interner_capacity", self.interner_capacity);
        sink.counter("closure.interner_capacity_sum", self.interner_capacity_sum);
        sink.counter("closure.proofs_recorded", u64::from(self.proofs_recorded));
        sink.counter("closure.sliced_out", self.sliced_out);
        sink.counter("closure.slice_nodes", self.slice_nodes);
        sink.counter("closure.early_exit", u64::from(self.early_exit));
        for (label, n) in &self.firings {
            let mut name = String::with_capacity(13 + label.len());
            name.push_str("closure.rule.");
            name.push_str(label);
            sink.counter(&name, *n);
        }
        for (label, n) in &self.rule_attempts {
            let mut name = String::with_capacity(19 + label.len());
            name.push_str("closure.rule_fired.");
            name.push_str(label);
            sink.counter(&name, *n);
        }
        for (label, n) in &self.checker_checks {
            let mut name = String::with_capacity(13 + label.len());
            name.push_str("checker.rule.");
            name.push_str(label);
            sink.counter(&name, *n);
        }
        sink.gauge("closure.dedup_hit_rate", self.dedup_hit_rate());
        sink.gauge("closure.budget_headroom", self.budget_headroom());
        sink.gauge("closure.interner_occupancy", self.interner_occupancy());
    }
}

impl ClosureObserver for ClosureStats {
    fn derive_attempt(&mut self) {
        self.derive_calls += 1;
    }

    fn dedup_hit(&mut self) {
        self.dedup_hits += 1;
    }

    fn rule_fired(&mut self, rule: &'static str) {
        if let Some((_, n)) = self.rule_attempts.iter_mut().find(|(l, _)| *l == rule) {
            *n += 1;
        } else {
            self.rule_attempts.push((rule, 1));
        }
    }

    fn term_inserted(&mut self, t: &Term, rule: &'static str) {
        match t {
            Term::Ta(_) => self.terms_ta += 1,
            Term::Pa(_) => self.terms_pa += 1,
            Term::Ti(..) => self.terms_ti += 1,
            Term::Pi(..) => self.terms_pi += 1,
            Term::PiStar(..) => self.terms_pistar += 1,
            Term::Eq(..) => self.terms_eq += 1,
        }
        if let Some((_, n)) = self.firings.iter_mut().find(|(l, _)| *l == rule) {
            *n += 1;
        } else {
            self.firings.push((rule, 1));
        }
    }

    fn round(&mut self) {
        self.rounds += 1;
    }

    fn worklist_len(&mut self, len: usize) {
        self.worklist_peak = self.worklist_peak.max(len as u64);
    }

    fn interner(&mut self, capacity: usize, proofs_recorded: bool) {
        self.interner_capacity = capacity as u64;
        self.interner_capacity_sum = capacity as u64;
        self.proofs_recorded = proofs_recorded;
    }

    fn sliced_out(&mut self) {
        self.sliced_out += 1;
    }

    fn demand(&mut self, slice_nodes: usize, early_exit: bool) {
        self.slice_nodes = slice_nodes as u64;
        self.early_exit = early_exit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_safe_on_empty_stats() {
        let s = ClosureStats::default();
        assert_eq!(s.dedup_hit_rate(), 0.0);
        assert_eq!(s.budget_headroom(), 0.0);
        assert_eq!(s.interner_occupancy(), 0.0);
        assert_eq!(s.total_terms(), 0);
        assert_eq!(s.firings_of("anything"), 0);
    }

    #[test]
    fn interner_callback_sets_capacity_and_mode() {
        let mut s = ClosureStats::new(100);
        s.term_inserted(&Term::Ta(1), "axiom");
        s.interner(8, true);
        assert_eq!(s.interner_capacity, 8);
        assert!(s.proofs_recorded);
        assert_eq!(s.interner_occupancy(), 1.0 / 8.0);
    }

    #[test]
    fn observer_callbacks_accumulate() {
        let mut s = ClosureStats::new(100);
        s.derive_attempt();
        s.term_inserted(&Term::Ta(1), "axiom");
        s.derive_attempt();
        s.dedup_hit();
        s.round();
        s.worklist_len(3);
        s.worklist_len(1);
        assert_eq!(s.terms_ta, 1);
        assert_eq!(s.firings_of("axiom"), 1);
        assert_eq!(s.dedup_hit_rate(), 0.5);
        assert_eq!(s.worklist_peak, 3);
        assert!(s.budget_headroom() > 0.98);
    }

    #[test]
    fn merge_sums_counts_and_keeps_marks() {
        let mut a = ClosureStats::new(100);
        a.term_inserted(&Term::Ta(1), "axiom");
        a.worklist_len(4);
        let mut b = ClosureStats::new(50);
        b.term_inserted(&Term::Ta(2), "axiom");
        b.term_inserted(&Term::Eq(1, 2), "rule for =");
        b.worklist_len(9);
        b.aborted = true;
        b.interner(16, true);
        a.merge(&b);
        assert_eq!(a.terms_ta, 2);
        assert_eq!(a.terms_eq, 1);
        assert_eq!(a.firings_of("axiom"), 2);
        assert_eq!(a.firings_of("rule for ="), 1);
        assert_eq!(a.worklist_peak, 9);
        assert_eq!(a.limit, 100);
        assert!(a.aborted);
        assert_eq!(a.interner_capacity, 16);
        assert!(a.proofs_recorded);
    }

    #[test]
    fn merge_keeps_peak_capacity_and_sums_for_occupancy() {
        // Two runs of 16-slot interners with one term each: the merged
        // report must show a 16-slot peak (not 32) and an occupancy of
        // 2/32, the terms-weighted load factor.
        let mut a = ClosureStats::new(100);
        a.term_inserted(&Term::Ta(1), "axiom");
        a.interner(16, false);
        let mut b = ClosureStats::new(100);
        b.term_inserted(&Term::Ta(2), "axiom");
        b.interner(16, false);
        a.merge(&b);
        assert_eq!(a.interner_capacity, 16, "peak, not a sum");
        assert_eq!(a.interner_capacity_sum, 32);
        assert_eq!(a.interner_occupancy(), 2.0 / 32.0);
    }

    #[test]
    fn demand_callbacks_accumulate_and_merge() {
        let mut a = ClosureStats::new(100);
        a.sliced_out();
        a.sliced_out();
        a.demand(7, false);
        assert_eq!(a.sliced_out, 2);
        assert_eq!(a.slice_nodes, 7);
        assert!(!a.early_exit);
        let mut b = ClosureStats::new(100);
        b.sliced_out();
        b.demand(5, true);
        a.merge(&b);
        assert_eq!(a.sliced_out, 3);
        assert_eq!(a.slice_nodes, 12);
        assert!(a.early_exit, "early exit is sticky across merges");
    }

    #[test]
    fn record_to_emits_demand_and_capacity_counters() {
        let mut s = ClosureStats::new(100);
        s.term_inserted(&Term::Ta(1), "axiom");
        s.interner(8, false);
        s.sliced_out();
        s.demand(4, true);
        let mut rec = secflow_obs::Recorder::new();
        s.record_to(&mut rec);
        let report = rec.into_report();
        assert_eq!(report.counter("closure.interner_capacity"), Some(8));
        assert_eq!(report.counter("closure.interner_capacity_sum"), Some(8));
        assert_eq!(report.counter("closure.sliced_out"), Some(1));
        assert_eq!(report.counter("closure.slice_nodes"), Some(4));
        assert_eq!(report.counter("closure.early_exit"), Some(1));
    }

    #[test]
    fn merge_contract_is_pinned_field_by_field() {
        // The full sum-vs-max contract over two hand-built values: monotone
        // counters add, high-water marks (worklist depth, peak interner
        // capacity) and the budget take the maximum, marks are sticky, and
        // the per-label tables add label-wise. A new field must be placed
        // into exactly one of these classes and asserted here.
        let mut a = ClosureStats {
            terms_ta: 1,
            terms_pa: 2,
            terms_ti: 3,
            terms_pi: 4,
            terms_pistar: 5,
            terms_eq: 6,
            firings: vec![("axiom", 7), ("implication", 1)],
            rule_attempts: vec![("axiom", 9)],
            rounds: 10,
            worklist_peak: 11,
            derive_calls: 12,
            dedup_hits: 13,
            limit: 100,
            aborted: false,
            interner_capacity: 64,
            interner_capacity_sum: 64,
            proofs_recorded: false,
            sliced_out: 14,
            slice_nodes: 15,
            early_exit: false,
            checker_checks: vec![("axiom", 2)],
        };
        let b = ClosureStats {
            terms_ta: 10,
            terms_pa: 20,
            terms_ti: 30,
            terms_pi: 40,
            terms_pistar: 50,
            terms_eq: 60,
            firings: vec![("axiom", 70), ("rule for =", 2)],
            rule_attempts: vec![("axiom", 90), ("implication", 3)],
            rounds: 100,
            worklist_peak: 5,
            derive_calls: 120,
            dedup_hits: 130,
            limit: 50,
            aborted: true,
            interner_capacity: 32,
            interner_capacity_sum: 32,
            proofs_recorded: true,
            sliced_out: 140,
            slice_nodes: 150,
            early_exit: true,
            checker_checks: vec![("axiom", 3), ("implication", 4)],
        };
        a.merge(&b);
        // Monotone counters: sums.
        assert_eq!(
            (a.terms_ta, a.terms_pa, a.terms_ti, a.terms_pi),
            (11, 22, 33, 44)
        );
        assert_eq!((a.terms_pistar, a.terms_eq), (55, 66));
        assert_eq!(a.rounds, 110);
        assert_eq!(a.derive_calls, 132);
        assert_eq!(a.dedup_hits, 143);
        assert_eq!(a.interner_capacity_sum, 96);
        assert_eq!(a.sliced_out, 154);
        assert_eq!(a.slice_nodes, 165);
        // High-water marks and the budget: maxima.
        assert_eq!(a.worklist_peak, 11, "worklist depth is a high-water mark");
        assert_eq!(a.limit, 100, "budget takes the larger of the two");
        assert_eq!(a.interner_capacity, 64, "peak capacity is a max, not a sum");
        // Sticky marks.
        assert!(a.aborted && a.proofs_recorded && a.early_exit);
        // Per-label tables: label-wise sums, unseen labels appended.
        assert_eq!(a.firings_of("axiom"), 77);
        assert_eq!(a.firings_of("implication"), 1);
        assert_eq!(a.firings_of("rule for ="), 2);
        assert_eq!(a.rule_attempts_of("axiom"), 99);
        assert_eq!(a.rule_attempts_of("implication"), 3);
        assert_eq!(a.checker_checks_of("axiom"), 5);
        assert_eq!(a.checker_checks_of("implication"), 4);
    }

    #[test]
    fn absorbed_certificates_merge_and_record() {
        let schema = oodb_lang::parse_schema(
            r#"
            class C { a: int }
            user u { r_a }
            "#,
        )
        .unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = crate::unfold::NProgram::unfold(&schema, schema.user_str("u").unwrap()).unwrap();
        let c = crate::closure::Closure::compute(&prog).unwrap();
        let cert = c
            .certify(&prog, &crate::rules::RuleConfig::default())
            .unwrap();
        let mut s = ClosureStats::new(100);
        s.absorb_certificate(&cert);
        s.absorb_certificate(&cert);
        let total: u64 = s.checker_checks.iter().map(|(_, n)| n).sum();
        assert_eq!(total as usize, 2 * cert.terms_checked);
        let mut rec = secflow_obs::Recorder::new();
        s.record_to(&mut rec);
        let report = rec.into_report();
        assert!(s.checker_checks_of("axiom") > 0);
        assert_eq!(
            report.counter("checker.rule.axiom"),
            Some(s.checker_checks_of("axiom")),
            "checker namespace is emitted"
        );
    }

    #[test]
    fn record_to_emits_the_namespace() {
        let mut s = ClosureStats::new(1000);
        s.term_inserted(&Term::Eq(1, 2), "axiom for =");
        let mut rec = secflow_obs::Recorder::new();
        s.record_to(&mut rec);
        let report = rec.into_report();
        assert_eq!(report.counter("closure.terms.eq"), Some(1));
        assert_eq!(report.counter("closure.rule.axiom for ="), Some(1));
        assert_eq!(report.counter("closure.term_limit"), Some(1000));
        assert!(report.gauge("closure.budget_headroom").unwrap() > 0.99);
    }
}
