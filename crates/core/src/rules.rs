//! Structural axioms and rules of the inference system `F(F)` (Table 2),
//! plus the rule-group configuration used by the ablation experiments.
//!
//! ## Reconstruction notes
//!
//! The SIGMOD'96 scan of Table 2 is OCR-damaged in places. The
//! implementation below reconstructs the rule set from (a) the readable
//! rows, (b) the prose of §3.2/§4.1, (c) the worked derivation of Figure 1,
//! and (d) the soundness direction (when ambiguous, the stronger —
//! more-pessimistic — reading is used, which preserves Theorem 1). The
//! groups:
//!
//! **1. Alterability**
//! * `→ ta[x]` for every occurrence of an argument variable of an outer-most
//!   function (the user supplies those values directly).
//! * receiver alterability: `ta[e] → pa[r_att(e)]`, `pa[e] → pa[r_att(e)]` —
//!   §3.2: *"The user can alter the result of read operations also by
//!   changing the objects to be accessed."* Steering the receiver across
//!   the extent only reaches attribute values that already exist, so the
//!   conclusion is *partial*; total alterability of a read arises only via
//!   the write-read equality (group 3).
//! * propagation through `let` (variable occurrences, body/whole) is
//!   realised through the equality axioms of group 3 plus group 4's
//!   equality-transfer, which derive exactly the paper's
//!   `ta[e] → ta[z]` / `ta[e] → ta[let … in e end]` conclusions.
//!
//! **2. Inferability**
//! * `→ ti[c, l, +]` for basic-typed constants (own serial number as `num`).
//! * `→ ti[x, l, +]` for basic-typed outer argument variables.
//! * `→ ti[e, 0, −]` for the result the user directly observes: the body of
//!   an outer-most access function, or an outer-most special read — when of
//!   basic type.
//! * `=[e1,e2] → pi*[(e1,e2), 0, +]`.
//! * pi-join: `pi[e,n1,d1], pi[e,n2,d2] → ti[e,n2,d2]` when
//!   `(n1,d1) ≠ (n2,d2)` — two *different ways* of partial inference may
//!   intersect to a singleton.
//! * pi*-join: `pi*[(a,b),n1,d1], pi*[(b,c),n2,d2] → pi*[(a,c),n1,d1]`.
//! * pi* is **only** eliminated through the per-basic-function rules (e.g.
//!   `pi*[(e1,e2)] → ti[>=(e1,e2)]`), never by a generic
//!   pi*-plus-marginal rule: a generic elimination would launder the
//!   `(num,dir)` origin of a term past the feedback guards and make the
//!   analysis derive inferences from a node's own argument back onto its
//!   sibling (observed and rejected during reconstruction).
//! * per-basic-function rules: see [`crate::basics`].
//!
//! **3. Equality**
//! * any two occurrences of argument variables of outer-most functions with
//!   the same type are `=` (covers the paper's "different occurrences of the
//!   same argument variable" *and* "passed values through the same
//!   from-clause variable" — in a query the user may route one value or
//!   object into both positions);
//! * `=[z, e]` for a `let`-bound variable occurrence `z` and its binding
//!   expression `e`;
//! * `=[e, let … in e end]` — a `let` denotes its body;
//! * transitivity (symmetry is structural: terms are normalised);
//! * attribute congruence: `=[e1,e2] → =[r_att(e1), r_att(e2)]` — the
//!   analysis assumes (pessimistically, §3.3) that two operations on the
//!   same attribute of the same object always see the same value;
//! * write-read: `=[e1,e2] → =[e3, r_att(e2)]` when `w_att(e1,e3) ∈ S'(F)` —
//!   the value written is the value read;
//! * constructor-read (extension, same justification as write-read):
//!   `=[n, e2] → =[a_j, r_att_j(e2)]` when `n = new C(a_1,…)` — attribute
//!   `j` of a fresh object is its constructor argument.
//!
//! **4. Implications and transfer**
//! * lattice: `ta[e] → pa[e]`, `ti[e,n,d] → pi[e,n,d]`;
//! * equality transfer (origins preserved):
//!   `=[e1,e2], ti[e1,n,d] → ti[e2,n,d]` and likewise for `pi`, `ta`, `pa`,
//!   `pi*` (on either endpoint).

use crate::term::{Dir, Origin, Term};
use crate::unfold::{NKind, NProgram};

/// Which rule groups are active. All on by default; the ablation bench (E7)
/// switches groups off to show each is load-bearing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleConfig {
    /// Equality-based capability transfer (group 4's `=`-transfer rules).
    pub eq_transfer: bool,
    /// The pi-join rule (two different partial inferences → total).
    pub pi_join: bool,
    /// pi* joint-constraint machinery (axiom from `=`, join, elimination,
    /// and the per-op pi* rules).
    pub pi_star: bool,
    /// Write-read (and constructor-read) equality propagation.
    pub write_read: bool,
    /// The per-basic-function rules of [`crate::basics`].
    pub basic_rules: bool,
    /// The `(n,d)` feedback guards. Disabling them demonstrates the
    /// feedback problem the paper describes: inferences re-derive their own
    /// causes and spurious `ti` terms appear.
    pub feedback_guard: bool,
    /// §3.2's *former case*: object identifiers have a printable form
    /// (`(id:730710)`), so users can read and forge them. Inferability
    /// axioms then also apply to object-typed arguments and observed
    /// object-typed results — "capability on object type expressions can
    /// be treated in the same way as that on basic type expressions". The
    /// paper (and this reproduction's default) assume the latter case:
    /// opaque identifiers.
    pub printable_oids: bool,
}

impl Default for RuleConfig {
    fn default() -> RuleConfig {
        RuleConfig {
            eq_transfer: true,
            pi_join: true,
            pi_star: true,
            write_read: true,
            basic_rules: true,
            feedback_guard: true,
            printable_oids: false,
        }
    }
}

/// A named axiom or derived fact, paired with the Figure-1 style rule label
/// used in proofs.
pub type Fact = (Term, &'static str);

/// Rule labels, matching the paper's Figure 1 annotations where they exist.
pub mod labels {
    /// Alterability axiom on outer argument variables.
    pub const AXIOM_TA: &str = "axiom";
    /// Inferability axiom (constants, outer argument variables, observed
    /// results).
    pub const AXIOM_TI: &str = "axiom";
    /// Equality axioms.
    pub const AXIOM_EQ: &str = "axiom for =";
    /// Derived equalities (transitivity, congruence, write-read).
    pub const RULE_EQ: &str = "rule for =";
    /// `ti`/`pi` through `=`.
    pub const INFER_BY_EQ: &str = "inferability based on =";
    /// `ta`/`pa` through `=`.
    pub const ALTER_BY_EQ: &str = "alterability based on =";
    /// Capability lattice.
    pub const LATTICE: &str = "implication";
    /// Join of two different partial inferences.
    pub const PI_JOIN: &str = "join of partial inferences";
    /// pi* composition.
    pub const PI_STAR_JOIN: &str = "join of joint constraints";
    /// `=[e1,e2] → pi*`.
    pub const PI_STAR_FROM_EQ: &str = "joint constraint from =";
    /// `=[e1,e2], pi*[(e1,e2)] → pi[e1], pi[e2]`.
    pub const PI_STAR_ON_EQUALS: &str = "joint constraint on equals";
    /// Receiver alterability of reads.
    pub const READ_RECEIVER: &str = "read receiver alterability";
}

/// Generate the axioms of `F(F)` for an unfolded program (opaque-OID
/// regime; see [`axioms_with`]).
pub fn axioms(prog: &NProgram) -> Vec<Fact> {
    axioms_with(prog, false)
}

/// Generate the axioms, optionally under §3.2's printable-OID regime where
/// object-typed user inputs and observations are directly inferable too.
pub fn axioms_with(prog: &NProgram, printable_oids: bool) -> Vec<Fact> {
    let mut out = Vec::new();
    let observable = |ty: &oodb_model::Type| ty.is_basic() || (printable_oids && ty.is_class());

    // Group the argument-variable occurrences for the equality axioms.
    let mut arg_vars: Vec<&crate::unfold::NExpr> = Vec::new();

    for e in prog.iter() {
        match &e.kind {
            NKind::ArgVar { .. } => {
                // ta[x]: the user chooses every outer argument.
                out.push((Term::Ta(e.id), labels::AXIOM_TA));
                if observable(&e.ty) {
                    // ti[x, l, +]: the user knows what they pass.
                    out.push((
                        Term::Ti(e.id, Origin::new(e.id, Dir::Down)),
                        labels::AXIOM_TI,
                    ));
                }
                arg_vars.push(e);
            }
            NKind::Const(_) if e.ty.is_basic() => {
                // ti[c, l, +]: program text is readable (§3.1: users can
                // read the code of access functions).
                out.push((
                    Term::Ti(e.id, Origin::new(e.id, Dir::Down)),
                    labels::AXIOM_TI,
                ));
            }
            NKind::LetVar { binding, .. } => {
                // =[z, e]: a variable occurrence denotes its binding.
                if let Some(t) = Term::eq(e.id, *binding) {
                    out.push((t, labels::AXIOM_EQ));
                }
            }
            NKind::Let { body, .. } => {
                // =[e, let … in e end].
                if let Some(t) = Term::eq(*body, e.id) {
                    out.push((t, labels::AXIOM_EQ));
                }
            }
            _ => {}
        }
    }

    // =[x1, x2] for outer argument variables of the same type: the user can
    // route the same value/object into both (same from-clause variable or
    // same constant).
    for (i, a) in arg_vars.iter().enumerate() {
        for b in &arg_vars[i + 1..] {
            if a.ty == b.ty {
                if let Some(t) = Term::eq(a.id, b.id) {
                    out.push((t, labels::AXIOM_EQ));
                }
            }
        }
    }

    // ti on directly observed results: outer access-function bodies and
    // outer special reads, when basic-typed.
    for outer in &prog.outers {
        if outer.root == 0 {
            continue; // defensive: unfolding failed mid-way
        }
        let root = prog.get(outer.root);
        if observable(&root.ty) {
            out.push((Term::Ti(root.id, Origin::new(0, Dir::Up)), labels::AXIOM_TI));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    fn program() -> NProgram {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
        )
        .unwrap();
        NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap()
    }

    #[test]
    fn axioms_for_stockbroker() {
        let p = program();
        let facts = axioms(&p);
        let terms: Vec<Term> = facts.iter().map(|(t, _)| *t).collect();
        // ta on all four argument-variable occurrences (1broker, 4broker,
        // 8o, 9v).
        for id in [1, 4, 8, 9] {
            assert!(terms.contains(&Term::Ta(id)), "missing ta[{id}]");
        }
        // ti on the constant 10 (id 3) and the basic argument v (id 9).
        assert!(terms.contains(&Term::Ti(3, Origin::new(3, Dir::Down))));
        assert!(terms.contains(&Term::Ti(9, Origin::new(9, Dir::Down))));
        // ti on the observed checkBudget body (id 7); none on the null-typed
        // w_budget root (id 10).
        assert!(terms.contains(&Term::Ti(7, Origin::new(0, Dir::Up))));
        assert!(!terms.iter().any(|t| matches!(t, Term::Ti(10, _))));
        // Equalities: the same `broker` twice, and both with `o` (all of
        // type Broker). Not with `v` (int).
        assert!(terms.contains(&Term::Eq(1, 4)));
        assert!(terms.contains(&Term::Eq(1, 8)));
        assert!(terms.contains(&Term::Eq(4, 8)));
        assert!(!terms.contains(&Term::Eq(1, 9)));
        // No ti axiom on the object-typed argument variables.
        assert!(!terms.iter().any(|t| matches!(t, Term::Ti(1, _))));
    }

    #[test]
    fn let_axioms() {
        let schema = parse_schema(
            r#"
            fn f(x: int): int { let y = x + 1 in y * y end }
            user u { f }
            "#,
        )
        .unwrap();
        let p = NProgram::unfold(&schema, schema.user_str("u").unwrap()).unwrap();
        // 7let y=3+(1x, 2:1) in 6*(4y, 5y) end
        let facts = axioms(&p);
        let terms: Vec<Term> = facts.iter().map(|(t, _)| *t).collect();
        assert!(terms.contains(&Term::Eq(3, 4))); // y occurrence = binding
        assert!(terms.contains(&Term::Eq(3, 5)));
        assert!(terms.contains(&Term::Eq(6, 7))); // body = let
    }

    #[test]
    fn default_config_enables_everything() {
        let c = RuleConfig::default();
        assert!(
            c.eq_transfer
                && c.pi_join
                && c.pi_star
                && c.write_read
                && c.basic_rules
                && c.feedback_guard
        );
    }
}
