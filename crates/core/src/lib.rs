//! # secflow — the paper's contribution
//!
//! A faithful implementation of the static security-flaw detection of
//! *K. Tajima, “Static Detection of Security Flaws in Object-Oriented
//! Databases”, SIGMOD 1996*:
//!
//! * [`unfold`] — given a user's capability list `F`, build `S'(F)`: every
//!   granted function unfolded (inner access-function calls become
//!   `let(f) x1=e1,… in body end` forms) with every subexpression occurrence
//!   assigned a serial number in evaluation order (§4.1).
//! * [`term`] — the term language of the inference system `F(F)`:
//!   `ta[e] | pa[e] | ti[e,num,dir] | pi[e,num,dir] | pi*[(e,e),num,dir] |
//!   =[e1,e2]` (§4.1).
//! * [`rules`] — the structural axioms and rules of Table 2 (alterability,
//!   equality, inferability, capability lattice), reconstructed where the
//!   published table is ambiguous — see the module docs for the
//!   reconstruction notes.
//! * [`basics`] — the per-basic-function rule sets generated following the
//!   paper's §4.1 metarules, including the verbatim `>=` and `*` instances.
//! * [`closure`] — the semi-naive fixpoint computing the closure of all
//!   derivable terms: interned [`term::TermId`] keys, dense per-occurrence
//!   capability tables, and proof recording as a mode
//!   ([`closure::ProofMode`]).
//! * [`fxhash`] — the std-only deterministic hasher behind the interner.
//! * [`reference`] — the retained slow-path engine, kept traversal-
//!   equivalent to [`closure`] as a differential-testing oracle.
//! * [`algorithm`] — `A(R)` (§4.1 Definition 6): a requirement `R` is
//!   *not satisfied* iff some occurrence of its target function carries all
//!   the specified capability terms in the closure.
//! * [`incremental`] — incremental maintenance: grant/revoke edits update a
//!   user's closure in time proportional to the edit (proof-guided
//!   retraction + warm-restart saturation) instead of the closure.
//! * [`demand`] — the demand-driven mode: a conservative relevance slice
//!   over `S'(F)` plus goal tracking, so the engine derives only what the
//!   verdict can observe and stops as soon as every occurrence is decided.
//! * [`checker`] — the certifying proof checker: [`Closure::certify`]
//!   independently re-validates every recorded derivation against the
//!   Table-2 schemas and metarule tables, sharing no code with the engine.
//! * [`report`] — verdicts and Figure-1-style derivation rendering.
//! * [`stats`] — closure instrumentation: [`ClosureStats`] collected through
//!   a zero-cost observer (the plain `compute` paths monomorphise a no-op),
//!   reportable into any `secflow_obs::MetricsSink`.
//!
//! The analysis is **sound** (paper Theorem 1): every flaw that a user could
//! actually realise is reported. It is deliberately **pessimistic**: it may
//! report flaws no concrete attack realises. `secflow-dynamic` quantifies
//! both properties experimentally (EXPERIMENTS.md, E3/E4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod algorithm;
pub mod arena;
pub mod basics;
pub mod checker;
pub mod closure;
pub mod demand;
pub mod fxhash;
pub mod incremental;
pub mod kernels;
pub mod provenance;
pub mod reference;
pub mod report;
pub mod rules;
pub mod stats;
pub mod term;
pub mod unfold;

pub use advisor::{advise, Advice, AdvisorConfig, Repair};
pub use algorithm::{
    analyze, analyze_batch, analyze_batch_cached, analyze_full, analyze_with_config,
    analyze_with_stats, AnalysisConfig, AnalysisError, AnalysisStats, BatchGroup, BatchOptions,
    BatchOutcome, CacheStats, CapabilityView, ClosureCache,
};
pub use checker::{Certificate, CheckError};
pub use closure::{Closure, ProofMode, SaturationMode};
pub use demand::{DemandPlan, GoalTracker};
pub use incremental::{CanonicalView, EditOutcome, IncrementalUser};
pub use provenance::{
    audit_witness, flaw_paths, FlawPath, PathStep, ProvenanceError, ProvenanceOptions, Severity,
    SourceKind, WalkMode, WitnessReport,
};
pub use reference::{analyze_ref, RefClosure};
pub use report::{Verdict, Violation};
pub use stats::ClosureStats;
pub use term::{Dir, Origin, Term, TermId};
pub use unfold::{ExprId, NExpr, NKind, NProgram, Outer};
