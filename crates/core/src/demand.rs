//! Demand-driven analysis: relevance slicing and goal tracking.
//!
//! `A(R)`'s verdict check only ever queries `ta`/`pa`/`ti`/`pi` on the
//! argument and result occurrences of the requirement's target function,
//! yet full saturation derives the whole `F(F)` term universe — `O(N²)`
//! capability and equality terms plus `O(N³)` `pi*` tuples. This module is
//! the magic-sets-style fix: from the goal occurrences we compute a
//! conservative *relevance slice* of the numbered program (a cone of
//! influence closed under the premise shapes of Table 2), so the engine can
//! refuse every derivation that mentions an expression outside the slice
//! without losing any derivation into the goal set.
//!
//! # Slice construction
//!
//! `REL` is the least set of occurrences containing the goal expressions
//! and closed under:
//!
//! * **undirected clubs** — groups whose members only ever appear together
//!   in rule premises and conclusions, so any member drags in the rest:
//!   - a `LetVar` and its binding, a `Let` node and its body (the `=`
//!     axioms connect exactly these pairs);
//!   - a basic node and its arguments (the Table 2 local rules and the
//!     diagonal rule mention only node + argument slots);
//!   - outer argument variables of the same static type (the `=` axiom
//!     ranges over all same-typed pairs);
//!   - the per-attribute "hub": all reads of an attribute, all written
//!     values of it, and all constructor arguments initialising it (the
//!     write-read, constructor-read and congruence rules conclude `=`
//!     between hub members);
//! * **directed pulls** — premise-only support that never receives
//!   conclusions from the goal side:
//!   - a relevant read pulls its receiver (congruence and write-read
//!     premises test equalities between receivers);
//!   - an activated hub pulls the write receivers and constructor nodes of
//!     its attribute (rule premises mention them; conclusions land on hub
//!     members).
//!
//! Because every `=`-producing rule concludes on a club edge, the full
//! equality class of any relevant expression is itself relevant, which in
//! turn covers transitivity, capability transfer over `=`, the `pi*`
//! substitution rule, and the intermediate endpoint of the `pi*` join
//! (whose potential graph is a subgraph of `=`-edges plus basic clubs).
//! Consequently the restricted engine derives exactly the full-closure
//! terms whose mentions lie inside `REL`, in the same order — witnesses
//! included.
//!
//! # Goals and early exit
//!
//! [`GoalTracker`] watches insertions for the exact queries
//! `check_against` will make. Closure growth is monotone, so the moment
//! every goal of an occurrence is derived, that occurrence is decided
//! *Violated* — no later derivation can retract it. Once every tracked
//! occurrence is decided the engine can stop saturating: the verdict and
//! all its witnesses are already fixed. `Satisfied` verdicts still require
//! draining the sliced worklist (absence of a term is only known at
//! fixpoint).

use crate::algorithm::occurrences;
use crate::fxhash::FxHashMap;
use crate::report::{Occurrence, OccurrenceKind};
use crate::term::Term;
use crate::unfold::{ExprId, NKind, NProgram};
use oodb_lang::requirement::{Cap, Requirement};
use oodb_model::Type;

/// One capability query the verdict check will make, attributed to the
/// tracked occurrence it belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TrackedGoal {
    expr: ExprId,
    cap: Cap,
    occ: u32,
}

/// The demand plan for one closure run: the relevance slice plus the goal
/// set of every requirement sharing the run.
#[derive(Clone, Debug)]
pub struct DemandPlan {
    /// In-slice flag per `ExprId` (index 0 unused).
    slice: Vec<bool>,
    slice_len: usize,
    goals: Vec<TrackedGoal>,
    /// Goals per tracked occurrence (occurrences that can never be violated
    /// — a failed static capability test or an arity mismatch — are not
    /// tracked at all).
    occ_goal_counts: Vec<u32>,
}

impl DemandPlan {
    /// Build a plan covering several requirements at once (a batch group):
    /// each requirement comes with its target occurrences in the shared
    /// unfolded program.
    pub fn build<'a, I>(prog: &NProgram, targets: I) -> DemandPlan
    where
        I: IntoIterator<Item = (&'a Requirement, &'a [Occurrence])>,
    {
        let mut goals = Vec::new();
        let mut occ_goal_counts = Vec::new();
        for (req, occs) in targets {
            for occ in occs {
                if let Some(pairs) = occurrence_goals(prog, req, occ) {
                    let oi = occ_goal_counts.len() as u32;
                    occ_goal_counts.push(pairs.len() as u32);
                    for (expr, cap) in pairs {
                        goals.push(TrackedGoal { expr, cap, occ: oi });
                    }
                }
            }
        }
        let (slice, slice_len) = compute_slice(prog, goals.iter().map(|g| g.expr));
        DemandPlan {
            slice,
            slice_len,
            goals,
            occ_goal_counts,
        }
    }

    /// Convenience: plan for a single requirement, enumerating its target
    /// occurrences internally.
    pub fn for_requirement(prog: &NProgram, req: &Requirement) -> DemandPlan {
        let occs = occurrences(prog, &req.target);
        DemandPlan::build(prog, [(req, occs.as_slice())])
    }

    /// Is the expression inside the relevance slice?
    pub fn covers_expr(&self, e: ExprId) -> bool {
        self.slice.get(e as usize).copied().unwrap_or(false)
    }

    /// Do all the expressions a term mentions lie inside the slice?
    pub fn covers(&self, t: &Term) -> bool {
        let (a, b) = t.mentions();
        self.covers_expr(a) && b.is_none_or(|b| self.covers_expr(b))
    }

    /// Number of program occurrences inside the slice.
    pub fn slice_len(&self) -> usize {
        self.slice_len
    }

    /// Number of capability goals across all tracked occurrences.
    pub fn goal_count(&self) -> usize {
        self.goals.len()
    }

    /// Number of tracked occurrences (those that could still be violated).
    pub fn tracked_occurrences(&self) -> usize {
        self.occ_goal_counts.len()
    }

    /// A fresh tracker for one engine run over this plan.
    pub fn tracker(&self) -> GoalTracker {
        let mut index: FxHashMap<(ExprId, Cap), Vec<u32>> = FxHashMap::default();
        for (gi, g) in self.goals.iter().enumerate() {
            index.entry((g.expr, g.cap)).or_default().push(gi as u32);
        }
        let remaining = self.occ_goal_counts.clone();
        let undecided = remaining.iter().filter(|&&n| n > 0).count();
        GoalTracker {
            index,
            goal_occ: self.goals.iter().map(|g| g.occ).collect(),
            satisfied: vec![false; self.goals.len()],
            remaining,
            undecided,
        }
    }
}

/// Watches term insertions and reports when every tracked occurrence has
/// all of its goals derived (at which point the verdict is fixed and the
/// engine may stop).
#[derive(Clone, Debug)]
pub struct GoalTracker {
    /// `(expr, cap)` → indexes of goals asking exactly that query.
    index: FxHashMap<(ExprId, Cap), Vec<u32>>,
    /// Goal index → tracked occurrence index.
    goal_occ: Vec<u32>,
    satisfied: Vec<bool>,
    /// Unsatisfied goals per tracked occurrence.
    remaining: Vec<u32>,
    /// Tracked occurrences with at least one unsatisfied goal. Occurrences
    /// with zero goals are decided (violated) from the start.
    undecided: usize,
}

impl GoalTracker {
    /// Record a newly inserted term; returns [`GoalTracker::all_decided`].
    ///
    /// `ti`/`pi` goals are satisfied by any origin; the capability tables
    /// answer `has_ti`/`has_pi` on membership, and the lattice rule inserts
    /// the `pa`/`pi` weakenings as separate terms, so matching the exact
    /// term kind is complete.
    pub fn on_insert(&mut self, t: &Term) -> bool {
        let key = match *t {
            Term::Ta(e) => (e, Cap::Ta),
            Term::Pa(e) => (e, Cap::Pa),
            Term::Ti(e, _) => (e, Cap::Ti),
            Term::Pi(e, _) => (e, Cap::Pi),
            Term::PiStar(..) | Term::Eq(..) => return self.undecided == 0,
        };
        if let Some(ids) = self.index.get(&key) {
            for &gi in ids {
                let gi = gi as usize;
                if !self.satisfied[gi] {
                    self.satisfied[gi] = true;
                    let occ = self.goal_occ[gi] as usize;
                    self.remaining[occ] -= 1;
                    if self.remaining[occ] == 0 {
                        self.undecided -= 1;
                    }
                }
            }
        }
        self.undecided == 0
    }

    /// Are all tracked occurrences decided (every goal derived)? True for
    /// an empty goal set — in that case the verdict needs no closure terms
    /// at all.
    pub fn all_decided(&self) -> bool {
        self.undecided == 0
    }
}

/// The expressions the verdict check will query for one requirement — the
/// union of its tracked occurrences' goal expressions. Used by the batch
/// closure cache to decide whether a cached slice already answers a new
/// requirement.
pub fn goal_exprs(prog: &NProgram, req: &Requirement, occs: &[Occurrence]) -> Vec<ExprId> {
    let mut out = Vec::new();
    for occ in occs {
        if let Some(pairs) = occurrence_goals(prog, req, occ) {
            out.extend(pairs.into_iter().map(|(e, _)| e));
        }
    }
    out
}

/// The capability queries `occurrence_violates` will make on this
/// occurrence, or `None` when the occurrence can never be violated (a
/// `ti`/`pi` capability demanded on a non-basic outer parameter, or more
/// capability positions than the occurrence has arguments).
fn occurrence_goals(
    prog: &NProgram,
    req: &Requirement,
    occ: &Occurrence,
) -> Option<Vec<(ExprId, Cap)>> {
    let mut goals = Vec::new();
    match occ.kind {
        OccurrenceKind::OuterAccess { outer } => {
            let o = &prog.outers[outer];
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let ty = o
                    .params
                    .get(i)
                    .map(|(_, t)| t)
                    .cloned()
                    .unwrap_or(Type::Null);
                for cap in caps {
                    let achieved = match cap {
                        Cap::Ta | Cap::Pa => true,
                        Cap::Ti | Cap::Pi => ty.is_basic(),
                    };
                    if !achieved {
                        return None;
                    }
                }
            }
        }
        OccurrenceKind::Inner { .. } => {
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let arg = *occ.args.get(i)?;
                for cap in caps {
                    goals.push((arg, *cap));
                }
            }
        }
    }
    for cap in &req.ret_caps {
        goals.push((occ.ret, *cap));
    }
    Some(goals)
}

fn mark(in_slice: &mut [bool], stack: &mut Vec<ExprId>, e: ExprId) {
    let i = e as usize;
    if i == 0 || i >= in_slice.len() || in_slice[i] {
        return;
    }
    in_slice[i] = true;
    stack.push(e);
}

/// The relevance fixpoint: grow the seed set along the club and pull edges
/// described in the module docs until stable.
fn compute_slice(prog: &NProgram, seeds: impl Iterator<Item = ExprId>) -> (Vec<bool>, usize) {
    let n = prog.len() + 1;
    // Static edge structure, one pass over the program.
    let mut undirected: Vec<Vec<ExprId>> = vec![Vec::new(); n];
    let mut read_recv: Vec<Option<ExprId>> = vec![None; n];
    let mut type_of: Vec<Option<usize>> = vec![None; n];
    let mut type_members: Vec<Vec<ExprId>> = Vec::new();
    let mut type_keys: Vec<Type> = Vec::new();
    for e in prog.iter() {
        match &e.kind {
            NKind::LetVar { binding, .. } => {
                undirected[e.id as usize].push(*binding);
                undirected[*binding as usize].push(e.id);
            }
            NKind::Let { body, .. } => {
                undirected[e.id as usize].push(*body);
                undirected[*body as usize].push(e.id);
            }
            NKind::Basic(_, args) => {
                for a in args {
                    undirected[e.id as usize].push(*a);
                    undirected[*a as usize].push(e.id);
                }
            }
            NKind::Read(_, recv) => {
                read_recv[e.id as usize] = Some(*recv);
            }
            NKind::ArgVar { .. } => {
                let ti = match type_keys.iter().position(|t| *t == e.ty) {
                    Some(i) => i,
                    None => {
                        type_keys.push(e.ty.clone());
                        type_members.push(Vec::new());
                        type_keys.len() - 1
                    }
                };
                type_of[e.id as usize] = Some(ti);
                type_members[ti].push(e.id);
            }
            _ => {}
        }
    }
    // Attribute hubs: reads, written values and constructor arguments are
    // the activating members; receivers and constructor nodes are support.
    let sites = prog.attr_sites();
    let mut hub_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (hi, (_, s)) in sites.iter().enumerate() {
        for &m in s.reads.iter().chain(&s.write_values).chain(&s.ctor_args) {
            hub_of[m as usize].push(hi);
        }
    }

    let mut in_slice = vec![false; n];
    let mut stack: Vec<ExprId> = Vec::new();
    let mut type_active = vec![false; type_members.len()];
    let mut hub_active = vec![false; sites.len()];
    for s in seeds {
        mark(&mut in_slice, &mut stack, s);
    }
    while let Some(e) = stack.pop() {
        let i = e as usize;
        for &m in &undirected[i] {
            mark(&mut in_slice, &mut stack, m);
        }
        if let Some(r) = read_recv[i] {
            mark(&mut in_slice, &mut stack, r);
        }
        if let Some(ti) = type_of[i] {
            if !type_active[ti] {
                type_active[ti] = true;
                for &m in &type_members[ti] {
                    mark(&mut in_slice, &mut stack, m);
                }
            }
        }
        for &hi in &hub_of[i] {
            if !hub_active[hi] {
                hub_active[hi] = true;
                let s = &sites[hi].1;
                for &m in s
                    .reads
                    .iter()
                    .chain(&s.write_values)
                    .chain(&s.ctor_args)
                    .chain(&s.write_receivers)
                    .chain(&s.ctor_nodes)
                {
                    mark(&mut in_slice, &mut stack, m);
                }
            }
        }
    }
    let slice_len = in_slice.iter().filter(|&&b| b).count();
    (in_slice, slice_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_requirement, parse_schema, Schema};
    use oodb_model::FnRef;

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }

        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }

        user clerk { checkBudget, w_budget }
    "#;

    fn schema() -> Schema {
        let s = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&s).unwrap();
        s
    }

    fn clerk_prog(s: &Schema) -> NProgram {
        NProgram::unfold(s, s.user_str("clerk").unwrap()).unwrap()
    }

    #[test]
    fn figure_one_slice_reaches_the_write_hub() {
        // 7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker)))
        // 10w_budget(8a1, 9a2)
        let s = schema();
        let prog = clerk_prog(&s);
        let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let plan = DemandPlan::for_requirement(&prog, &req);
        // Goal 5 pulls its receiver 4, the basic clubs {7,2,6} and {6,3,5},
        // receivers 1, the budget hub {2,9} with support 8, and the
        // same-typed argument-variable club {1,4,8}: everything is sliced.
        for e in 1..=9u32 {
            assert!(plan.covers_expr(e), "expr {e} should be in the slice");
        }
        // The w_budget node itself (10) receives no conclusions the goal
        // needs: it stays outside the slice.
        assert!(!plan.covers_expr(10));
        assert_eq!(plan.slice_len(), 9);
        assert_eq!(plan.tracked_occurrences(), 1);
        assert_eq!(plan.goal_count(), 1);
    }

    #[test]
    fn unreachable_target_has_no_tracked_occurrences() {
        let s = schema();
        let prog = clerk_prog(&s);
        let req = parse_requirement("(clerk, r_name(x) : ti)").unwrap();
        let plan = DemandPlan::for_requirement(&prog, &req);
        assert_eq!(plan.tracked_occurrences(), 0);
        assert_eq!(plan.goal_count(), 0);
        assert_eq!(plan.slice_len(), 0);
        assert!(plan.tracker().all_decided());
    }

    #[test]
    fn outer_static_test_prunes_goals() {
        // ti demanded on an object-typed parameter of a directly granted
        // access function: the user can never fully infer an object they
        // supply, so the outer occurrence is untracked. The inner call of
        // the same function stays tracked with a goal on its binding.
        let s = parse_schema(
            r#"
            class B { v: int }
            fn f(b: B): int { r_v(b) }
            fn g(b: B): int { f(b) }
            user u { f, g }
            "#,
        )
        .unwrap();
        oodb_lang::check_schema(&s).unwrap();
        let prog = NProgram::unfold(&s, s.user_str("u").unwrap()).unwrap();
        let req = parse_requirement("(u, f(x : ti))").unwrap();
        assert_eq!(req.target, FnRef::access("f"));
        let occs = occurrences(&prog, &req.target);
        assert_eq!(occs.len(), 2, "one outer grant, one inner call");
        let plan = DemandPlan::build(&prog, [(&req, occs.as_slice())]);
        assert_eq!(plan.tracked_occurrences(), 1);
        assert_eq!(plan.goal_count(), 1);
        // The tracked goal sits on the inner call's argument binding.
        let inner = occs
            .iter()
            .find(|o| matches!(o.kind, OccurrenceKind::Inner { .. }))
            .unwrap();
        assert!(plan.covers_expr(inner.args[0]));
    }

    #[test]
    fn tracker_counts_down_per_occurrence() {
        let s = schema();
        let prog = clerk_prog(&s);
        let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let plan = DemandPlan::for_requirement(&prog, &req);
        let mut tr = plan.tracker();
        assert!(!tr.all_decided());
        // A pi term does not satisfy a ti goal.
        assert!(!tr.on_insert(&Term::Pi(5, crate::term::Origin::AXIOM)));
        // Any-origin ti on the goal expression decides the occurrence.
        assert!(tr.on_insert(&Term::Ti(5, crate::term::Origin::AXIOM)));
        assert!(tr.all_decided());
        // Re-inserting with a different origin is a no-op.
        assert!(tr.on_insert(&Term::Ti(
            5,
            crate::term::Origin::new(2, crate::term::Dir::Up)
        )));
    }

    #[test]
    fn goal_exprs_union_over_occurrences() {
        let s = schema();
        let prog = clerk_prog(&s);
        let req = parse_requirement("(clerk, r_budget(x) : ti)").unwrap();
        let occs = occurrences(&prog, &req.target);
        // Outer occurrence (ret 2 of the standalone grant? none — clerk has
        // no outer r_budget) plus the inner node 2.
        let exprs = goal_exprs(&prog, &req, &occs);
        assert_eq!(exprs, vec![2]);
    }
}
