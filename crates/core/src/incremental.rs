//! Incremental maintenance of one user's closure under capability edits.
//!
//! A resident analysis process (`secflow serve`) sees a stream of `grant` /
//! `revoke` edits against capability lists whose closures are large. Running
//! `A(R)` from scratch after every edit costs time proportional to the
//! *closure*; this module makes an edit cost time proportional to the *edit*:
//!
//! * **Grant** is the easy direction — the inference system is monotone, so
//!   every old term survives (translated into the new id space) and the new
//!   function's terms are reached by ordinary propagation from its axioms.
//!   [`Closure::saturate_from`] absorbs the survivors, re-seeds the axioms
//!   (old ones dedup to no-ops), and drains to fixpoint.
//! * **Revoke** needs *retraction*. We reuse the recorded [`Derivation`]s —
//!   the same proof DAG [`Closure::certify`](crate::checker) validates — for
//!   a DRed-style over-delete/re-derive pass:
//!
//!   1. **Cascade** (old id space): walk the term log in insertion order
//!      (premises always precede conclusions) and delete every term that
//!      either mentions a removed node (expression mentions *and* origin
//!      serials — an origin names the basic-function node the inference
//!      flowed through, so a proof carrying a removed origin is dead) or has
//!      a deleted premise in its recorded proof. This *over*-deletes: a term
//!      whose recorded proof died may still have an alternative proof.
//!   2. **Translate**: one edit removes one contiguous id block per revoked
//!      outer, so the old→new id map is strictly monotone — pair
//!      normalisation of `=`/`pi*` terms is preserved and surviving
//!      derivations translate premise-for-premise into valid rule instances
//!      of the new program.
//!   3. **Re-derive**: absorb the survivors, then push a *frontier* onto the
//!      worklist — every survivor whose mentions (or origin serial) touch
//!      `X`, the deleted-mention set `M` closed one step under the
//!      program's *template groups* (a basic node with its arguments, a
//!      read with its receiver, a write with its receiver and value, a
//!      constructor with its arguments). Any rule instance able to
//!      re-derive an over-deleted term concludes a term whose mentions lie
//!      in `M`, so its anchor node's group intersects `M` and its surviving
//!      premises sit inside `X` — i.e. on the frontier. Draining from the
//!      frontier therefore restores exactly the alternative-proof
//!      survivors, and everything downstream by normal propagation.
//!
//! The result is asserted byte-identical (as a term *set* — insertion order
//! legitimately differs) to a from-scratch recompute by the differential
//! suite (`tests/incremental_differential.rs`) and per-row by the
//! `incremental` bench experiment.
//!
//! ## Canonical witnesses
//!
//! Verdict *witnesses* out of an incrementally-maintained closure cannot use
//! [`Closure::ti_witness`]'s first-derived pick: insertion order after a
//! warm restart differs from scratch. [`CanonicalView`] answers the same
//! [`CapabilityView`] queries with the **minimum** origin per occurrence —
//! an order-independent choice — so incremental and from-scratch closures
//! produce identical verdicts *including* witness terms when both are read
//! through it.

use crate::algorithm::{
    check_with_occurrences, occurrences, AnalysisConfig, AnalysisError, CapabilityView,
};
use crate::closure::{Closure, Derivation, ProofMode};
use crate::fxhash::FxHashSet;
use crate::report::Verdict;
use crate::term::{Origin, Term, TermId};
use crate::unfold::{ExprId, NKind, NProgram};
use oodb_lang::requirement::Requirement;
use oodb_lang::Schema;
use oodb_model::{CapabilityList, FnRef, UserName};

/// Read a closure through insertion-order-independent witness selection:
/// the minimum `(num, dir)` origin per occurrence instead of the first
/// derived. Wraps any [`Closure`] — scratch or incrementally maintained —
/// so verdicts compare meaningfully across derivation orders.
pub struct CanonicalView<'a>(pub &'a Closure);

impl CapabilityView for CanonicalView<'_> {
    fn has_ta(&self, e: ExprId) -> bool {
        self.0.has_ta(e)
    }
    fn has_pa(&self, e: ExprId) -> bool {
        self.0.has_pa(e)
    }
    fn ti_witness(&self, e: ExprId) -> Option<Term> {
        // `Origin` orders by (num, dir) with Down < Up — the same order as
        // the engine's packed origin bit — so `min` is canonical.
        self.0.ti_origins(e).iter().min().map(|o| Term::Ti(e, *o))
    }
    fn pi_witness(&self, e: ExprId) -> Option<Term> {
        self.0.pi_origins(e).iter().min().map(|o| Term::Pi(e, *o))
    }
}

/// What an edit did to the maintained closure (telemetry for `serve`
/// responses and the bench harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EditOutcome {
    /// Did the edit change the capability list at all? `false` for granting
    /// an already-granted function or revoking an absent one — the closure
    /// is untouched.
    pub changed: bool,
    /// Terms removed by the deletion cascade (revoke only).
    pub deleted: usize,
    /// Terms carried over (absorbed) from the previous closure.
    pub survivors: usize,
    /// Terms derived fresh by the warm restart (new function's terms on a
    /// grant; recovered alternative-proof terms on a revoke).
    pub rederived: usize,
}

/// One user's capability list, unfolded program and **proof-carrying**
/// closure, maintained incrementally across [`grant`](IncrementalUser::grant)
/// / [`revoke`](IncrementalUser::revoke) edits.
///
/// Edits are transactional: on any error (unknown function, unfolding or
/// term budget) the state is left exactly as before. The term budget behaves
/// as from-scratch: an edit whose resulting fixpoint would exceed
/// `config.term_limit` fails just as the recompute would.
pub struct IncrementalUser {
    user: UserName,
    caps: CapabilityList,
    prog: NProgram,
    closure: Closure,
    config: AnalysisConfig,
}

impl IncrementalUser {
    /// Materialise a user from the schema catalog with a full
    /// ([`ProofMode::Full`]) saturation — the proofs are what the next
    /// revoke's deletion cascade walks.
    pub fn new(
        schema: &Schema,
        user: &UserName,
        config: &AnalysisConfig,
    ) -> Result<IncrementalUser, AnalysisError> {
        let caps = schema
            .user(user)
            .cloned()
            .ok_or_else(|| AnalysisError::UnknownUser(user.to_string()))?;
        let prog = NProgram::unfold_with_limit(schema, &caps, config.node_limit)?;
        let closure = Closure::compute_with_saturation(
            &prog,
            &config.rules,
            config.term_limit,
            ProofMode::Full,
            config.saturation,
        )?;
        Ok(IncrementalUser {
            user: user.clone(),
            caps,
            prog,
            closure,
            config: *config,
        })
    }

    /// The user this state belongs to.
    pub fn user(&self) -> &UserName {
        &self.user
    }

    /// The current capability list (schema catalog + applied edits).
    pub fn caps(&self) -> &CapabilityList {
        &self.caps
    }

    /// The current unfolded program.
    pub fn program(&self) -> &NProgram {
        &self.prog
    }

    /// The maintained closure.
    pub fn closure(&self) -> &Closure {
        &self.closure
    }

    /// Check a requirement against the maintained closure through
    /// [`CanonicalView`]. The requirement must target this user (routing is
    /// the caller's job — `serve` keys sessions by user name).
    pub fn check(&self, req: &Requirement) -> Verdict {
        debug_assert_eq!(&req.user, &self.user, "requirement routed to wrong user");
        let occs = occurrences(&self.prog, &req.target);
        check_with_occurrences(&self.prog, &CanonicalView(&self.closure), req, &occs)
    }

    /// Grant `f`. Monotone direction: every old term survives; the new
    /// function's terms arrive by ordinary propagation from its re-seeded
    /// axioms, so no frontier is needed.
    pub fn grant(&mut self, schema: &Schema, f: &FnRef) -> Result<EditOutcome, AnalysisError> {
        if self.caps.allows(f) {
            return Ok(EditOutcome {
                changed: false,
                survivors: self.closure.len(),
                ..EditOutcome::default()
            });
        }
        let mut caps = self.caps.clone();
        caps.grant(f.clone());
        let prog = NProgram::unfold_with_limit(schema, &caps, self.config.node_limit)?;
        let map = translation_map(&self.prog, &prog, f, EditKind::Grant);
        let survivors: Vec<(Term, Derivation)> = self
            .closure
            .iter_proofs()
            .map(|(t, proof)| {
                (
                    translate_term(t, &map),
                    translate_deriv(proof.clone(), &map),
                )
            })
            .collect();
        let survived = survivors.len();
        let closure = Closure::saturate_from(
            &prog,
            &self.config.rules,
            self.config.term_limit,
            self.config.saturation,
            survivors,
            &[],
        )?;
        let outcome = EditOutcome {
            changed: true,
            deleted: 0,
            survivors: survived,
            rederived: closure.len() - survived,
        };
        self.caps = caps;
        self.prog = prog;
        self.closure = closure;
        Ok(outcome)
    }

    /// Revoke `f`: proof-guided deletion cascade, monotone id translation,
    /// frontier-driven re-derivation (module docs walk through why each
    /// step is sound and complete).
    pub fn revoke(&mut self, schema: &Schema, f: &FnRef) -> Result<EditOutcome, AnalysisError> {
        if !self.caps.allows(f) {
            return Ok(EditOutcome {
                changed: false,
                survivors: self.closure.len(),
                ..EditOutcome::default()
            });
        }
        let mut caps = self.caps.clone();
        caps.revoke(f);
        let prog = NProgram::unfold_with_limit(schema, &caps, self.config.node_limit)?;
        let map = translation_map(&self.prog, &prog, f, EditKind::Revoke);

        // Phase 1 — deletion cascade in the *old* id space. `removed[e]`
        // marks the revoked outers' contiguous id blocks. Premises precede
        // conclusions in the log, so one forward pass settles the DAG.
        let old_n = self.prog.len() + 1;
        let mut removed = vec![false; old_n];
        for (e, &to) in map.iter().enumerate() {
            removed[e] = e > 0 && to == 0;
        }
        let new_n = prog.len() + 1;
        let mut m_new = vec![false; new_n];
        let mut dead: FxHashSet<TermId> = FxHashSet::default();
        let mut survivors: Vec<(Term, Derivation)> = Vec::new();
        for (t, proof) in self.closure.iter_proofs() {
            let dies = touches_removed(&t, &removed)
                || proof
                    .premises
                    .iter()
                    .any(|p| dead.contains(&TermId::new(*p)));
            if dies {
                dead.insert(TermId::new(t));
                // Record the deleted term's footprint in the *new* id
                // space; mentions inside the removed block vanish with it.
                for e in term_footprint(&t) {
                    let to = map[e as usize];
                    if to != 0 {
                        m_new[to as usize] = true;
                    }
                }
            } else {
                survivors.push((
                    translate_term(t, &map),
                    translate_deriv(proof.clone(), &map),
                ));
            }
        }

        // Phase 2 — frontier: close M one step under the new program's
        // template groups, then collect every survivor touching the result.
        let x = group_closure(&prog, m_new);
        let frontier: Vec<Term> = survivors
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| term_footprint(t).any(|e| x[e as usize]))
            .collect();

        let survived = survivors.len();
        let closure = Closure::saturate_from(
            &prog,
            &self.config.rules,
            self.config.term_limit,
            self.config.saturation,
            survivors,
            &frontier,
        )?;
        let outcome = EditOutcome {
            changed: true,
            deleted: dead.len(),
            survivors: survived,
            rederived: closure.len() - survived,
        };
        self.caps = caps;
        self.prog = prog;
        self.closure = closure;
        Ok(outcome)
    }
}

enum EditKind {
    Grant,
    Revoke,
}

/// Old→new id map for a one-function edit. Outer id blocks are contiguous
/// and in capability-list order on both sides, so pairing the outer lists —
/// skipping the edited function's outers on whichever side has them — gives
/// a strictly monotone map. Index 0 (the invalid id) and removed ids map
/// to 0.
fn translation_map(old: &NProgram, new: &NProgram, f: &FnRef, kind: EditKind) -> Vec<ExprId> {
    let mut map = vec![0 as ExprId; old.len() + 1];
    let mut j = 0usize;
    let mut old_cursor: ExprId = 0;
    let mut new_cursor: ExprId = 0;
    for o in &old.outers {
        let old_hi = o.root;
        if matches!(kind, EditKind::Revoke) && &o.fn_ref == f {
            old_cursor = old_cursor.max(old_hi);
            continue;
        }
        if matches!(kind, EditKind::Grant) {
            while j < new.outers.len() && &new.outers[j].fn_ref == f {
                new_cursor = new_cursor.max(new.outers[j].root);
                j += 1;
            }
        }
        let n = &new.outers[j];
        debug_assert_eq!(n.fn_ref, o.fn_ref, "outer lists misaligned");
        j += 1;
        let new_hi = n.root;
        for e in (old_cursor + 1)..=old_hi {
            map[e as usize] = e - old_cursor + new_cursor;
        }
        old_cursor = old_cursor.max(old_hi);
        new_cursor = new_cursor.max(new_hi);
    }
    map
}

/// Every id a term's identity references: expression mentions plus the
/// origin serial when non-zero (the origin names the basic-function node
/// the inference flowed through — structurally part of the term).
fn term_footprint(t: &Term) -> impl Iterator<Item = ExprId> {
    let (a, b) = t.mentions();
    let o = t.origin().map(|o| o.num).filter(|n| *n != 0);
    std::iter::once(a).chain(b).chain(o)
}

fn touches_removed(t: &Term, removed: &[bool]) -> bool {
    term_footprint(t).any(|e| removed[e as usize])
}

fn translate_origin(o: Origin, map: &[ExprId]) -> Origin {
    if o.num == 0 {
        o
    } else {
        let num = map[o.num as usize];
        debug_assert_ne!(num, 0, "survivor origin in removed range");
        Origin { num, dir: o.dir }
    }
}

/// Translate a term through the monotone map. Monotonicity preserves the
/// `a < b` pair normalisation, so variants rebuild directly.
fn translate_term(t: Term, map: &[ExprId]) -> Term {
    let tr = |e: ExprId| -> ExprId {
        let to = map[e as usize];
        debug_assert_ne!(to, 0, "survivor mentions a removed id");
        to
    };
    match t {
        Term::Ta(e) => Term::Ta(tr(e)),
        Term::Pa(e) => Term::Pa(tr(e)),
        Term::Ti(e, o) => Term::Ti(tr(e), translate_origin(o, map)),
        Term::Pi(e, o) => Term::Pi(tr(e), translate_origin(o, map)),
        Term::PiStar(a, b, o) => Term::PiStar(tr(a), tr(b), translate_origin(o, map)),
        Term::Eq(a, b) => Term::Eq(tr(a), tr(b)),
    }
}

fn translate_deriv(d: Derivation, map: &[ExprId]) -> Derivation {
    Derivation {
        rule: d.rule,
        premises: d
            .premises
            .into_iter()
            .map(|p| translate_term(p, map))
            .collect(),
    }
}

/// Close `m` one step under the program's template groups: a node whose
/// group intersects `m` contributes its whole group. Only node kinds whose
/// local rules relate several occurrences form groups — `let`s, variables
/// and constants connect to the rest of the program through axioms and
/// derived equalities alone, which the frontier covers via `m` itself.
fn group_closure(prog: &NProgram, m: Vec<bool>) -> Vec<bool> {
    let mut x = m.clone();
    let mark = |x: &mut Vec<bool>, group: &[ExprId]| {
        if group.iter().any(|&g| m[g as usize]) {
            for &g in group {
                x[g as usize] = true;
            }
        }
    };
    let mut buf: Vec<ExprId> = Vec::with_capacity(6);
    for e in prog.iter() {
        buf.clear();
        match &e.kind {
            NKind::Basic(_, args) => {
                buf.push(e.id);
                buf.extend(args.iter().copied());
            }
            NKind::Read(_, recv) => buf.extend([e.id, *recv]),
            NKind::Write(_, recv, val) => buf.extend([e.id, *recv, *val]),
            NKind::New(_, args) => {
                buf.push(e.id);
                buf.extend(args.iter().map(|(_, id)| *id));
            }
            _ => continue,
        }
        mark(&mut x, &buf);
    }
    x
}
