//! The retained slow-path closure engine — a correctness oracle for
//! [`crate::closure`].
//!
//! This module preserves the pre-fast-path representation: terms live in a
//! SipHash `HashSet<Term>`, capability indexes are `HashMap<ExprId, Vec<…>>`,
//! proofs are always recorded, and the hot loops clone their index snapshots
//! instead of iterating in place. It exists so the differential tests (and
//! the `closure_fastpath` bench experiment) can assert that the interned,
//! dense-table engine derives *exactly* the same term set, witnesses and
//! verdicts — byte for byte — on every workload.
//!
//! The traversal order is kept identical to the fast engine: same axiom
//! order, same worklist discipline, and the same keyed diagonal index (the
//! one place the historical engine scanned a hash map, which was the only
//! source of run-to-run nondeterminism). Any divergence between the two
//! engines is therefore a bug, not noise.
//!
//! Nothing here is performance-sensitive; clarity and fidelity to the
//! original structure win over speed.

use crate::algorithm::{check_against, AnalysisConfig, AnalysisError, CapabilityView};
use crate::basics::{rules_for, LCap, LTerm, LocalRule, Slot};
use crate::closure::{ClosureError, Derivation};
use crate::report::Verdict;
use crate::rules::{axioms_with, labels, RuleConfig};
use crate::term::{Dir, Origin, Term};
use crate::unfold::{ExprId, NKind, NProgram};
use oodb_lang::requirement::Requirement;
use oodb_lang::{BasicOp, Schema};
use oodb_model::AttrName;
use std::collections::{HashMap, HashSet, VecDeque};

/// The closure computed by the reference engine. Same queries as
/// [`crate::closure::Closure`], hash-map-backed.
#[derive(Debug)]
pub struct RefClosure {
    terms: HashSet<Term>,
    proofs: HashMap<Term, Derivation>,
    ta: HashSet<ExprId>,
    pa: HashSet<ExprId>,
    ti: HashMap<ExprId, Vec<Origin>>,
    pi: HashMap<ExprId, Vec<Origin>>,
    pistar: HashMap<ExprId, Vec<(ExprId, Origin)>>,
    eq: HashMap<ExprId, Vec<ExprId>>,
    rounds: usize,
}

impl RefClosure {
    /// Compute with default configuration and budget.
    pub fn compute(prog: &NProgram) -> Result<RefClosure, ClosureError> {
        Self::compute_with(
            prog,
            &RuleConfig::default(),
            crate::closure::DEFAULT_TERM_LIMIT,
        )
    }

    /// Compute with explicit rule configuration and term budget.
    pub fn compute_with(
        prog: &NProgram,
        config: &RuleConfig,
        limit: usize,
    ) -> Result<RefClosure, ClosureError> {
        RefEngine::new(prog, *config, limit).run()
    }

    /// Number of terms in the closure.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Is the closure empty?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Worklist steps taken.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Membership.
    pub fn contains(&self, t: &Term) -> bool {
        self.terms.contains(t)
    }

    /// Total alterability on the occurrence.
    pub fn has_ta(&self, e: ExprId) -> bool {
        self.ta.contains(&e)
    }

    /// Partial alterability.
    pub fn has_pa(&self, e: ExprId) -> bool {
        self.pa.contains(&e)
    }

    /// Total inferability (any origin).
    pub fn has_ti(&self, e: ExprId) -> bool {
        self.ti.contains_key(&e)
    }

    /// Partial inferability (any origin).
    pub fn has_pi(&self, e: ExprId) -> bool {
        self.pi.contains_key(&e)
    }

    /// Known-equal occurrences.
    pub fn equal_to(&self, e: ExprId) -> &[ExprId] {
        self.eq.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The derivation of a term (always recorded in this engine).
    pub fn proof(&self, t: &Term) -> Option<&Derivation> {
        self.proofs.get(t)
    }

    /// First-derived `ti` witness (matches the fast engine's).
    pub fn ti_witness(&self, e: ExprId) -> Option<Term> {
        self.ti.get(&e).map(|os| Term::Ti(e, os[0]))
    }

    /// First-derived `pi` witness.
    pub fn pi_witness(&self, e: ExprId) -> Option<Term> {
        self.pi.get(&e).map(|os| Term::Pi(e, os[0]))
    }

    /// Iterate over all terms (unordered).
    pub fn iter(&self) -> impl Iterator<Item = Term> + '_ {
        self.terms.iter().copied()
    }
}

impl CapabilityView for RefClosure {
    fn has_ta(&self, e: ExprId) -> bool {
        RefClosure::has_ta(self, e)
    }
    fn has_pa(&self, e: ExprId) -> bool {
        RefClosure::has_pa(self, e)
    }
    fn ti_witness(&self, e: ExprId) -> Option<Term> {
        RefClosure::ti_witness(self, e)
    }
    fn pi_witness(&self, e: ExprId) -> Option<Term> {
        RefClosure::pi_witness(self, e)
    }
}

/// Run `A(R)` end-to-end on the reference engine: capability lookup,
/// unfolding, slow-path closure, then the shared verdict check. The
/// differential tests compare this against
/// [`crate::algorithm::analyze_with_config`].
pub fn analyze_ref(
    schema: &Schema,
    req: &Requirement,
    config: &AnalysisConfig,
) -> Result<Verdict, AnalysisError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AnalysisError::UnknownUser(req.user.to_string()))?;
    let prog = NProgram::unfold_with_limit(schema, caps, config.node_limit)?;
    let closure = RefClosure::compute_with(&prog, &config.rules, config.term_limit)?;
    Ok(check_against(&prog, &closure, req))
}

struct RefEngine<'p> {
    prog: &'p NProgram,
    config: RuleConfig,
    limit: usize,
    out: RefClosure,
    queue: VecDeque<Term>,
    // structural indexes
    basic_slots: HashMap<ExprId, Vec<(ExprId, Slot)>>,
    diag_args: HashMap<ExprId, (ExprId, ExprId)>,
    /// Normalised argument pair → diagonal-candidate nodes in program
    /// order — keyed lookup, same as the fast engine, so the two engines
    /// visit diagonal nodes in the same order.
    diag_by_pair: HashMap<(ExprId, ExprId), Vec<ExprId>>,
    read_by_recv: HashMap<ExprId, Vec<ExprId>>,
    writes_by_recv: HashMap<ExprId, Vec<(AttrName, ExprId)>>,
    op_rules: HashMap<BasicOp, Vec<LocalRule>>,
}

impl<'p> RefEngine<'p> {
    fn new(prog: &'p NProgram, config: RuleConfig, limit: usize) -> RefEngine<'p> {
        let mut basic_slots: HashMap<ExprId, Vec<(ExprId, Slot)>> = HashMap::new();
        let mut diag_args: HashMap<ExprId, (ExprId, ExprId)> = HashMap::new();
        let mut diag_by_pair: HashMap<(ExprId, ExprId), Vec<ExprId>> = HashMap::new();
        let mut read_by_recv: HashMap<ExprId, Vec<ExprId>> = HashMap::new();
        let mut writes_by_recv: HashMap<ExprId, Vec<(AttrName, ExprId)>> = HashMap::new();
        let mut op_rules: HashMap<BasicOp, Vec<LocalRule>> = HashMap::new();

        for e in prog.iter() {
            match &e.kind {
                NKind::Basic(op, args) => {
                    for (i, a) in args.iter().enumerate() {
                        basic_slots
                            .entry(*a)
                            .or_default()
                            .push((e.id, Slot::Arg(i)));
                    }
                    basic_slots.entry(e.id).or_default().push((e.id, Slot::Ret));
                    op_rules.entry(*op).or_insert_with(|| rules_for(*op));
                    if matches!(op, BasicOp::Add | BasicOp::Mul | BasicOp::Concat)
                        && args.len() == 2
                        && args[0] != args[1]
                    {
                        diag_args.insert(e.id, (args[0], args[1]));
                        let pair = (args[0].min(args[1]), args[0].max(args[1]));
                        diag_by_pair.entry(pair).or_default().push(e.id);
                    }
                }
                NKind::Read(_attr, recv) => {
                    read_by_recv.entry(*recv).or_default().push(e.id);
                }
                NKind::Write(attr, recv, val) => {
                    writes_by_recv
                        .entry(*recv)
                        .or_default()
                        .push((attr.clone(), *val));
                }
                _ => {}
            }
        }

        RefEngine {
            prog,
            config,
            limit,
            out: RefClosure {
                terms: HashSet::new(),
                proofs: HashMap::new(),
                ta: HashSet::new(),
                pa: HashSet::new(),
                ti: HashMap::new(),
                pi: HashMap::new(),
                pistar: HashMap::new(),
                eq: HashMap::new(),
                rounds: 0,
            },
            queue: VecDeque::new(),
            basic_slots,
            diag_args,
            diag_by_pair,
            read_by_recv,
            writes_by_recv,
            op_rules,
        }
    }

    fn run(mut self) -> Result<RefClosure, ClosureError> {
        self.saturate()?;
        Ok(self.out)
    }

    fn saturate(&mut self) -> Result<(), ClosureError> {
        for (t, rule) in axioms_with(self.prog, self.config.printable_oids) {
            self.derive(t, rule, Vec::new())?;
        }
        if self.config.write_read {
            let direct: Vec<Term> = self
                .prog
                .iter()
                .filter_map(|e| match &e.kind {
                    NKind::Read(attr, recv) => self
                        .ctor_arg(*recv, attr)
                        .and_then(|arg| Term::eq(arg, e.id)),
                    _ => None,
                })
                .collect();
            for t in direct {
                self.derive(t, labels::RULE_EQ, Vec::new())?;
            }
        }
        while let Some(t) = self.queue.pop_front() {
            self.out.rounds += 1;
            self.propagate(t)?;
        }
        Ok(())
    }

    fn ctor_arg(&self, e: ExprId, attr: &AttrName) -> Option<ExprId> {
        match &self.prog.get(e).kind {
            NKind::New(_class, args) => args
                .iter()
                .find(|(name, _)| name == attr)
                .map(|(_, id)| *id),
            _ => None,
        }
    }

    fn derive(
        &mut self,
        t: Term,
        rule: &'static str,
        premises: Vec<Term>,
    ) -> Result<(), ClosureError> {
        if self.out.terms.contains(&t) {
            return Ok(());
        }
        if self.out.terms.len() >= self.limit {
            return Err(ClosureError::TermLimit { limit: self.limit });
        }
        self.out.terms.insert(t);
        self.out.proofs.insert(t, Derivation { rule, premises });
        match t {
            Term::Ta(e) => {
                self.out.ta.insert(e);
            }
            Term::Pa(e) => {
                self.out.pa.insert(e);
            }
            Term::Ti(e, o) => self.out.ti.entry(e).or_default().push(o),
            Term::Pi(e, o) => self.out.pi.entry(e).or_default().push(o),
            Term::PiStar(a, b, o) => {
                self.out.pistar.entry(a).or_default().push((b, o));
                self.out.pistar.entry(b).or_default().push((a, o));
            }
            Term::Eq(a, b) => {
                self.out.eq.entry(a).or_default().push(b);
                self.out.eq.entry(b).or_default().push(a);
            }
        }
        self.queue.push_back(t);
        Ok(())
    }

    fn propagate(&mut self, t: Term) -> Result<(), ClosureError> {
        match t {
            Term::Ta(e) => {
                self.derive(Term::Pa(e), labels::LATTICE, vec![t])?;
                for n in self.read_by_recv.get(&e).cloned().unwrap_or_default() {
                    self.derive(Term::Pa(n), labels::READ_RECEIVER, vec![t])?;
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
            }
            Term::Pa(e) => {
                for n in self.read_by_recv.get(&e).cloned().unwrap_or_default() {
                    self.derive(Term::Pa(n), labels::READ_RECEIVER, vec![t])?;
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
            }
            Term::Ti(e, o) => {
                self.derive(Term::Pi(e, o), labels::LATTICE, vec![t])?;
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
                self.try_diagonal(e)?;
            }
            Term::Pi(e, o) => {
                if self.config.pi_join {
                    let other = self
                        .out
                        .pi
                        .get(&e)
                        .and_then(|os| os.iter().find(|o2| **o2 != o).copied());
                    if let Some(o2) = other {
                        self.derive(Term::Ti(e, o), labels::PI_JOIN, vec![Term::Pi(e, o2), t])?;
                        // Symmetric join: the partner's ti must not depend
                        // on which origin happened to pop first.
                        self.derive(Term::Ti(e, o2), labels::PI_JOIN, vec![t, Term::Pi(e, o2)])?;
                    }
                }
                self.transfer_by_eq(t, e)?;
                self.fire_local_rules(e)?;
                self.try_diagonal(e)?;
            }
            Term::PiStar(a, b, o) => {
                if self.config.pi_star {
                    if o != Origin::AXIOM && self.out.terms.contains(&Term::Eq(a, b)) {
                        let eq = Term::Eq(a, b);
                        self.derive(Term::Pi(a, o), labels::PI_STAR_ON_EQUALS, vec![eq, t])?;
                        self.derive(Term::Pi(b, o), labels::PI_STAR_ON_EQUALS, vec![eq, t])?;
                    }
                    for (end, via) in [(a, b), (b, a)] {
                        let neighbours = self.out.pistar.get(&via).cloned().unwrap_or_default();
                        for (c, o2) in neighbours {
                            if c != end && c != via {
                                if let Some(nt) = Term::pi_star(end, c, o) {
                                    let other =
                                        Term::pi_star(via, c, o2).expect("stored pi* is proper");
                                    self.derive(nt, labels::PI_STAR_JOIN, vec![t, other])?;
                                }
                            }
                        }
                    }
                    self.transfer_by_eq(t, a)?;
                    self.transfer_by_eq(t, b)?;
                    self.fire_local_rules(a)?;
                    self.fire_local_rules(b)?;
                }
            }
            Term::Eq(a, b) => {
                for (x, y) in [(a, b), (b, a)] {
                    for c in self.out.eq.get(&x).cloned().unwrap_or_default() {
                        if let Some(nt) = Term::eq(c, y) {
                            let prem = Term::eq(x, c).expect("adjacency implies distinct");
                            self.derive(nt, labels::RULE_EQ, vec![t, prem])?;
                        }
                    }
                }
                let reads_a = self.read_by_recv.get(&a).cloned().unwrap_or_default();
                let reads_b = self.read_by_recv.get(&b).cloned().unwrap_or_default();
                for ra in &reads_a {
                    for rb in &reads_b {
                        let attr_a = self.read_attr_of(*ra);
                        let attr_b = self.read_attr_of(*rb);
                        if attr_a == attr_b {
                            if let Some(nt) = Term::eq(*ra, *rb) {
                                self.derive(nt, labels::RULE_EQ, vec![t])?;
                            }
                        }
                    }
                }
                if self.config.write_read {
                    for (wrecv, rrecv) in [(a, b), (b, a)] {
                        let writes = self.writes_by_recv.get(&wrecv).cloned().unwrap_or_default();
                        for (attr, val) in writes {
                            for r in self.read_by_recv.get(&rrecv).cloned().unwrap_or_default() {
                                if self.read_attr_of(r) == Some(attr.clone()) {
                                    if let Some(nt) = Term::eq(val, r) {
                                        self.derive(nt, labels::RULE_EQ, vec![t])?;
                                    }
                                }
                            }
                        }
                        for r in self.read_by_recv.get(&rrecv).cloned().unwrap_or_default() {
                            if let Some(attr) = self.read_attr_of(r) {
                                if let Some(arg) = self.ctor_arg(wrecv, &attr) {
                                    if let Some(nt) = Term::eq(arg, r) {
                                        self.derive(nt, labels::RULE_EQ, vec![t])?;
                                    }
                                }
                            }
                        }
                    }
                }
                if self.config.pi_star {
                    let stars = self.out.pistar.get(&a).cloned().unwrap_or_default();
                    for (x, o) in stars {
                        if x == b && o != Origin::AXIOM {
                            let star = Term::pi_star(a, b, o).expect("stored pi* is proper");
                            self.derive(Term::Pi(a, o), labels::PI_STAR_ON_EQUALS, vec![t, star])?;
                            self.derive(Term::Pi(b, o), labels::PI_STAR_ON_EQUALS, vec![t, star])?;
                        }
                    }
                }
                // Diagonal candidates via the keyed pair index (the fast
                // engine does the same — deterministic, unlike a map scan).
                let diag_hits = self.diag_by_pair.get(&(a, b)).cloned().unwrap_or_default();
                for n in diag_hits {
                    self.try_diagonal(n)?;
                }
                if self.config.pi_star {
                    if let Some(nt) = Term::pi_star(a, b, Origin::AXIOM) {
                        self.derive(nt, labels::PI_STAR_FROM_EQ, vec![t])?;
                    }
                }
                if self.config.eq_transfer {
                    self.transfer_all_caps(a, b, t)?;
                    self.transfer_all_caps(b, a, t)?;
                }
            }
        }
        Ok(())
    }

    fn read_attr_of(&self, read_node: ExprId) -> Option<AttrName> {
        match &self.prog.get(read_node).kind {
            NKind::Read(attr, _) => Some(attr.clone()),
            _ => None,
        }
    }

    fn try_diagonal(&mut self, node: ExprId) -> Result<(), ClosureError> {
        if !self.config.basic_rules {
            return Ok(());
        }
        let Some(&(a, b)) = self.diag_args.get(&node) else {
            return Ok(());
        };
        let eq = Term::eq(a, b).expect("diagonal args are distinct");
        if !self.out.terms.contains(&eq) {
            return Ok(());
        }
        let origin = Origin::new(node, Dir::Up);
        let no_guard = !self.config.feedback_guard;
        let guard_ok = move |o: &Origin| no_guard || o.num != node;
        let ti_src = self
            .out
            .ti
            .get(&node)
            .and_then(|os| os.iter().copied().find(|o| guard_ok(o)));
        if let Some(o) = ti_src {
            let prem = Term::Ti(node, o);
            for arg in [a, b] {
                self.derive(
                    Term::Ti(arg, origin),
                    "basic function: diagonal inversion",
                    vec![eq, prem],
                )?;
            }
        }
        let pi_src = self
            .out
            .pi
            .get(&node)
            .and_then(|os| os.iter().copied().find(|o| guard_ok(o)));
        if let Some(o) = pi_src {
            let prem = Term::Pi(node, o);
            for arg in [a, b] {
                self.derive(
                    Term::Pi(arg, origin),
                    "basic function: diagonal inversion",
                    vec![eq, prem],
                )?;
            }
        }
        Ok(())
    }

    fn transfer_all_caps(
        &mut self,
        from: ExprId,
        to: ExprId,
        eq: Term,
    ) -> Result<(), ClosureError> {
        if self.out.ta.contains(&from) {
            self.derive(Term::Ta(to), labels::ALTER_BY_EQ, vec![eq, Term::Ta(from)])?;
        }
        if self.out.pa.contains(&from) {
            self.derive(Term::Pa(to), labels::ALTER_BY_EQ, vec![eq, Term::Pa(from)])?;
        }
        for o in self.out.ti.get(&from).cloned().unwrap_or_default() {
            self.derive(
                Term::Ti(to, o),
                labels::INFER_BY_EQ,
                vec![eq, Term::Ti(from, o)],
            )?;
        }
        for o in self.out.pi.get(&from).cloned().unwrap_or_default() {
            self.derive(
                Term::Pi(to, o),
                labels::INFER_BY_EQ,
                vec![eq, Term::Pi(from, o)],
            )?;
        }
        if self.config.pi_star {
            for (other, o) in self.out.pistar.get(&from).cloned().unwrap_or_default() {
                if other != to {
                    if let Some(nt) = Term::pi_star(to, other, o) {
                        let prem = Term::pi_star(from, other, o).expect("stored pi* is proper");
                        self.derive(nt, labels::INFER_BY_EQ, vec![eq, prem])?;
                    }
                }
            }
        }
        Ok(())
    }

    fn transfer_by_eq(&mut self, t: Term, e: ExprId) -> Result<(), ClosureError> {
        if !self.config.eq_transfer {
            return Ok(());
        }
        for b in self.out.eq.get(&e).cloned().unwrap_or_default() {
            let eq_term = Term::eq(e, b).expect("adjacency implies distinct");
            let (derived, label) = match t {
                Term::Ta(_) => (Some(Term::Ta(b)), labels::ALTER_BY_EQ),
                Term::Pa(_) => (Some(Term::Pa(b)), labels::ALTER_BY_EQ),
                Term::Ti(_, o) => (Some(Term::Ti(b, o)), labels::INFER_BY_EQ),
                Term::Pi(_, o) => (Some(Term::Pi(b, o)), labels::INFER_BY_EQ),
                Term::PiStar(x, y, o) => {
                    let other = if x == e { y } else { x };
                    if other == b {
                        (None, labels::INFER_BY_EQ)
                    } else {
                        (Term::pi_star(b, other, o), labels::INFER_BY_EQ)
                    }
                }
                Term::Eq(..) => (None, labels::RULE_EQ),
            };
            if let Some(nt) = derived {
                self.derive(nt, label, vec![eq_term, t])?;
            }
        }
        Ok(())
    }

    fn fire_local_rules(&mut self, e: ExprId) -> Result<(), ClosureError> {
        if !self.config.basic_rules {
            return Ok(());
        }
        let nodes: Vec<ExprId> = self
            .basic_slots
            .get(&e)
            .map(|v| v.iter().map(|(n, _)| *n).collect())
            .unwrap_or_default();
        for node in nodes {
            self.try_node(node)?;
        }
        Ok(())
    }

    fn try_node(&mut self, node: ExprId) -> Result<(), ClosureError> {
        let (op, args) = match &self.prog.get(node).kind {
            NKind::Basic(op, args) => (*op, args.clone()),
            _ => return Ok(()),
        };
        let rules = self.op_rules.get(&op).cloned().unwrap_or_default();
        for rule in &rules {
            self.try_rule(node, &args, rule)?;
        }
        Ok(())
    }

    fn slot_expr(&self, node: ExprId, args: &[ExprId], slot: Slot) -> ExprId {
        match slot {
            Slot::Arg(i) => args[i],
            Slot::Ret => node,
        }
    }

    fn try_rule(
        &mut self,
        node: ExprId,
        args: &[ExprId],
        rule: &LocalRule,
    ) -> Result<(), ClosureError> {
        let conclusion_down = match rule.conclusion {
            LTerm::Cap(_, Slot::Ret) => true,
            LTerm::Cap(_, Slot::Arg(_)) => false,
            LTerm::PiStar(a, b) => matches!(a, Slot::Ret) || matches!(b, Slot::Ret),
        };
        let guard_ok = |o: Origin| -> bool {
            if !self.config.feedback_guard {
                return true;
            }
            if conclusion_down {
                !(o.num == node && o.dir == Dir::Up)
            } else {
                o.num != node
            }
        };

        let mut premises = Vec::with_capacity(rule.premises.len());
        for p in &rule.premises {
            let found = match *p {
                LTerm::Cap(LCap::Ta, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.ta.contains(&e).then_some(Term::Ta(e))
                }
                LTerm::Cap(LCap::Pa, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out.pa.contains(&e).then_some(Term::Pa(e))
                }
                LTerm::Cap(LCap::Ti, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out
                        .ti
                        .get(&e)
                        .and_then(|os| os.iter().copied().find(|o| guard_ok(*o)))
                        .map(|o| Term::Ti(e, o))
                }
                LTerm::Cap(LCap::Pi, s) => {
                    let e = self.slot_expr(node, args, s);
                    self.out
                        .pi
                        .get(&e)
                        .and_then(|os| os.iter().copied().find(|o| guard_ok(*o)))
                        .map(|o| Term::Pi(e, o))
                }
                LTerm::PiStar(s1, s2) => {
                    if !self.config.pi_star {
                        None
                    } else {
                        let a = self.slot_expr(node, args, s1);
                        let b = self.slot_expr(node, args, s2);
                        self.out
                            .pistar
                            .get(&a)
                            .and_then(|v| {
                                v.iter()
                                    .find(|(other, o)| *other == b && guard_ok(*o))
                                    .map(|(_, o)| *o)
                            })
                            .and_then(|o| Term::pi_star(a, b, o))
                    }
                }
            };
            match found {
                Some(t) => premises.push(t),
                None => return Ok(()),
            }
        }

        let dir = if conclusion_down { Dir::Down } else { Dir::Up };
        let origin = Origin::new(node, dir);
        let conclusion = match rule.conclusion {
            LTerm::Cap(LCap::Ta, s) => Some(Term::Ta(self.slot_expr(node, args, s))),
            LTerm::Cap(LCap::Pa, s) => Some(Term::Pa(self.slot_expr(node, args, s))),
            LTerm::Cap(LCap::Ti, s) => Some(Term::Ti(self.slot_expr(node, args, s), origin)),
            LTerm::Cap(LCap::Pi, s) => Some(Term::Pi(self.slot_expr(node, args, s), origin)),
            LTerm::PiStar(s1, s2) => {
                if !self.config.pi_star {
                    None
                } else {
                    Term::pi_star(
                        self.slot_expr(node, args, s1),
                        self.slot_expr(node, args, s2),
                        origin,
                    )
                }
            }
        };
        if let Some(c) = conclusion {
            self.derive(c, rule.name, premises)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::Closure;
    use oodb_lang::parse_schema;

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }
        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
    "#;

    fn prog_for(user: &str) -> NProgram {
        let schema = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        NProgram::unfold(&schema, schema.user_str(user).unwrap()).unwrap()
    }

    #[test]
    fn reference_finds_figure_one() {
        let prog = prog_for("clerk");
        let c = RefClosure::compute(&prog).unwrap();
        assert!(c.has_ti(5));
        assert!(c.contains(&Term::Eq(1, 8)));
    }

    #[test]
    fn reference_matches_fast_engine_exactly() {
        for user in ["clerk", "safe_clerk"] {
            let prog = prog_for(user);
            let slow = RefClosure::compute(&prog).unwrap();
            let fast = Closure::compute(&prog).unwrap();
            let mut t1: Vec<Term> = slow.iter().collect();
            let mut t2: Vec<Term> = fast.iter().collect();
            t1.sort();
            t2.sort();
            assert_eq!(t1, t2, "term sets differ for {user}");
            assert_eq!(slow.rounds(), fast.rounds(), "rounds differ for {user}");
            for e in 1..=prog.len() as ExprId {
                assert_eq!(slow.ti_witness(e), fast.ti_witness(e), "ti witness @{e}");
                assert_eq!(slow.pi_witness(e), fast.pi_witness(e), "pi witness @{e}");
                assert_eq!(slow.equal_to(e), fast.equal_to(e), "eq adjacency @{e}");
            }
        }
    }

    #[test]
    fn reference_term_limit_aborts_like_fast() {
        let prog = prog_for("clerk");
        assert!(matches!(
            RefClosure::compute_with(&prog, &RuleConfig::default(), 5),
            Err(ClosureError::TermLimit { limit: 5 })
        ));
    }

    #[test]
    fn analyze_ref_agrees_on_the_paper_example() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let req = oodb_lang::parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let cfg = AnalysisConfig::default();
        let slow = analyze_ref(&schema, &req, &cfg).unwrap();
        let fast = crate::algorithm::analyze_with_config(&schema, &req, &cfg).unwrap();
        assert_eq!(slow, fast);
        assert!(slow.is_violated());
    }
}
