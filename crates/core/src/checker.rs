//! Certifying proof checker for `F(F)` derivations (Table 2).
//!
//! After three engine rewrites (fastpath interning, demand slicing,
//! semi-naive deltas) the only guard on the closure engine was differential
//! testing between our own engines — a bug shared by every engine passes
//! silently. Following the certifying-algorithms stance, this module makes
//! every analysis *checkable*: given a [`Closure`] computed under
//! [`ProofMode::Full`], [`Closure::certify`] independently re-validates
//! every recorded [`Derivation`] against the declarative rule schemas.
//!
//! ## What is checked
//!
//! For every term in the closure:
//!
//! 1. a proof is recorded ([`CheckError::MissingProof`] otherwise);
//! 2. every premise of the proof is itself in the closure
//!    ([`CheckError::DanglingPremise`]);
//! 3. the step instantiates the rule schema its label names — an axiom
//!    schema justified by the program structure (which is the unfolding
//!    `S'(F)` of the user's capability list), a Table-2 rule, or a
//!    basic-function metarule from [`crate::basics::rules_for`], with the
//!    feedback guards honoured ([`CheckError::BadStep`]);
//! 4. the proof DAG is acyclic ([`CheckError::Cyclic`]); with (1)–(3) this
//!    grounds every term, including every reported flaw's witness terms,
//!    in the axioms.
//!
//! ## Independence argument
//!
//! The checker shares **no code** with the engine's `derive`/`propagate`
//! machinery. Its trusted base is exactly the *declarative* description of
//! the inference system:
//!
//! * [`crate::term`] — term shapes and the `=`/`pi*` normalisation;
//! * [`crate::rules`] — rule labels, the [`RuleConfig`] gates and the
//!   axiom semantics (re-validated structurally, not by calling
//!   [`crate::rules::axioms_with`]);
//! * [`crate::basics`] — the per-operator metarule *tables* (pure data);
//! * [`crate::unfold`] — the numbered program the closure was computed
//!   from.
//!
//! It reads the closure only through its public query API (`iter`,
//! `proof`, `contains`, `proof_mode`), builds its own structural indexes
//! from the [`NProgram`] (hashed with the crate's plain Fx hasher — a
//! utility, not an evaluation path), and never invokes any engine
//! evaluation path. An engine bug therefore cannot hide itself: to
//! fool the checker it would have to fabricate a derivation that *is* a
//! valid schema instance — i.e. not be a bug in the sense of Theorem 1.

use crate::basics::{rules_for, LCap, LTerm, LocalRule, Slot};
use crate::closure::{Closure, Derivation, ProofMode};
use crate::fxhash::FxHashMap;
use crate::rules::{labels, RuleConfig};
use crate::term::{Dir, Origin, Term};
use crate::unfold::{ExprId, NExpr, NKind, NProgram};
use oodb_lang::BasicOp;
use oodb_model::AttrName;
use std::fmt;

/// A successful certification: every proof in the closure re-validated
/// against the rule schemas, with per-rule check counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Total number of terms whose proofs were checked.
    pub terms_checked: usize,
    /// Terms justified by axiom schemas (empty premise lists).
    pub axioms: usize,
    /// Terms justified by rule applications.
    pub derived: usize,
    /// Check counts per rule label, sorted by label for determinism.
    pub rule_checks: Vec<(&'static str, u64)>,
}

/// A failed certification, naming the first bad step (terms are visited in
/// sorted order, so the failure is deterministic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The closure was computed under [`ProofMode::Off`]; there is nothing
    /// to certify.
    NoProofs,
    /// A term is in the closure but carries no derivation.
    MissingProof {
        /// The unproved term.
        term: Term,
    },
    /// A derivation cites a premise that is not in the closure.
    DanglingPremise {
        /// The term whose proof is broken.
        term: Term,
        /// The cited premise missing from the closure.
        premise: Term,
    },
    /// A derivation is not an instance of the rule schema its label names.
    BadStep {
        /// The term whose proof is broken.
        term: Term,
        /// The rule label the derivation claims.
        rule: &'static str,
        /// Why the step does not instantiate the schema.
        reason: String,
    },
    /// The proof DAG contains a cycle through this term.
    Cyclic {
        /// A term on the cycle.
        term: Term,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::NoProofs => {
                write!(f, "closure was computed without proofs (ProofMode::Off)")
            }
            CheckError::MissingProof { term } => {
                write!(f, "term {term} has no recorded derivation")
            }
            CheckError::DanglingPremise { term, premise } => {
                write!(
                    f,
                    "derivation of {term} cites premise {premise} which is not in the closure"
                )
            }
            CheckError::BadStep { term, rule, reason } => {
                write!(
                    f,
                    "derivation of {term} is not an instance of rule `{rule}`: {reason}"
                )
            }
            CheckError::Cyclic { term } => {
                write!(f, "proof DAG is cyclic through {term}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl Closure {
    /// Independently re-validate every proof in the closure against the
    /// Table-2 rule schemas and basic-function metarules (see the module
    /// docs for the exact obligations and the independence argument).
    ///
    /// `prog` must be the program the closure was computed from and
    /// `config` the rule configuration it was computed under; the checker
    /// enforces the config's rule-group gates, so certifying against a
    /// different configuration fails.
    pub fn certify(&self, prog: &NProgram, config: &RuleConfig) -> Result<Certificate, CheckError> {
        if self.proof_mode() == ProofMode::Off {
            return Err(CheckError::NoProofs);
        }
        let mut checker = Checker::new(prog, config);
        let mut terms: Vec<Term> = self.iter().collect();
        terms.sort();

        let mut axioms = 0usize;
        let mut derived = 0usize;
        let mut counts: FxHashMap<&'static str, u64> = FxHashMap::default();
        for &t in &terms {
            let d = self.proof(&t).ok_or(CheckError::MissingProof { term: t })?;
            for p in &d.premises {
                if !self.contains(p) {
                    return Err(CheckError::DanglingPremise {
                        term: t,
                        premise: *p,
                    });
                }
            }
            checker
                .check_step(t, d)
                .map_err(|reason| CheckError::BadStep {
                    term: t,
                    rule: d.rule,
                    reason,
                })?;
            if d.premises.is_empty() {
                axioms += 1;
            } else {
                derived += 1;
            }
            *counts.entry(d.rule).or_insert(0) += 1;
        }

        // Acyclicity: iterative tri-colour DFS over the proof DAG. Every
        // premise is in the closure and every closure term has a checked
        // proof, so acyclicity grounds the whole DAG in the axioms.
        let mut colour: FxHashMap<Term, u8> = FxHashMap::default(); // 1 = on stack, 2 = done
        for &root in &terms {
            if colour.get(&root).copied() == Some(2) {
                continue;
            }
            colour.insert(root, 1);
            let mut stack: Vec<(Term, usize)> = vec![(root, 0)];
            while let Some(&(t, i)) = stack.last() {
                let prems = &self.proof(&t).expect("checked above").premises;
                if i < prems.len() {
                    stack.last_mut().expect("non-empty").1 += 1;
                    let p = prems[i];
                    match colour.get(&p).copied() {
                        Some(1) => return Err(CheckError::Cyclic { term: p }),
                        Some(2) => {}
                        _ => {
                            colour.insert(p, 1);
                            stack.push((p, 0));
                        }
                    }
                } else {
                    colour.insert(t, 2);
                    stack.pop();
                }
            }
        }

        let mut rule_checks: Vec<(&'static str, u64)> = counts.into_iter().collect();
        rule_checks.sort();
        Ok(Certificate {
            terms_checked: terms.len(),
            axioms,
            derived,
            rule_checks,
        })
    }
}

/// The schema validator: program-derived structural indexes plus the rule
/// configuration. Check methods return `Err(reason)` for [`CheckError::BadStep`].
struct Checker<'p> {
    prog: &'p NProgram,
    config: &'p RuleConfig,
    /// Write sites by receiver: recv → (attribute, written value).
    writes_by_recv: FxHashMap<ExprId, Vec<(&'p AttrName, ExprId)>>,
    /// Metarule tables per operator, materialised once.
    rules: FxHashMap<BasicOp, Vec<LocalRule>>,
}

impl<'p> Checker<'p> {
    fn new(prog: &'p NProgram, config: &'p RuleConfig) -> Checker<'p> {
        let mut writes_by_recv: FxHashMap<ExprId, Vec<(&'p AttrName, ExprId)>> =
            FxHashMap::default();
        for e in prog.iter() {
            if let NKind::Write(attr, recv, val) = &e.kind {
                writes_by_recv.entry(*recv).or_default().push((attr, *val));
            }
        }
        Checker {
            prog,
            config,
            writes_by_recv,
            rules: FxHashMap::default(),
        }
    }

    /// Bounds-checked occurrence lookup: a fabricated proof may cite ids
    /// outside the program.
    fn node(&self, e: ExprId) -> Result<&'p NExpr, String> {
        if e == 0 || e as usize > self.prog.len() {
            return Err(format!("occurrence {e} is not in the program"));
        }
        Ok(self.prog.get(e))
    }

    /// §3.2 observability: basic-typed always; object-typed only under the
    /// printable-OID regime.
    fn observable(&self, e: &NExpr) -> bool {
        e.ty.is_basic() || (self.config.printable_oids && e.ty.is_class())
    }

    /// The attribute a read node accesses, with its receiver.
    fn as_read(&self, e: ExprId) -> Result<Option<(&'p AttrName, ExprId)>, String> {
        Ok(match &self.node(e)?.kind {
            NKind::Read(attr, recv) => Some((attr, *recv)),
            _ => None,
        })
    }

    /// The constructor argument feeding `attr` when `e` is a `new C(…)`.
    fn ctor_arg(&self, e: ExprId, attr: &AttrName) -> Result<Option<ExprId>, String> {
        Ok(match &self.node(e)?.kind {
            NKind::New(_, args) => args.iter().find(|(a, _)| a == attr).map(|(_, id)| *id),
            _ => None,
        })
    }

    /// The metarule table for `op` (materialised once per operator).
    fn rules_of(&mut self, op: BasicOp) -> &[LocalRule] {
        self.rules.entry(op).or_insert_with(|| rules_for(op))
    }

    fn check_step(&mut self, t: Term, d: &Derivation) -> Result<(), String> {
        match d.rule {
            // "axiom" covers both the alterability and inferability axioms.
            l if l == labels::AXIOM_TA => self.check_axiom(t, d),
            l if l == labels::AXIOM_EQ => self.check_axiom_eq(t, d),
            l if l == labels::RULE_EQ => self.check_rule_eq(t, d),
            l if l == labels::LATTICE => self.check_lattice(t, d),
            l if l == labels::READ_RECEIVER => self.check_read_receiver(t, d),
            l if l == labels::PI_JOIN => self.check_pi_join(t, d),
            l if l == labels::PI_STAR_FROM_EQ => self.check_pi_star_from_eq(t, d),
            l if l == labels::PI_STAR_ON_EQUALS => self.check_pi_star_on_equals(t, d),
            l if l == labels::PI_STAR_JOIN => self.check_pi_star_join(t, d),
            l if l == labels::INFER_BY_EQ => self.check_transfer(t, d, false),
            l if l == labels::ALTER_BY_EQ => self.check_transfer(t, d, true),
            "basic function: diagonal inversion" => self.check_diagonal(t, d),
            l if l.starts_with("basic function") => self.check_local_rule(t, d),
            other => Err(format!("unknown rule label `{other}`")),
        }
    }

    /// `→ ta[x]` (outer argument variables), `→ ti[x/c, l, +]` (observable
    /// arguments, basic constants), `→ ti[root, 0, −]` (observed results).
    fn check_axiom(&self, t: Term, d: &Derivation) -> Result<(), String> {
        expect_premises(d, 0)?;
        match t {
            Term::Ta(e) => match self.node(e)?.kind {
                NKind::ArgVar { .. } => Ok(()),
                _ => Err("ta axiom on a non-argument occurrence".into()),
            },
            Term::Ti(e, o) => {
                let expr = self.node(e)?;
                if o == Origin::new(e, Dir::Down) {
                    let ok = match expr.kind {
                        NKind::ArgVar { .. } => self.observable(expr),
                        NKind::Const(_) => expr.ty.is_basic(),
                        _ => false,
                    };
                    return ok.then_some(()).ok_or_else(|| {
                        "ti axiom on an occurrence that is neither an observable \
                         argument nor a basic constant"
                            .into()
                    });
                }
                if o == Origin::new(0, Dir::Up) {
                    let is_root = self.prog.outers.iter().any(|outer| outer.root == e);
                    return (is_root && self.observable(expr))
                        .then_some(())
                        .ok_or_else(|| {
                            "ti axiom with origin (0,−) on a non-observable or non-root \
                             occurrence"
                                .into()
                        });
                }
                Err(format!("ti axiom carries unexpected origin {o}"))
            }
            _ => Err("axiom label on a term kind axioms never produce".into()),
        }
    }

    /// `=[z, e]` for let-bound variables, `=[e, let … in e end]`, and
    /// `=[x1, x2]` for same-typed outer argument variables.
    fn check_axiom_eq(&self, t: Term, d: &Derivation) -> Result<(), String> {
        expect_premises(d, 0)?;
        let Term::Eq(a, b) = t else {
            return Err("equality axiom on a non-equality term".into());
        };
        for (x, y) in [(a, b), (b, a)] {
            match &self.node(x)?.kind {
                NKind::LetVar { binding, .. } if *binding == y => return Ok(()),
                NKind::Let { body, .. } if *body == y => return Ok(()),
                _ => {}
            }
        }
        let (ea, eb) = (self.node(a)?, self.node(b)?);
        if matches!(ea.kind, NKind::ArgVar { .. })
            && matches!(eb.kind, NKind::ArgVar { .. })
            && ea.ty == eb.ty
        {
            return Ok(());
        }
        Err("equality is not a let binding, a let body, or a same-typed argument pair".into())
    }

    /// Derived equalities: transitivity (2 premises), congruence /
    /// write-read / constructor-read through `=` (1 premise), and the
    /// direct constructor-read seeding (0 premises).
    fn check_rule_eq(&self, t: Term, d: &Derivation) -> Result<(), String> {
        let Term::Eq(u, v) = t else {
            return Err("`rule for =` concluded a non-equality term".into());
        };
        match d.premises.as_slice() {
            [] => {
                // Direct constructor-read: r_att(new C(…)) = the matching
                // constructor argument.
                gate(self.config.write_read, "write_read")?;
                for (arg, r) in [(u, v), (v, u)] {
                    if let Some((attr, recv)) = self.as_read(r)? {
                        if self.ctor_arg(recv, attr)? == Some(arg) {
                            return Ok(());
                        }
                    }
                }
                Err("premise-less equality is not a direct constructor read".into())
            }
            [Term::Eq(x, y)] => {
                let (x, y) = (*x, *y);
                // Attribute congruence: r_att(x) = r_att(y).
                if let (Some((au, ru)), Some((av, rv))) = (self.as_read(u)?, self.as_read(v)?) {
                    if au == av && ((ru, rv) == (x, y) || (ru, rv) == (y, x)) {
                        return Ok(());
                    }
                }
                if self.config.write_read {
                    for (val, r) in [(u, v), (v, u)] {
                        if let Some((attr, rrecv)) = self.as_read(r)? {
                            let wrecv = match rrecv {
                                e if e == x => y,
                                e if e == y => x,
                                _ => continue,
                            };
                            // Write-read: the value written is the value read.
                            let written = self
                                .writes_by_recv
                                .get(&wrecv)
                                .is_some_and(|ws| ws.iter().any(|(a, w)| *a == attr && *w == val));
                            // Constructor-read through the equality.
                            if written || self.ctor_arg(wrecv, attr)? == Some(val) {
                                return Ok(());
                            }
                        }
                    }
                }
                Err("equality does not follow from the premise by congruence, \
                     write-read, or constructor-read"
                    .into())
            }
            [Term::Eq(a, b), Term::Eq(p, q)] => {
                // Transitivity: =[a,b], =[x,c] → =[c,y] with {x,y} = {a,b}.
                for (x, y) in [(*a, *b), (*b, *a)] {
                    let c = match (*p, *q) {
                        (p2, c2) if p2 == x => c2,
                        (c2, q2) if q2 == x => c2,
                        _ => continue,
                    };
                    if Term::eq(c, y) == Some(t) {
                        return Ok(());
                    }
                }
                Err("conclusion is not the transitive closure of the premises".into())
            }
            _ => Err(format!(
                "`rule for =` takes 0–2 equality premises, got {}",
                d.premises.len()
            )),
        }
    }

    /// Lattice: `ta[e] → pa[e]`, `ti[e,n,d] → pi[e,n,d]`.
    fn check_lattice(&self, t: Term, d: &Derivation) -> Result<(), String> {
        expect_premises(d, 1)?;
        match (d.premises[0], t) {
            (Term::Ta(a), Term::Pa(e)) if a == e => Ok(()),
            (Term::Ti(a, o1), Term::Pi(e, o2)) if a == e && o1 == o2 => Ok(()),
            _ => Err("conclusion is not the lattice weakening of the premise".into()),
        }
    }

    /// Receiver alterability: `ta[e] | pa[e] → pa[r_att(e)]`.
    fn check_read_receiver(&self, t: Term, d: &Derivation) -> Result<(), String> {
        expect_premises(d, 1)?;
        let Term::Pa(n) = t else {
            return Err("read-receiver rule concludes partial alterability only".into());
        };
        let Some((_, recv)) = self.as_read(n)? else {
            return Err("conclusion is not on a read occurrence".into());
        };
        match d.premises[0] {
            Term::Ta(e) | Term::Pa(e) if e == recv => Ok(()),
            _ => Err("premise is not an alterability on the read's receiver".into()),
        }
    }

    /// pi-join: `pi[e,n1,d1], pi[e,n2,d2] → ti[e,n2,d2]` with distinct
    /// origins.
    fn check_pi_join(&self, t: Term, d: &Derivation) -> Result<(), String> {
        gate(self.config.pi_join, "pi_join")?;
        expect_premises(d, 2)?;
        let Term::Ti(e, o) = t else {
            return Err("pi-join concludes total inferability only".into());
        };
        match (d.premises[0], d.premises[1]) {
            (Term::Pi(e1, o1), Term::Pi(e2, o2)) if e1 == e && e2 == e && o2 == o && o1 != o2 => {
                Ok(())
            }
            _ => Err(
                "premises are not two distinct-origin partial inferences on the \
                      concluded occurrence"
                    .into(),
            ),
        }
    }

    /// `=[e1,e2] → pi*[(e1,e2), 0, +]`.
    fn check_pi_star_from_eq(&self, t: Term, d: &Derivation) -> Result<(), String> {
        gate(self.config.pi_star, "pi_star")?;
        expect_premises(d, 1)?;
        match (d.premises[0], t) {
            (Term::Eq(a, b), Term::PiStar(p, q, o)) if (p, q) == (a, b) && o == Origin::AXIOM => {
                Ok(())
            }
            _ => Err(
                "conclusion is not the axiom-origin joint constraint of the \
                      premise equality"
                    .into(),
            ),
        }
    }

    /// `=[e1,e2], pi*[(e1,e2),n,d] → pi[e1,n,d], pi[e2,n,d]` for non-axiom
    /// origins.
    fn check_pi_star_on_equals(&self, t: Term, d: &Derivation) -> Result<(), String> {
        gate(self.config.pi_star, "pi_star")?;
        expect_premises(d, 2)?;
        let Term::Pi(e, o) = t else {
            return Err("joint-constraint elimination concludes partial inferability".into());
        };
        match (d.premises[0], d.premises[1]) {
            (Term::Eq(a, b), Term::PiStar(p, q, so))
                if (p, q) == (a, b) && so == o && o != Origin::AXIOM && (e == a || e == b) =>
            {
                Ok(())
            }
            _ => Err(
                "premises are not an equality plus a matching non-axiom joint \
                      constraint on the concluded occurrence"
                    .into(),
            ),
        }
    }

    /// pi*-join: `pi*[(a,b),n1,d1], pi*[(b,c),n2,d2] → pi*[(a,c),n1,d1]`.
    fn check_pi_star_join(&self, t: Term, d: &Derivation) -> Result<(), String> {
        gate(self.config.pi_star, "pi_star")?;
        expect_premises(d, 2)?;
        let (Term::PiStar(p, q, o), Term::PiStar(r, s, _o2), Term::PiStar(u, v, oc)) =
            (d.premises[0], d.premises[1], t)
        else {
            return Err("pi*-join relates three joint constraints".into());
        };
        if oc != o {
            return Err("conclusion must carry the first premise's origin".into());
        }
        for (end, via) in [(p, q), (q, p)] {
            let c = if u == end {
                v
            } else if v == end {
                u
            } else {
                continue;
            };
            if c != via && ((r, s) == (via.min(c), via.max(c))) {
                return Ok(());
            }
        }
        Err("premises do not chain through a shared endpoint onto the conclusion".into())
    }

    /// Equality transfer: `=[e1,e2], X[e1,…] → X[e2,…]` with origins
    /// preserved (`alter` = ta/pa, otherwise ti/pi/pi*).
    fn check_transfer(&self, t: Term, d: &Derivation, alter: bool) -> Result<(), String> {
        gate(self.config.eq_transfer, "eq_transfer")?;
        expect_premises(d, 2)?;
        let Term::Eq(x, y) = d.premises[0] else {
            return Err("first premise must be the equality transferred over".into());
        };
        let endpoints = |from: ExprId, to: ExprId| (from, to) == (x, y) || (from, to) == (y, x);
        match (d.premises[1], t, alter) {
            (Term::Ta(from), Term::Ta(to), true) if endpoints(from, to) => Ok(()),
            (Term::Pa(from), Term::Pa(to), true) if endpoints(from, to) => Ok(()),
            (Term::Ti(from, o1), Term::Ti(to, o2), false) if endpoints(from, to) && o1 == o2 => {
                Ok(())
            }
            (Term::Pi(from, o1), Term::Pi(to, o2), false) if endpoints(from, to) && o1 == o2 => {
                Ok(())
            }
            (Term::PiStar(p, q, o1), Term::PiStar(u, v, o2), false) if o1 == o2 => {
                gate(self.config.pi_star, "pi_star")?;
                for from in [p, q] {
                    let other = if from == p { q } else { p };
                    let to = match from {
                        e if e == x => y,
                        e if e == y => x,
                        _ => continue,
                    };
                    if other != to && (u, v) == (to.min(other), to.max(other)) {
                        return Ok(());
                    }
                }
                Err(
                    "joint constraint does not transfer over the premise equality \
                     onto the conclusion"
                        .into(),
                )
            }
            _ => Err(if alter {
                "premise/conclusion are not matching alterability terms across the equality".into()
            } else {
                "premise/conclusion are not matching inferability terms across the \
                 equality with preserved origin"
                    .into()
            }),
        }
    }

    /// Diagonal inversion: `=[e1,e2], ti|pi[⊕(e1,e2),n,d] → ti|pi[e_i,l,−]`
    /// for diagonal-candidate nodes (`x+x`, `x*x`, `s++s`), guarded against
    /// feedback (`n ≠ l`).
    fn check_diagonal(&self, t: Term, d: &Derivation) -> Result<(), String> {
        gate(self.config.basic_rules, "basic_rules")?;
        expect_premises(d, 2)?;
        let (arg, origin) = match t {
            Term::Ti(e, o) | Term::Pi(e, o) => (e, o),
            _ => return Err("diagonal inversion concludes ti or pi".into()),
        };
        let node = origin.num;
        if origin.dir != Dir::Up {
            return Err("diagonal conclusions carry an upward origin".into());
        }
        let NKind::Basic(op, args) = &self.node(node)?.kind else {
            return Err("conclusion origin is not a basic-function node".into());
        };
        let diagonal = matches!(op, BasicOp::Add | BasicOp::Mul | BasicOp::Concat)
            && args.len() == 2
            && args[0] != args[1];
        if !diagonal {
            return Err("origin node is not a diagonal candidate".into());
        }
        if arg != args[0] && arg != args[1] {
            return Err("concluded occurrence is not an argument of the origin node".into());
        }
        if d.premises[0] != Term::eq(args[0], args[1]).expect("diagonal args are distinct") {
            return Err("first premise is not the arguments' equality".into());
        }
        let src_ok = match (d.premises[1], t) {
            (Term::Ti(e, o), Term::Ti(..)) | (Term::Pi(e, o), Term::Pi(..)) => {
                e == node && (!self.config.feedback_guard || o.num != node)
            }
            _ => false,
        };
        src_ok
            .then_some(())
            .ok_or_else(|| "second premise is not a matching guarded inference on the node".into())
    }

    /// Basic-function metarules: the step must instantiate a rule of the
    /// claimed name from the node's operator table, with the feedback
    /// guards honoured.
    fn check_local_rule(&mut self, t: Term, d: &Derivation) -> Result<(), String> {
        gate(self.config.basic_rules, "basic_rules")?;
        // The node is recoverable from the conclusion: inferability
        // conclusions carry it as the origin; alterability conclusions are
        // always on the application itself (`Ret`).
        let (node, dir) = match t {
            Term::Ti(_, o) | Term::Pi(_, o) | Term::PiStar(_, _, o) => (o.num, Some(o.dir)),
            Term::Ta(e) | Term::Pa(e) => (e, None),
            Term::Eq(..) => return Err("no metarule concludes an equality".into()),
        };
        let NKind::Basic(op, args) = &self.node(node)?.kind else {
            return Err("conclusion does not identify a basic-function node".into());
        };
        let (op, args) = (*op, args.clone());
        let config = self.config;
        let mut last = String::from("no metarule of this name fits the operator");
        for rule in self.rules_of(op).iter().filter(|r| r.name == d.rule) {
            match rule_matches(config, rule, node, &args, t, dir, &d.premises) {
                Ok(()) => return Ok(()),
                Err(reason) => last = reason,
            }
        }
        Err(last)
    }
}

/// Does the derivation instantiate this metarule at `node`? Standalone so
/// the borrow on the rule table stays immutable.
fn rule_matches(
    config: &RuleConfig,
    rule: &LocalRule,
    node: ExprId,
    args: &[ExprId],
    t: Term,
    dir: Option<Dir>,
    premises: &[Term],
) -> Result<(), String> {
    let slot_expr = |s: Slot| -> Result<ExprId, String> {
        match s {
            Slot::Ret => Ok(node),
            Slot::Arg(i) => args
                .get(i)
                .copied()
                .ok_or_else(|| format!("rule slot arg{i} exceeds the node's arity")),
        }
    };
    // The conclusion's slot decides the origin direction and the guard.
    let conclusion_down = match rule.conclusion {
        LTerm::Cap(_, Slot::Ret) => true,
        LTerm::Cap(_, Slot::Arg(_)) => false,
        LTerm::PiStar(a, b) => matches!(a, Slot::Ret) || matches!(b, Slot::Ret),
    };
    let want_dir = if conclusion_down { Dir::Down } else { Dir::Up };
    let guard_ok = |o: Origin| -> bool {
        if !config.feedback_guard {
            return true;
        }
        if conclusion_down {
            !(o.num == node && o.dir == Dir::Up)
        } else {
            o.num != node
        }
    };

    // Conclusion pattern.
    let concluded = match (rule.conclusion, t) {
        // Alterability carries no origin; `dir` is None here.
        (LTerm::Cap(LCap::Ta, s), Term::Ta(e)) | (LTerm::Cap(LCap::Pa, s), Term::Pa(e)) => {
            slot_expr(s)? == e
        }
        (LTerm::Cap(LCap::Ti, s), Term::Ti(e, o)) | (LTerm::Cap(LCap::Pi, s), Term::Pi(e, o)) => {
            slot_expr(s)? == e && o == Origin::new(node, want_dir)
        }
        (LTerm::PiStar(s1, s2), Term::PiStar(u, v, o)) => {
            if !config.pi_star {
                return Err("pi_star rule group is disabled by the configuration".into());
            }
            let (a, b) = (slot_expr(s1)?, slot_expr(s2)?);
            Term::pi_star(a, b, o) == Some(t)
                && (u, v) == (a.min(b), a.max(b))
                && o == Origin::new(node, want_dir)
        }
        _ => false,
    };
    if !concluded {
        return Err("conclusion does not instantiate the rule's conclusion pattern".into());
    }
    if dir.is_some() && dir != Some(want_dir) {
        return Err("conclusion origin direction contradicts the rule's conclusion slot".into());
    }

    // Premises, in rule order.
    if premises.len() != rule.premises.len() {
        return Err(format!(
            "rule takes {} premises, derivation records {}",
            rule.premises.len(),
            premises.len()
        ));
    }
    for (pat, &p) in rule.premises.iter().zip(premises) {
        let ok = match (*pat, p) {
            (LTerm::Cap(LCap::Ta, s), Term::Ta(e)) => slot_expr(s)? == e,
            (LTerm::Cap(LCap::Pa, s), Term::Pa(e)) => slot_expr(s)? == e,
            (LTerm::Cap(LCap::Ti, s), Term::Ti(e, o)) => slot_expr(s)? == e && guard_ok(o),
            (LTerm::Cap(LCap::Pi, s), Term::Pi(e, o)) => slot_expr(s)? == e && guard_ok(o),
            (LTerm::PiStar(s1, s2), Term::PiStar(u, v, o)) => {
                if !config.pi_star {
                    return Err("pi_star rule group is disabled by the configuration".into());
                }
                let (a, b) = (slot_expr(s1)?, slot_expr(s2)?);
                (u, v) == (a.min(b), a.max(b)) && guard_ok(o)
            }
            _ => false,
        };
        if !ok {
            return Err(format!(
                "premise {p} does not instantiate the rule's premise pattern"
            ));
        }
    }
    Ok(())
}

fn expect_premises(d: &Derivation, n: usize) -> Result<(), String> {
    if d.premises.len() == n {
        Ok(())
    } else {
        Err(format!(
            "rule takes {n} premises, derivation records {}",
            d.premises.len()
        ))
    }
}

fn gate(enabled: bool, group: &str) -> Result<(), String> {
    if enabled {
        Ok(())
    } else {
        Err(format!(
            "rule group `{group}` is disabled by the configuration"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }
        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
    "#;

    fn closure_for(user: &str) -> (NProgram, Closure) {
        let schema = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str(user).unwrap()).unwrap();
        let c = Closure::compute(&prog).unwrap();
        (prog, c)
    }

    #[test]
    fn paper_fixture_certifies() {
        let config = RuleConfig::default();
        for user in ["clerk", "safe_clerk"] {
            let (prog, c) = closure_for(user);
            let cert = c.certify(&prog, &config).unwrap();
            assert_eq!(cert.terms_checked, c.len(), "{user}: all terms checked");
            assert_eq!(cert.axioms + cert.derived, cert.terms_checked);
            assert!(cert.axioms > 0, "{user}: closure grounds in axioms");
            let total: u64 = cert.rule_checks.iter().map(|(_, n)| n).sum();
            assert_eq!(total as usize, cert.terms_checked);
        }
    }

    #[test]
    fn proofless_closure_is_rejected() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let c = Closure::compute_with_mode(
            &prog,
            &RuleConfig::default(),
            crate::closure::DEFAULT_TERM_LIMIT,
            ProofMode::Off,
        )
        .unwrap();
        assert_eq!(
            c.certify(&prog, &RuleConfig::default()),
            Err(CheckError::NoProofs)
        );
    }

    #[test]
    fn wrong_label_is_a_bad_step() {
        let (prog, mut c) = closure_for("clerk");
        // `pa` on the budget read (occurrence 2) is derived, not an axiom.
        let victim = Term::Pa(2);
        assert!(c.contains(&victim));
        assert!(c.replace_proof(&victim, labels::AXIOM_TA, Vec::new()));
        let err = c.certify(&prog, &RuleConfig::default()).unwrap_err();
        match err {
            CheckError::BadStep { term, .. } => assert_eq!(term, victim),
            other => panic!("expected BadStep, got {other:?}"),
        }
    }

    #[test]
    fn self_premise_cycle_is_detected() {
        let (prog, mut c) = closure_for("clerk");
        let victim = Term::Pa(2);
        // A self-justifying lattice step: shape-valid, so only the
        // acyclicity pass can reject it.
        assert!(c.replace_proof(&victim, labels::LATTICE, vec![Term::Ta(2)]));
        if c.contains(&Term::Ta(2)) {
            c.replace_proof(&Term::Ta(2), labels::LATTICE, vec![Term::Ta(2)]);
            let err = c.certify(&prog, &RuleConfig::default()).unwrap_err();
            assert!(
                matches!(err, CheckError::Cyclic { .. } | CheckError::BadStep { .. }),
                "got {err:?}"
            );
        }
    }

    #[test]
    fn dangling_premise_is_detected() {
        let (prog, mut c) = closure_for("clerk");
        let victim = Term::Pa(2);
        let ghost = Term::Ta(9999);
        assert!(!c.contains(&ghost));
        assert!(c.replace_proof(&victim, labels::LATTICE, vec![ghost]));
        assert_eq!(
            c.certify(&prog, &RuleConfig::default()),
            Err(CheckError::DanglingPremise {
                term: victim,
                premise: ghost,
            })
        );
    }
}
