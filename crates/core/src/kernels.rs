//! SIMD-width bitset row kernels for the chunked saturation mode.
//!
//! The semi-naive engine's bulk dedup pre-checks all reduce to one row
//! primitive: *is `rowA \ (rowB ∪ except)` empty?* — an AND-NOT merge of
//! two bit rows OR-reduced to a single emptiness verdict. The scalar
//! engine evaluates it word-at-a-time with a per-word branch and a linear
//! `except: &[usize]` membership scan inside the loop (O(words × excepts)).
//!
//! This module provides the chunked replacement:
//!
//! * rows are padded to a fixed chunk width of [`CHUNK_WORDS`] × `u64`
//!   lanes (256 bits), so the inner loop is a fixed-trip-count lane loop
//!   with no tail handling — the shape LLVM's autovectorizer turns into
//!   full-width vector AND-NOT/OR without any explicit SIMD intrinsics
//!   (the crate forbids `unsafe`);
//! * the `except` set is precomputed into an [`ExceptMask`] — at most two
//!   (word, bit-mask) entries applied branch-free via compare-select, so
//!   the lane loop carries no data-dependent branches at all.
//!
//! Exactness matters more than speed here: these kernels gate *skipping*
//! derive work — whole scans when the difference row is empty
//! ([`row_diff_is_empty`]), and individual entries otherwise (the scan
//! walks in its original order but consults the materialized difference
//! row from [`row_diff_into`] one bit at a time) — so a false "empty"
//! would silently drop closure terms. [`reference`] keeps the original word-at-a-time scalar
//! implementation verbatim; `tests/kernel_differential.rs` duels the two
//! on random rows and exception sets, and the mode-differential suites pin
//! the engines built on top of them to byte-identical closures.

/// Fixed chunk width in `u64` words (4 × 64 = 256-bit lanes).
pub const CHUNK_WORDS: usize = 4;

/// Fixed chunk width in bits.
pub const CHUNK_BITS: usize = CHUNK_WORDS * 64;

/// Words per row for `bits` bits, padded up to a whole number of chunks.
#[inline]
pub fn padded_words(bits: usize) -> usize {
    bits.div_ceil(CHUNK_BITS) * CHUNK_WORDS
}

/// A precomputed exception mask: up to two bit positions a
/// [`row_diff_is_empty`] test must ignore.
///
/// Every bulk pre-check in the engine excludes at most two bits (the two
/// endpoints of the popped pair term), so two slots cover the rule set
/// exactly; the mask is applied per word with compare-select arithmetic,
/// never a scan. Unused slots point at an out-of-range word index and
/// select to zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExceptMask {
    words: [u32; 2],
    masks: [u64; 2],
}

impl ExceptMask {
    /// Ignore nothing.
    #[inline]
    pub fn none() -> ExceptMask {
        ExceptMask {
            words: [u32::MAX; 2],
            masks: [0; 2],
        }
    }

    /// Ignore one bit position.
    #[inline]
    pub fn one(bit: usize) -> ExceptMask {
        ExceptMask {
            words: [(bit / 64) as u32, u32::MAX],
            masks: [1u64 << (bit % 64), 0],
        }
    }

    /// Ignore two bit positions (they may coincide or share a word).
    #[inline]
    pub fn two(b1: usize, b2: usize) -> ExceptMask {
        ExceptMask {
            words: [(b1 / 64) as u32, (b2 / 64) as u32],
            masks: [1u64 << (b1 % 64), 1u64 << (b2 % 64)],
        }
    }

    /// Build from a slice of bit positions (≤ 2; the engine's rule set
    /// never needs more).
    pub fn from_bits(bits: &[usize]) -> ExceptMask {
        match *bits {
            [] => ExceptMask::none(),
            [a] => ExceptMask::one(a),
            [a, b] => ExceptMask::two(a, b),
            _ => panic!("ExceptMask holds at most two exception bits"),
        }
    }

    /// The bits to ignore inside word `w`, branch-free: each slot
    /// contributes its mask iff its word index equals `w`.
    #[inline]
    fn mask_for(&self, w: usize) -> u64 {
        let w = w as u32;
        let sel0 = 0u64.wrapping_sub((self.words[0] == w) as u64);
        let sel1 = 0u64.wrapping_sub((self.words[1] == w) as u64);
        (self.masks[0] & sel0) | (self.masks[1] & sel1)
    }
}

/// Is `a \ (b ∪ except)` empty, where `a` and `b` are chunk-padded bit
/// rows of equal width?
///
/// The bulk form of the dedup pre-check: when every conclusion a join scan
/// could produce is already mirrored in `b`, the whole scan would dedup
/// and can be skipped in O(row chunks). The loop visits whole chunks —
/// [`CHUNK_WORDS`] lanes of AND-NOT merged into one OR accumulator — and
/// branches once per *chunk* (the early exit), never per word.
#[inline]
pub fn row_diff_is_empty(a: &[u64], b: &[u64], except: ExceptMask) -> bool {
    debug_assert_eq!(a.len(), b.len(), "rows must have equal width");
    debug_assert_eq!(a.len() % CHUNK_WORDS, 0, "rows must be chunk-padded");
    for (ci, (ca, cb)) in a
        .chunks_exact(CHUNK_WORDS)
        .zip(b.chunks_exact(CHUNK_WORDS))
        .enumerate()
    {
        let base = ci * CHUNK_WORDS;
        let mut acc = 0u64;
        for lane in 0..CHUNK_WORDS {
            acc |= ca[lane] & !cb[lane] & !except.mask_for(base + lane);
        }
        if acc != 0 {
            return false;
        }
    }
    true
}

/// Materialize `a \ (b ∪ except)` into `out` (resized to match) and
/// report whether any bit survived.
///
/// The scan-prefilter form of [`row_diff_is_empty`]: when the difference
/// is *not* empty, the engine still has to walk the adjacency list in
/// insertion order (that order is part of the byte-identical output
/// contract), but it only needs to call into the derive path for
/// candidates whose bit is set here — everything else is already mirrored
/// and would dedup. Same fixed-lane chunk loop, with the OR-reduction
/// accumulated alongside the stores.
#[inline]
pub fn row_diff_into(a: &[u64], b: &[u64], except: ExceptMask, out: &mut Vec<u64>) -> bool {
    debug_assert_eq!(a.len(), b.len(), "rows must have equal width");
    debug_assert_eq!(a.len() % CHUNK_WORDS, 0, "rows must be chunk-padded");
    out.clear();
    out.resize(a.len(), 0);
    let mut any = 0u64;
    for (ci, ((ca, cb), co)) in a
        .chunks_exact(CHUNK_WORDS)
        .zip(b.chunks_exact(CHUNK_WORDS))
        .zip(out.chunks_exact_mut(CHUNK_WORDS))
        .enumerate()
    {
        let base = ci * CHUNK_WORDS;
        for lane in 0..CHUNK_WORDS {
            let d = ca[lane] & !cb[lane] & !except.mask_for(base + lane);
            co[lane] = d;
            any |= d;
        }
    }
    any != 0
}

/// As [`row_diff_into`] with an all-zero `b` row: `a \ except`. Covers the
/// (defensive) case where the subtrahend grid has not been allocated yet.
#[inline]
pub fn row_copy_except_into(a: &[u64], except: ExceptMask, out: &mut Vec<u64>) -> bool {
    debug_assert_eq!(a.len() % CHUNK_WORDS, 0, "rows must be chunk-padded");
    out.clear();
    out.resize(a.len(), 0);
    let mut any = 0u64;
    for (ci, (ca, co)) in a
        .chunks_exact(CHUNK_WORDS)
        .zip(out.chunks_exact_mut(CHUNK_WORDS))
        .enumerate()
    {
        let base = ci * CHUNK_WORDS;
        for lane in 0..CHUNK_WORDS {
            let d = ca[lane] & !except.mask_for(base + lane);
            co[lane] = d;
            any |= d;
        }
    }
    any != 0
}

/// Is `bit` set in the (chunk-padded) row?
#[inline]
pub fn row_bit(row: &[u64], bit: usize) -> bool {
    (row[bit / 64] >> (bit % 64)) & 1 != 0
}

/// Clear `bit` in the row. Scan prefilters clear a candidate's bit once it
/// has been visited, so adjacency lists carrying the same candidate under
/// several origins attempt its (single) conclusion only once per scan.
#[inline]
pub fn row_clear_bit(row: &mut [u64], bit: usize) {
    row[bit / 64] &= !(1u64 << (bit % 64));
}

/// OR row `src` into row `dst` (chunk-padded, equal width): the row-merge
/// primitive, written as the same fixed-lane loop so the autovectorizer
/// emits full-width vector ORs.
#[inline]
pub fn row_or_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "rows must have equal width");
    debug_assert_eq!(dst.len() % CHUNK_WORDS, 0, "rows must be chunk-padded");
    for (cd, cs) in dst
        .chunks_exact_mut(CHUNK_WORDS)
        .zip(src.chunks_exact(CHUNK_WORDS))
    {
        for lane in 0..CHUNK_WORDS {
            cd[lane] |= cs[lane];
        }
    }
}

/// Retained scalar reference implementations, kept verbatim from the
/// pre-chunking engine as the dueling partner for
/// `tests/kernel_differential.rs` (and still what
/// [`SaturationMode::SemiNaive`](crate::closure::SaturationMode) runs on).
pub mod reference {
    /// Word-at-a-time `a \ (b ∪ except)` emptiness with a linear `except`
    /// membership scan inside the word loop — the original O(words ×
    /// excepts) shape the chunked kernel replaces. Accepts unpadded rows.
    #[inline]
    pub fn row_diff_is_empty(a: &[u64], b: &[u64], except: &[usize]) -> bool {
        debug_assert_eq!(a.len(), b.len(), "rows must have equal width");
        for w in 0..a.len() {
            let mut diff = a[w] & !b[w];
            for &e in except {
                if e / 64 == w {
                    diff &= !(1u64 << (e % 64));
                }
            }
            if diff != 0 {
                return false;
            }
        }
        true
    }

    /// Word-at-a-time row OR.
    #[inline]
    pub fn row_or_into(dst: &mut [u64], src: &[u64]) {
        debug_assert_eq!(dst.len(), src.len(), "rows must have equal width");
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d |= *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_with(bits: &[usize], words: usize) -> Vec<u64> {
        let mut row = vec![0u64; words];
        for &b in bits {
            row[b / 64] |= 1u64 << (b % 64);
        }
        row
    }

    #[test]
    fn padding_rounds_up_to_whole_chunks() {
        assert_eq!(padded_words(0), 0);
        assert_eq!(padded_words(1), CHUNK_WORDS);
        assert_eq!(padded_words(256), CHUNK_WORDS);
        assert_eq!(padded_words(257), 2 * CHUNK_WORDS);
        assert_eq!(padded_words(1024), 4 * CHUNK_WORDS);
    }

    #[test]
    fn diff_detects_and_ignores_bits() {
        let w = padded_words(300);
        let a = row_with(&[3, 64, 299], w);
        let b = row_with(&[3], w);
        assert!(!row_diff_is_empty(&a, &b, ExceptMask::none()));
        assert!(!row_diff_is_empty(&a, &b, ExceptMask::one(64)));
        assert!(row_diff_is_empty(&a, &b, ExceptMask::two(64, 299)));
        assert!(row_diff_is_empty(&a, &a, ExceptMask::none()));
        // b ⊇ a is fine; a ⊉ b is irrelevant to the diff direction.
        let sup = row_with(&[3, 5, 64, 200, 299], w);
        assert!(row_diff_is_empty(&a, &sup, ExceptMask::none()));
        // sup \ a = {5, 200}: excepting one leaves the other.
        assert!(!row_diff_is_empty(&sup, &a, ExceptMask::one(5)));
        assert!(row_diff_is_empty(&sup, &a, ExceptMask::two(5, 200)));
    }

    /// The satellite fix pinned: multiple exception bits — including two in
    /// the *same* word, duplicated bits, and exceptions in different words
    /// — behave exactly like the reference's linear scan.
    #[test]
    fn multi_exception_rows_match_reference() {
        let w = padded_words(520);
        let cases: &[(&[usize], &[usize], &[usize])] = &[
            // (a bits, b bits, except bits)
            (&[0, 1], &[], &[0, 1]),         // both exceptions in word 0
            (&[0, 1], &[], &[1, 0]),         // order-insensitive
            (&[63, 64], &[], &[63, 64]),     // straddling a word boundary
            (&[100, 100], &[], &[100, 100]), // duplicated exception bit
            (&[7, 300], &[300], &[7]),       // one masked by b, one excepted
            (&[7, 300], &[], &[7]),          // 300 survives → not empty
            (&[511, 519], &[511], &[519]),   // high bits near padding
        ];
        for (abits, bbits, ex) in cases {
            let a = row_with(abits, w);
            let b = row_with(bbits, w);
            let chunked = row_diff_is_empty(&a, &b, ExceptMask::from_bits(ex));
            let scalar = reference::row_diff_is_empty(&a, &b, ex);
            assert_eq!(
                chunked, scalar,
                "diverged on a={abits:?} b={bbits:?} except={ex:?}"
            );
        }
    }

    #[test]
    fn diff_into_materializes_the_exact_difference() {
        let w = padded_words(300);
        let a = row_with(&[3, 5, 64, 200, 299], w);
        let b = row_with(&[3, 299], w);
        let mut out = Vec::new();
        assert!(row_diff_into(&a, &b, ExceptMask::one(200), &mut out));
        assert_eq!(out, row_with(&[5, 64], w));
        for bit in [0, 3, 5, 64, 200, 299] {
            assert_eq!(row_bit(&out, bit), bit == 5 || bit == 64);
        }
        // Emptiness verdict agrees with row_diff_is_empty.
        let b2 = row_with(&[3, 200, 299], w);
        assert!(!row_diff_into(&a, &b2, ExceptMask::two(5, 64), &mut out));
        assert!(row_diff_is_empty(&a, &b2, ExceptMask::two(5, 64)));
        assert_eq!(out, vec![0u64; w]);
        // Zero-subtrahend variant.
        let mut out2 = Vec::new();
        assert!(row_copy_except_into(&a, ExceptMask::two(3, 299), &mut out2));
        assert_eq!(out2, row_with(&[5, 64, 200], w));
    }

    #[test]
    fn or_merge_matches_reference() {
        let w = padded_words(300);
        let mut d1 = row_with(&[1, 65, 129], w);
        let mut d2 = d1.clone();
        let src = row_with(&[2, 65, 299], w);
        row_or_into(&mut d1, &src);
        reference::row_or_into(&mut d2, &src);
        assert_eq!(d1, d2);
        assert_eq!(d1, row_with(&[1, 2, 65, 129, 299], w));
    }
}
