//! Unfolding and numbering: building `S'(F)` (§4.1).
//!
//! Given a set `F` of granted functions we
//!
//! 1. take each member as an *outer-most function* whose arguments the user
//!    supplies directly in queries;
//! 2. recursively replace every inner access-function invocation
//!    `f(e1,…,en)` by `let(f) x1=e1, …, xn=en in body end` (recursion-free
//!    schemas guarantee termination);
//! 3. assign each subexpression occurrence a serial number `k` in
//!    *evaluation order* (arguments before the applying node, bindings
//!    before bodies, left to right), exactly the numbering of the paper's
//!    §4.2 example:
//!
//!    ```text
//!    checkBudget(broker):
//!      7>=( 2r_budget(1broker), 6*( 3 10, 5r_salary(4broker) ) )
//!    w_budget(o, v):
//!      10w_budget(8o, 9v)
//!    ```
//!
//! Numbered expressions live in a flat arena ([`NProgram`]); identities are
//! the serial numbers themselves ([`ExprId`], 1-based — 0 is reserved for
//! the "outer observation" origin of inferability axioms on function
//! results).

use oodb_lang::ast::{Expr, Literal};
use oodb_lang::typeck::fn_ref_signature;
use oodb_lang::{BasicOp, Schema};
use oodb_model::{AttrName, CapabilityList, ClassName, FnName, FnRef, Type, VarName};
use std::fmt;

/// Serial number of a numbered subexpression occurrence (1-based).
pub type ExprId = u32;

/// What a numbered occurrence is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NKind {
    /// A constant in program code.
    Const(Literal),
    /// An occurrence of an argument variable of an outer-most function.
    ArgVar {
        /// Index into [`NProgram::outers`].
        outer: usize,
        /// Parameter position within that outer function.
        param: usize,
        /// Display name.
        name: VarName,
    },
    /// An occurrence of a `let`-bound variable.
    LetVar {
        /// Serial number of the binding's right-hand side expression.
        binding: ExprId,
        /// Display name.
        name: VarName,
    },
    /// A basic-function application.
    Basic(BasicOp, Vec<ExprId>),
    /// `r_att(recv)`.
    Read(AttrName, ExprId),
    /// `w_att(recv, val)`.
    Write(AttrName, ExprId, ExprId),
    /// `new C(args…)`; arguments are paired with the attribute each one
    /// initialises (class-declaration order).
    New(ClassName, Vec<(AttrName, ExprId)>),
    /// A `let` form. `origin` is `Some(f)` when this is an unfolded
    /// invocation of access function `f` (the paper's `let(f)` marker),
    /// `None` for source-level `let`s.
    Let {
        /// `Some(f)` when produced by unfolding a call of `f`.
        origin: Option<FnName>,
        /// Bindings in evaluation order; the ids are the RHS expressions.
        bindings: Vec<(VarName, ExprId)>,
        /// Body expression.
        body: ExprId,
    },
}

impl NKind {
    /// The child occurrence ids this node mentions structurally, in
    /// evaluation order. A `LetVar` mentions its binding (the occurrence
    /// the variable denotes); `Let` lists binding right-hand sides before
    /// the body. Used by the demand slicer to walk the program without
    /// matching on every variant.
    pub fn operands(&self) -> Vec<ExprId> {
        match self {
            NKind::Const(_) | NKind::ArgVar { .. } => Vec::new(),
            NKind::LetVar { binding, .. } => vec![*binding],
            NKind::Basic(_, args) => args.clone(),
            NKind::Read(_, recv) => vec![*recv],
            NKind::Write(_, recv, val) => vec![*recv, *val],
            NKind::New(_, args) => args.iter().map(|(_, a)| *a).collect(),
            NKind::Let { bindings, body, .. } => bindings
                .iter()
                .map(|(_, rhs)| *rhs)
                .chain(std::iter::once(*body))
                .collect(),
        }
    }
}

/// One numbered subexpression occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NExpr {
    /// Serial number.
    pub id: ExprId,
    /// Structure.
    pub kind: NKind,
    /// Static type.
    pub ty: Type,
}

/// One outer-most function from the capability list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outer {
    /// Which granted function this is.
    pub fn_ref: FnRef,
    /// Fresh argument variables and their types.
    pub params: Vec<(VarName, Type)>,
    /// Return type.
    pub ret: Type,
    /// The root expression: the unfolded body for access functions, the
    /// `Read`/`Write`/`New` node for special functions.
    pub root: ExprId,
}

/// Errors during unfolding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnfoldError {
    /// A granted function does not exist in the schema.
    UnknownFn(FnRef),
    /// The unfolded program exceeded the size limit — only possible for
    /// pathological call pyramids (unfolding is worst-case exponential in
    /// call depth).
    TooLarge {
        /// The limit that was hit.
        limit: usize,
    },
    /// Internal error: the schema was not type checked (unbound variable or
    /// unknown callee encountered).
    Malformed(String),
    /// A basic-function application with more arguments than the engine's
    /// fixed-width slot encoding supports. Rejected here, at unfold time,
    /// because the closure engine stores the arity in a small fixed field —
    /// letting an oversized application through would silently truncate it
    /// and mis-dispatch the per-operator metarules.
    ArityOverflow {
        /// The operator's symbol.
        op: &'static str,
        /// The offending argument count.
        arity: usize,
        /// The supported maximum ([`MAX_BASIC_ARITY`]).
        limit: usize,
    },
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::UnknownFn(r) => write!(f, "granted function `{r}` is not in the schema"),
            UnfoldError::TooLarge { limit } => {
                write!(f, "unfolded program exceeds {limit} nodes")
            }
            UnfoldError::Malformed(m) => write!(f, "schema not type-checked: {m}"),
            UnfoldError::ArityOverflow { op, arity, limit } => write!(
                f,
                "basic function `{op}` applied to {arity} arguments; at most {limit} are supported"
            ),
        }
    }
}

impl std::error::Error for UnfoldError {}

/// Default node budget for unfolding.
pub const DEFAULT_NODE_LIMIT: usize = 200_000;

/// Maximum supported arity of a basic-function application. Basic operators
/// are unary or binary; the headroom matches the closure engine's inline
/// slot encoding, which this bound protects from overflow.
pub const MAX_BASIC_ARITY: usize = 4;

/// The numbered, unfolded program `S'(F)`.
#[derive(Clone, Debug, Default)]
pub struct NProgram {
    exprs: Vec<NExpr>,
    /// The outer-most functions, in capability-list order.
    pub outers: Vec<Outer>,
}

#[derive(Clone)]
enum VarTarget {
    Arg { outer: usize, param: usize },
    LetBound { binding: ExprId },
}

struct Builder<'s> {
    schema: &'s Schema,
    prog: NProgram,
    limit: usize,
}

impl NProgram {
    /// Unfold a capability list against a (type-checked) schema.
    pub fn unfold(schema: &Schema, caps: &CapabilityList) -> Result<NProgram, UnfoldError> {
        Self::unfold_with_limit(schema, caps, DEFAULT_NODE_LIMIT)
    }

    /// Unfold with an explicit node budget.
    pub fn unfold_with_limit(
        schema: &Schema,
        caps: &CapabilityList,
        limit: usize,
    ) -> Result<NProgram, UnfoldError> {
        let mut b = Builder {
            schema,
            prog: NProgram::default(),
            limit,
        };
        for fn_ref in caps.iter() {
            b.outer(fn_ref)?;
        }
        Ok(b.prog)
    }

    /// Number of numbered occurrences.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// Look up an occurrence (panics on id 0 or out of range — ids come from
    /// this program).
    pub fn get(&self, id: ExprId) -> &NExpr {
        &self.exprs[(id - 1) as usize]
    }

    /// Iterate over all occurrences in numbering order.
    pub fn iter(&self) -> impl Iterator<Item = &NExpr> {
        self.exprs.iter()
    }

    /// Index of the outer-most function an occurrence belongs to.
    pub fn outer_index_of(&self, id: ExprId) -> Option<usize> {
        let mut lo = 1;
        for (idx, outer) in self.outers.iter().enumerate() {
            let hi = self.span_end(outer.root);
            if (lo..=hi).contains(&id) {
                return Some(idx);
            }
            lo = hi + 1;
        }
        None
    }

    /// The outer-most function an occurrence belongs to.
    pub fn outer_of(&self, id: ExprId) -> Option<&Outer> {
        // Outers own disjoint, contiguous id ranges ending at their root.
        let mut lo = 1;
        for outer in &self.outers {
            let hi = self.span_end(outer.root);
            if (lo..=hi).contains(&id) {
                return Some(outer);
            }
            lo = hi + 1;
        }
        None
    }

    fn span_end(&self, root: ExprId) -> ExprId {
        // Ids are assigned post-order, so the root has the largest id of its
        // subtree.
        root
    }

    /// Render an occurrence in the paper's numbered notation, e.g.
    /// `7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker)))`.
    pub fn render(&self, id: ExprId) -> String {
        let mut s = String::new();
        self.render_into(id, &mut s);
        s
    }

    fn render_into(&self, id: ExprId, out: &mut String) {
        use std::fmt::Write;
        let e = self.get(id);
        let _ = write!(out, "{}", e.id);
        match &e.kind {
            NKind::Const(l) => {
                let _ = write!(out, ":{l}");
            }
            NKind::ArgVar { name, .. } | NKind::LetVar { name, .. } => {
                let _ = write!(out, "{name}");
            }
            NKind::Basic(op, args) => {
                let _ = write!(out, "{}(", op.symbol());
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render_into(*a, out);
                }
                out.push(')');
            }
            NKind::Read(attr, recv) => {
                let _ = write!(out, "r_{attr}(");
                self.render_into(*recv, out);
                out.push(')');
            }
            NKind::Write(attr, recv, val) => {
                let _ = write!(out, "w_{attr}(");
                self.render_into(*recv, out);
                out.push_str(", ");
                self.render_into(*val, out);
                out.push(')');
            }
            NKind::New(class, args) => {
                let _ = write!(out, "new {class}(");
                for (i, (_, a)) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render_into(*a, out);
                }
                out.push(')');
            }
            NKind::Let {
                origin,
                bindings,
                body,
            } => {
                match origin {
                    Some(f) => {
                        let _ = write!(out, "let({f}) ");
                    }
                    None => out.push_str("let "),
                }
                for (i, (name, rhs)) in bindings.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{name}=");
                    self.render_into(*rhs, out);
                }
                out.push_str(" in ");
                self.render_into(*body, out);
                out.push_str(" end");
            }
        }
    }

    /// A short rendering (node only, children as bare numbers) used in
    /// compact proofs.
    pub fn render_shallow(&self, id: ExprId) -> String {
        let e = self.get(id);
        match &e.kind {
            NKind::Const(l) => format!("{}:{l}", e.id),
            NKind::ArgVar { name, .. } | NKind::LetVar { name, .. } => format!("{}{name}", e.id),
            NKind::Basic(op, args) => format!(
                "{}{}({})",
                e.id,
                op.symbol(),
                args.iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            NKind::Read(attr, recv) => format!("{}r_{attr}({recv})", e.id),
            NKind::Write(attr, recv, val) => format!("{}w_{attr}({recv},{val})", e.id),
            NKind::New(class, args) => format!(
                "{}new {class}({})",
                e.id,
                args.iter()
                    .map(|(_, a)| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            NKind::Let { origin, body, .. } => match origin {
                Some(f) => format!("{}let({f})…in {body}", e.id),
                None => format!("{}let…in {body}", e.id),
            },
        }
    }
}

/// Every occurrence in a program touching one attribute, grouped by role.
///
/// The write-read, constructor-read and attribute-congruence rules of
/// Table 2 only ever connect expressions drawn from these site lists, so
/// the demand slicer can treat each attribute as one equality "hub":
/// once any read, written value or constructor argument of the attribute
/// is relevant, the whole hub (plus the supporting receivers and
/// constructor nodes the rule premises mention) must be, and nothing
/// outside it can reach the goal through that attribute.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttrSites {
    /// `r_att(recv)` nodes.
    pub reads: Vec<ExprId>,
    /// Receivers of `w_att(recv, val)` nodes.
    pub write_receivers: Vec<ExprId>,
    /// Written values of `w_att(recv, val)` nodes.
    pub write_values: Vec<ExprId>,
    /// `new C(…)` nodes that initialise the attribute.
    pub ctor_nodes: Vec<ExprId>,
    /// Constructor arguments that initialise the attribute.
    pub ctor_args: Vec<ExprId>,
}

impl NProgram {
    /// Per-attribute site lists, in first-seen order of the attributes.
    pub fn attr_sites(&self) -> Vec<(AttrName, AttrSites)> {
        let mut out: Vec<(AttrName, AttrSites)> = Vec::new();
        fn entry<'a>(
            out: &'a mut Vec<(AttrName, AttrSites)>,
            attr: &AttrName,
        ) -> &'a mut AttrSites {
            match out.iter().position(|(a, _)| a == attr) {
                Some(i) => &mut out[i].1,
                None => {
                    out.push((attr.clone(), AttrSites::default()));
                    &mut out.last_mut().expect("just pushed").1
                }
            }
        }
        for e in self.iter() {
            match &e.kind {
                NKind::Read(attr, _) => entry(&mut out, attr).reads.push(e.id),
                NKind::Write(attr, recv, val) => {
                    let s = entry(&mut out, attr);
                    s.write_receivers.push(*recv);
                    s.write_values.push(*val);
                }
                NKind::New(_, args) => {
                    for (attr, arg) in args {
                        let s = entry(&mut out, attr);
                        s.ctor_nodes.push(e.id);
                        s.ctor_args.push(*arg);
                    }
                }
                _ => {}
            }
        }
        out
    }
}

impl Builder<'_> {
    fn push(&mut self, kind: NKind, ty: Type) -> Result<ExprId, UnfoldError> {
        if self.prog.exprs.len() >= self.limit {
            return Err(UnfoldError::TooLarge { limit: self.limit });
        }
        let id = (self.prog.exprs.len() + 1) as ExprId;
        self.prog.exprs.push(NExpr { id, kind, ty });
        Ok(id)
    }

    fn outer(&mut self, fn_ref: &FnRef) -> Result<(), UnfoldError> {
        let outer_idx = self.prog.outers.len();
        match fn_ref {
            FnRef::Access(name) => {
                let def = self
                    .schema
                    .function(name)
                    .ok_or_else(|| UnfoldError::UnknownFn(fn_ref.clone()))?
                    .clone();
                // Reserve the Outer before unfolding so ArgVar nodes can
                // point at it.
                self.prog.outers.push(Outer {
                    fn_ref: fn_ref.clone(),
                    params: def.params.clone(),
                    ret: def.ret.clone(),
                    root: 0,
                });
                let scope: Vec<(VarName, VarTarget, Type)> = def
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, (p, t))| {
                        (
                            p.clone(),
                            VarTarget::Arg {
                                outer: outer_idx,
                                param: i,
                            },
                            t.clone(),
                        )
                    })
                    .collect();
                let root = self.unfold_expr(&def.body, &scope)?;
                self.prog.outers[outer_idx].root = root;
                Ok(())
            }
            FnRef::Read(_) | FnRef::Write(_) | FnRef::New(_) => {
                // Special functions: the root is the primitive node applied
                // to fresh argument variables. Where an attribute is
                // declared by several classes, unfold one outer per
                // declaring class (the paper's requirement semantics ranges
                // over all implementations).
                let signatures: Vec<(Vec<Type>, Type)> = match fn_ref {
                    FnRef::Read(attr) | FnRef::Write(attr) => {
                        let classes: Vec<ClassName> =
                            oodb_lang::typeck::attr_decls(self.schema, attr)
                                .into_iter()
                                .map(|(c, _)| c.clone())
                                .collect();
                        if classes.is_empty() {
                            return Err(UnfoldError::UnknownFn(fn_ref.clone()));
                        }
                        classes
                            .iter()
                            .map(|c| {
                                fn_ref_signature(self.schema, fn_ref, Some(c))
                                    .map_err(|e| UnfoldError::Malformed(e.to_string()))
                            })
                            .collect::<Result<_, _>>()?
                    }
                    FnRef::New(_) => vec![fn_ref_signature(self.schema, fn_ref, None)
                        .map_err(|_| UnfoldError::UnknownFn(fn_ref.clone()))?],
                    FnRef::Access(_) => unreachable!("outer match handles access"),
                };
                for (arg_tys, ret) in signatures {
                    let outer_idx = self.prog.outers.len();
                    let params: Vec<(VarName, Type)> = arg_tys
                        .iter()
                        .enumerate()
                        .map(|(i, t)| (VarName::new(format!("a{}", i + 1)), t.clone()))
                        .collect();
                    self.prog.outers.push(Outer {
                        fn_ref: fn_ref.clone(),
                        params: params.clone(),
                        ret: ret.clone(),
                        root: 0,
                    });
                    let mut arg_ids = Vec::with_capacity(params.len());
                    for (i, (p, t)) in params.iter().enumerate() {
                        let id = self.push(
                            NKind::ArgVar {
                                outer: outer_idx,
                                param: i,
                                name: p.clone(),
                            },
                            t.clone(),
                        )?;
                        arg_ids.push(id);
                    }
                    let root = match fn_ref {
                        FnRef::Read(attr) => {
                            self.push(NKind::Read(attr.clone(), arg_ids[0]), ret.clone())?
                        }
                        FnRef::Write(attr) => self.push(
                            NKind::Write(attr.clone(), arg_ids[0], arg_ids[1]),
                            ret.clone(),
                        )?,
                        FnRef::New(class) => {
                            let attr_names: Vec<AttrName> = self
                                .schema
                                .classes
                                .get(class)
                                .map(|d| d.attrs.iter().map(|a| a.name.clone()).collect())
                                .ok_or_else(|| UnfoldError::UnknownFn(fn_ref.clone()))?;
                            let paired = attr_names.into_iter().zip(arg_ids).collect();
                            self.push(NKind::New(class.clone(), paired), ret.clone())?
                        }
                        FnRef::Access(_) => unreachable!("outer match handles access"),
                    };
                    self.prog.outers[outer_idx].root = root;
                }
                Ok(())
            }
        }
    }

    fn unfold_expr(
        &mut self,
        expr: &Expr,
        scope: &[(VarName, VarTarget, Type)],
    ) -> Result<ExprId, UnfoldError> {
        match expr {
            Expr::Const(l) => self.push(NKind::Const(l.clone()), l.ty()),
            Expr::Var(v) => {
                let (_, target, ty) = scope
                    .iter()
                    .rev()
                    .find(|(n, _, _)| n == v)
                    .ok_or_else(|| UnfoldError::Malformed(format!("unbound variable `{v}`")))?;
                let kind = match target {
                    VarTarget::Arg { outer, param } => NKind::ArgVar {
                        outer: *outer,
                        param: *param,
                        name: v.clone(),
                    },
                    VarTarget::LetBound { binding } => NKind::LetVar {
                        binding: *binding,
                        name: v.clone(),
                    },
                };
                self.push(kind, ty.clone())
            }
            Expr::Basic(op, args) => {
                if args.len() > MAX_BASIC_ARITY {
                    return Err(UnfoldError::ArityOverflow {
                        op: op.symbol(),
                        arity: args.len(),
                        limit: MAX_BASIC_ARITY,
                    });
                }
                let mut ids = Vec::with_capacity(args.len());
                for a in args {
                    ids.push(self.unfold_expr(a, scope)?);
                }
                let ty = basic_result_type(*op);
                self.push(NKind::Basic(*op, ids), ty)
            }
            Expr::Read(attr, recv) => {
                let r = self.unfold_expr(recv, scope)?;
                let recv_ty = self.prog.get(r).ty.clone();
                let class = recv_ty
                    .as_class()
                    .ok_or_else(|| UnfoldError::Malformed("read on non-object".into()))?;
                let ty = self
                    .schema
                    .classes
                    .get(class)
                    .and_then(|c| c.attr_type(attr))
                    .cloned()
                    .ok_or_else(|| {
                        UnfoldError::Malformed(format!("unknown attribute `{class}.{attr}`"))
                    })?;
                self.push(NKind::Read(attr.clone(), r), ty)
            }
            Expr::Write(attr, recv, val) => {
                let r = self.unfold_expr(recv, scope)?;
                let v = self.unfold_expr(val, scope)?;
                self.push(NKind::Write(attr.clone(), r, v), Type::Null)
            }
            Expr::New(class, args) => {
                let attr_names: Vec<AttrName> = self
                    .schema
                    .classes
                    .get(class)
                    .map(|d| d.attrs.iter().map(|a| a.name.clone()).collect())
                    .ok_or_else(|| UnfoldError::Malformed(format!("unknown class `{class}`")))?;
                let mut ids = Vec::with_capacity(args.len());
                for a in args {
                    ids.push(self.unfold_expr(a, scope)?);
                }
                let paired = attr_names.into_iter().zip(ids).collect();
                self.push(
                    NKind::New(class.clone(), paired),
                    Type::Class(class.clone()),
                )
            }
            Expr::Let { bindings, body } => {
                let mut scope2 = scope.to_vec();
                let mut bound = Vec::with_capacity(bindings.len());
                for (name, value) in bindings {
                    let rhs = self.unfold_expr(value, &scope2)?;
                    let ty = self.prog.get(rhs).ty.clone();
                    scope2.push((name.clone(), VarTarget::LetBound { binding: rhs }, ty));
                    bound.push((name.clone(), rhs));
                }
                let b = self.unfold_expr(body, &scope2)?;
                let ty = self.prog.get(b).ty.clone();
                self.push(
                    NKind::Let {
                        origin: None,
                        bindings: bound,
                        body: b,
                    },
                    ty,
                )
            }
            Expr::Call(name, args) => {
                // f(e1,…,en)  ⇒  let(f) x1=e1',…,xn=en' in body' end
                let def = self
                    .schema
                    .function(name)
                    .ok_or_else(|| UnfoldError::Malformed(format!("unknown function `{name}`")))?
                    .clone();
                let mut bound = Vec::with_capacity(args.len());
                let mut callee_scope = Vec::with_capacity(args.len());
                for (a, (p, t)) in args.iter().zip(&def.params) {
                    let rhs = self.unfold_expr(a, scope)?;
                    bound.push((p.clone(), rhs));
                    callee_scope.push((p.clone(), VarTarget::LetBound { binding: rhs }, t.clone()));
                }
                let b = self.unfold_expr(&def.body, &callee_scope)?;
                self.push(
                    NKind::Let {
                        origin: Some(name.clone()),
                        bindings: bound,
                        body: b,
                    },
                    def.ret.clone(),
                )
            }
        }
    }
}

fn basic_result_type(op: BasicOp) -> Type {
    use BasicOp::*;
    match op {
        Add | Sub | Mul | Div | Mod | Neg => Type::INT,
        Ge | Gt | Le | Lt | EqOp | NeOp | And | Or | Not => Type::BOOL,
        Concat => Type::STR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    fn stockbroker() -> Schema {
        parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn paper_numbering_reproduced() {
        // §4.2: checkBudget unfolds to
        //   7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker)))
        // and w_budget(o, v) to 10w_budget(8o, 9v).
        let schema = stockbroker();
        let caps = schema.user_str("clerk").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        assert_eq!(p.outers.len(), 2);
        // Capability lists iterate in order: checkBudget < w_budget.
        let check = &p.outers[0];
        assert_eq!(check.fn_ref, FnRef::access("checkBudget"));
        assert_eq!(check.root, 7);
        assert_eq!(
            p.render(check.root),
            "7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker)))"
        );
        let w = &p.outers[1];
        assert_eq!(w.fn_ref, FnRef::write("budget"));
        assert_eq!(w.root, 10);
        assert_eq!(p.render(w.root), "10w_budget(8a1, 9a2)");
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn types_assigned() {
        let schema = stockbroker();
        let caps = schema.user_str("clerk").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        assert_eq!(p.get(1).ty, Type::class("Broker")); // 1broker
        assert_eq!(p.get(2).ty, Type::INT); // r_budget
        assert_eq!(p.get(3).ty, Type::INT); // 10
        assert_eq!(p.get(7).ty, Type::BOOL); // >=
        assert_eq!(p.get(10).ty, Type::Null); // w_budget
    }

    #[test]
    fn inner_calls_become_lets() {
        // The paper's F = {f(x), r_name(person)} with f(x) = +(g(x),1),
        // g(y) = r_age(y):
        //   6+(4let(g) y=1x in 3r_age(2y) end, 5:1), plus r_name outer.
        let schema = parse_schema(
            r#"
            class Person { name: string, age: int }
            fn g(y: Person): int { r_age(y) }
            fn f(x: Person): int { g(x) + 1 }
            user u { f, r_name }
            "#,
        )
        .unwrap();
        let caps = schema.user_str("u").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        let f = &p.outers[0];
        assert_eq!(p.render(f.root), "6+(4let(g) y=1x in 3r_age(2y) end, 5:1)");
        let r = &p.outers[1];
        assert_eq!(p.render(r.root), "8r_name(7a1)");
        // The let-var occurrence points at its binding.
        match &p.get(2).kind {
            NKind::LetVar { binding, name } => {
                assert_eq!(*binding, 1);
                assert_eq!(name.as_str(), "y");
            }
            other => panic!("expected LetVar, got {other:?}"),
        }
    }

    #[test]
    fn outer_of_identifies_ranges() {
        let schema = stockbroker();
        let caps = schema.user_str("clerk").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        assert_eq!(p.outer_of(1).unwrap().fn_ref, FnRef::access("checkBudget"));
        assert_eq!(p.outer_of(7).unwrap().fn_ref, FnRef::access("checkBudget"));
        assert_eq!(p.outer_of(8).unwrap().fn_ref, FnRef::write("budget"));
        assert_eq!(p.outer_of(10).unwrap().fn_ref, FnRef::write("budget"));
        assert!(p.outer_of(11).is_none());
    }

    #[test]
    fn unknown_capability_is_error() {
        let schema = stockbroker();
        let caps: CapabilityList = [FnRef::access("ghost")].into_iter().collect();
        assert!(matches!(
            NProgram::unfold(&schema, &caps),
            Err(UnfoldError::UnknownFn(_))
        ));
        let caps: CapabilityList = [FnRef::read("ghost")].into_iter().collect();
        assert!(matches!(
            NProgram::unfold(&schema, &caps),
            Err(UnfoldError::UnknownFn(_))
        ));
    }

    #[test]
    fn node_limit_enforced() {
        let schema = stockbroker();
        let caps = schema.user_str("clerk").unwrap();
        assert!(matches!(
            NProgram::unfold_with_limit(&schema, caps, 3),
            Err(UnfoldError::TooLarge { limit: 3 })
        ));
    }

    #[test]
    fn ambiguous_attribute_unfolds_per_class() {
        let schema = parse_schema(
            r#"
            class A { v: int }
            class B { v: int }
            user u { r_v }
            "#,
        )
        .unwrap();
        let caps = schema.user_str("u").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        // One outer per declaring class.
        assert_eq!(p.outers.len(), 2);
        assert_eq!(p.outers[0].params[0].1, Type::class("A"));
        assert_eq!(p.outers[1].params[0].1, Type::class("B"));
    }

    #[test]
    fn source_level_let_unfolds() {
        let schema = parse_schema(
            r#"
            fn f(x: int): int { let y = x + 1 in y * y end }
            user u { f }
            "#,
        )
        .unwrap();
        let caps = schema.user_str("u").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        let root = p.outers[0].root;
        assert_eq!(p.render(root), "7let y=3+(1x, 2:1) in 6*(4y, 5y) end");
        // Both body occurrences of y point to binding 3.
        for id in [4, 5] {
            match &p.get(id).kind {
                NKind::LetVar { binding, .. } => assert_eq!(*binding, 3),
                other => panic!("expected LetVar, got {other:?}"),
            }
        }
    }

    #[test]
    fn operands_follow_structure() {
        let schema = stockbroker();
        let caps = schema.user_str("clerk").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        // 7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker))), 10w_budget(8a1, 9a2)
        assert_eq!(p.get(7).kind.operands(), vec![2, 6]);
        assert_eq!(p.get(2).kind.operands(), vec![1]);
        assert_eq!(p.get(1).kind.operands(), Vec::<ExprId>::new());
        assert_eq!(p.get(10).kind.operands(), vec![8, 9]);
    }

    #[test]
    fn attr_sites_group_by_attribute() {
        let schema = stockbroker();
        let caps = schema.user_str("clerk").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        let sites = p.attr_sites();
        let budget = &sites
            .iter()
            .find(|(a, _)| a.as_str() == "budget")
            .expect("budget sites")
            .1;
        assert_eq!(budget.reads, vec![2]);
        assert_eq!(budget.write_receivers, vec![8]);
        assert_eq!(budget.write_values, vec![9]);
        assert!(budget.ctor_nodes.is_empty());
        let salary = &sites
            .iter()
            .find(|(a, _)| a.as_str() == "salary")
            .expect("salary sites")
            .1;
        assert_eq!(salary.reads, vec![5]);
        assert!(salary.write_values.is_empty());
    }

    #[test]
    fn attr_sites_cover_constructors() {
        let schema = parse_schema(
            r#"
            class P { x: int }
            user u { new P, r_x }
            "#,
        )
        .unwrap();
        let caps = schema.user_str("u").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        let sites = p.attr_sites();
        let x = &sites.iter().find(|(a, _)| a.as_str() == "x").unwrap().1;
        // 2r_x(1a1), 4new P(3a1)
        assert_eq!(x.ctor_nodes, vec![4]);
        assert_eq!(x.ctor_args, vec![3]);
        assert_eq!(x.reads, vec![2]);
    }

    #[test]
    fn new_constructor_unfolds() {
        let schema = parse_schema(
            r#"
            class P { x: int }
            user u { new P }
            "#,
        )
        .unwrap();
        let caps = schema.user_str("u").unwrap();
        let p = NProgram::unfold(&schema, caps).unwrap();
        assert_eq!(p.render(p.outers[0].root), "2new P(1a1)");
        assert_eq!(p.get(2).ty, Type::class("P"));
    }

    /// A parsed schema with `f`'s body replaced by one `+` application over
    /// `arity` copies of `x`. The surface grammar only produces binary
    /// basics, so the wide node is injected directly into the AST.
    fn wide_basic_schema(arity: usize) -> Schema {
        let mut schema = parse_schema(
            r#"
            fn f(x: int): int { x + x }
            user u { f }
            "#,
        )
        .unwrap();
        let f = schema.functions.get_mut(&FnName::from("f")).unwrap();
        f.body = Expr::Basic(BasicOp::Add, vec![Expr::Var(VarName::from("x")); arity]);
        schema
    }

    #[test]
    fn basic_arity_over_the_limit_is_rejected() {
        // Just past the supported width: unfolding must refuse rather than
        // build a node the local-rule tables have no schemas for.
        let schema = wide_basic_schema(MAX_BASIC_ARITY + 1);
        let caps = schema.user_str("u").unwrap();
        let err = NProgram::unfold(&schema, caps).unwrap_err();
        assert_eq!(
            err,
            UnfoldError::ArityOverflow {
                op: "+",
                arity: MAX_BASIC_ARITY + 1,
                limit: MAX_BASIC_ARITY
            }
        );
        assert!(
            err.to_string().contains("at most 4"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn basic_arity_beyond_u8_is_rejected_not_truncated() {
        // Before the guard, a 300-argument node survived unfolding and the
        // closure engine stored slot indices as `args.len() as u8`,
        // silently wrapping 300 to 44. Now it never reaches the engine.
        let schema = wide_basic_schema(300);
        let caps = schema.user_str("u").unwrap();
        match NProgram::unfold(&schema, caps) {
            Err(UnfoldError::ArityOverflow { arity: 300, .. }) => {}
            other => panic!("expected ArityOverflow for arity 300, got {other:?}"),
        }
    }

    #[test]
    fn basic_arity_at_the_limit_still_unfolds() {
        let schema = wide_basic_schema(MAX_BASIC_ARITY);
        let caps = schema.user_str("u").unwrap();
        let p = NProgram::unfold(&schema, caps).expect("limit arity unfolds");
        // `arity` argument occurrences plus the applying node itself.
        assert_eq!(p.len(), MAX_BASIC_ARITY + 1);
    }
}
