//! Flaw-path provenance: walking proof DAGs from axioms to violations.
//!
//! A violated requirement comes with witness terms (one per required
//! capability), and under [`ProofMode::Full`] every term in the closure
//! carries its [`Derivation`](crate::closure::Derivation). This module
//! turns that recorded provenance into *flaw paths*: chains through the
//! proof DAG from an axiom — a capability the policy actually grants, an
//! observed constant, or a structural equality — down to the violating
//! witness. Sources are the axioms (where the information enters),
//! sinks are the witnesses (where the forbidden capability materialises).
//!
//! Three walk modes:
//!
//! * [`WalkMode::Backward`] — one path per distinct source axiom, steps
//!   listed sink-first (the direction the walk actually runs);
//! * [`WalkMode::Forward`] — the same paths, steps listed source-first
//!   (reads like the paper's Figure 1, information flowing downhill);
//! * [`WalkMode::Complete`] — every distinct chain in the DAG, up to the
//!   enumeration cap, steps source-first.
//!
//! Every path is scored: a base severity from the sink capability (total
//! alterability is worse than partial inferability), bonuses for the rule
//! mix (equality transfer and basic-function inference indicate active
//! information laundering, not a direct grant), and a length penalty
//! (long chains are more speculative under the paper's always-equal
//! approximation). The walker independently re-checks that every step is
//! backed by a recorded derivation and that the DAG is acyclic, so a
//! corrupted proof store fails loudly here even before the certifying
//! checker rejects it.

use std::fmt;

use crate::closure::{Closure, ProofMode};
use crate::report::render_term;
use crate::term::Term;
use crate::unfold::NProgram;

/// Direction and coverage of the path enumeration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalkMode {
    /// One path per distinct source, steps sink → source.
    #[default]
    Backward,
    /// One path per distinct source, steps source → sink.
    Forward,
    /// Every distinct chain (capped), steps source → sink.
    Complete,
}

impl WalkMode {
    /// Parse a `--mode=` value.
    pub fn parse(s: &str) -> Option<WalkMode> {
        match s {
            "backward" => Some(WalkMode::Backward),
            "forward" => Some(WalkMode::Forward),
            "complete" => Some(WalkMode::Complete),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn name(&self) -> &'static str {
        match self {
            WalkMode::Backward => "backward",
            WalkMode::Forward => "forward",
            WalkMode::Complete => "complete",
        }
    }
}

/// Severity band of a flaw path (ordered: `Low < … < Critical`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Weak signal: partial capability through a long, speculative chain.
    Low,
    /// Partial capability or a heavily attenuated total one.
    Medium,
    /// Total capability through a non-trivial derivation.
    High,
    /// Total capability reached directly or through active laundering.
    Critical,
}

impl Severity {
    /// Parse a `--severity=` value.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "low" => Some(Severity::Low),
            "medium" => Some(Severity::Medium),
            "high" => Some(Severity::High),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }

    /// Band a 0–100 score.
    pub fn from_score(score: u32) -> Severity {
        match score {
            80.. => Severity::Critical,
            60..=79 => Severity::High,
            40..=59 => Severity::Medium,
            _ => Severity::Low,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of axiom a path originates from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// A granted write capability (`ta`/`pa` axiom).
    Grant,
    /// An observable value (`ti`/`pi` axiom: printable constant or oid).
    Observation,
    /// A structural equality (`=` axiom) or joint constraint.
    Structure,
}

impl SourceKind {
    /// Human-readable label used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SourceKind::Grant => "grant",
            SourceKind::Observation => "observation",
            SourceKind::Structure => "structure",
        }
    }
}

/// Classify a source term by the capability kind it contributes.
pub fn classify_source(t: &Term) -> SourceKind {
    match t {
        Term::Ta(_) | Term::Pa(_) => SourceKind::Grant,
        Term::Ti(..) | Term::Pi(..) => SourceKind::Observation,
        Term::PiStar(..) | Term::Eq(..) => SourceKind::Structure,
    }
}

/// Knobs for the walk.
#[derive(Clone, Copy, Debug)]
pub struct ProvenanceOptions {
    /// Maximum chain length in edges; longer chains are cut and flagged
    /// [`FlawPath::truncated`].
    pub max_depth: usize,
    /// Enumeration cap per witness (paths, not DAG nodes).
    pub max_paths: usize,
    /// Direction and coverage.
    pub mode: WalkMode,
}

impl Default for ProvenanceOptions {
    fn default() -> ProvenanceOptions {
        ProvenanceOptions {
            max_depth: 64,
            max_paths: 16,
            mode: WalkMode::Backward,
        }
    }
}

/// Why a walk failed. Any of these means the proof store cannot back the
/// verdict and the report must not show paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProvenanceError {
    /// The closure was computed with [`ProofMode::Off`].
    NoProofs,
    /// A reachable term has no recorded derivation.
    MissingProof(Term),
    /// A derivation chain revisits a term: the "DAG" has a cycle.
    CyclicProof(Term),
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceError::NoProofs => {
                write!(
                    f,
                    "closure was computed without derivations (ProofMode::Off)"
                )
            }
            ProvenanceError::MissingProof(t) => {
                write!(f, "term {t:?} is reachable but has no recorded derivation")
            }
            ProvenanceError::CyclicProof(t) => {
                write!(f, "derivation of {t:?} is cyclic; proof store is corrupt")
            }
        }
    }
}

impl std::error::Error for ProvenanceError {}

/// One term on a flaw path, annotated with the rule that derived it and
/// its distance from the sink (0 = the witness itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// The closure term.
    pub term: Term,
    /// The rule that derived it (Figure-1 label; `"axiom"` family at the
    /// source end).
    pub rule: &'static str,
    /// Edges between this step and the sink.
    pub depth: usize,
}

/// One source-to-sink chain through the proof DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlawPath {
    /// The steps, ordered per the walk mode ([`WalkMode::Backward`]:
    /// sink first; otherwise source first).
    pub steps: Vec<PathStep>,
    /// The axiom end (or the deepest term reached, when truncated).
    pub source: Term,
    /// The violating witness.
    pub sink: Term,
    /// Classification of the source end.
    pub source_kind: SourceKind,
    /// Was the chain cut at `max_depth` before reaching an axiom?
    pub truncated: bool,
    /// 0–100 severity score.
    pub score: u32,
    /// The banded score.
    pub severity: Severity,
}

/// Everything the audit surface needs about one witness term.
#[derive(Clone, Debug, PartialEq)]
pub struct WitnessReport {
    /// The witness (sink).
    pub witness: Term,
    /// The enumerated paths, in discovery order.
    pub paths: Vec<FlawPath>,
    /// Highest path score (0 when no path was found).
    pub score: u32,
    /// Band of the highest score.
    pub severity: Severity,
    /// Did the enumeration stop at [`ProvenanceOptions::max_paths`]?
    pub paths_capped: bool,
}

/// Enumerate flaw paths ending at `sink`. The closure must have been
/// computed with [`ProofMode::Full`].
pub fn flaw_paths(
    closure: &Closure,
    sink: &Term,
    opts: &ProvenanceOptions,
) -> Result<Vec<FlawPath>, ProvenanceError> {
    walk(closure, sink, opts).map(|(paths, _)| paths)
}

/// Enumerate flaw paths and aggregate them into a [`WitnessReport`].
pub fn audit_witness(
    closure: &Closure,
    witness: &Term,
    opts: &ProvenanceOptions,
) -> Result<WitnessReport, ProvenanceError> {
    let (paths, paths_capped) = walk(closure, witness, opts)?;
    let score = paths.iter().map(|p| p.score).max().unwrap_or(0);
    Ok(WitnessReport {
        witness: *witness,
        severity: Severity::from_score(score),
        score,
        paths,
        paths_capped,
    })
}

/// Number of distinct terms in the proof DAG below `sink` (sink included).
/// A cheap size measure for reports and the bench harness.
pub fn reachable_terms(closure: &Closure, sink: &Term) -> Result<usize, ProvenanceError> {
    if closure.proof_mode() == ProofMode::Off {
        return Err(ProvenanceError::NoProofs);
    }
    let mut seen: Vec<Term> = Vec::new();
    let mut todo = vec![*sink];
    while let Some(t) = todo.pop() {
        if seen.contains(&t) {
            continue;
        }
        seen.push(t);
        let d = closure.proof(&t).ok_or(ProvenanceError::MissingProof(t))?;
        todo.extend(d.premises.iter().copied());
    }
    Ok(seen.len())
}

/// One DFS frame: a term, its derivation, and the next premise branch to
/// explore.
struct Frame<'c> {
    term: Term,
    rule: &'static str,
    premises: &'c [Term],
    next: usize,
}

fn walk(
    closure: &Closure,
    sink: &Term,
    opts: &ProvenanceOptions,
) -> Result<(Vec<FlawPath>, bool), ProvenanceError> {
    if closure.proof_mode() == ProofMode::Off {
        return Err(ProvenanceError::NoProofs);
    }
    let d0 = closure
        .proof(sink)
        .ok_or(ProvenanceError::MissingProof(*sink))?;
    let mut stack: Vec<Frame> = vec![Frame {
        term: *sink,
        rule: d0.rule,
        premises: &d0.premises,
        next: 0,
    }];
    let mut paths: Vec<FlawPath> = Vec::new();
    let mut seen_sources: Vec<Term> = Vec::new();
    let dedupe = !matches!(opts.mode, WalkMode::Complete);
    let mut capped = false;

    loop {
        let depth = stack.len().wrapping_sub(1);
        let Some(top) = stack.last_mut() else { break };
        let at_axiom = top.premises.is_empty();
        let at_limit = depth >= opts.max_depth;
        if (at_axiom || at_limit) && top.next == 0 {
            // Leaf of the branch tree: the current stack IS one chain.
            top.next = top.premises.len().max(1); // mark emitted/exhausted
            let source = top.term;
            if !dedupe || !seen_sources.contains(&source) {
                if dedupe {
                    seen_sources.push(source);
                }
                paths.push(make_path(&stack, !at_axiom, opts.mode));
                if paths.len() >= opts.max_paths {
                    capped = true;
                    break;
                }
            }
            stack.pop();
            continue;
        }
        if top.next >= top.premises.len() {
            stack.pop();
            continue;
        }
        let child = top.premises[top.next];
        top.next += 1;
        if stack.iter().any(|f| f.term == child) {
            return Err(ProvenanceError::CyclicProof(child));
        }
        let d = closure
            .proof(&child)
            .ok_or(ProvenanceError::MissingProof(child))?;
        stack.push(Frame {
            term: child,
            rule: d.rule,
            premises: &d.premises,
            next: 0,
        });
    }
    Ok((paths, capped))
}

fn make_path(stack: &[Frame], truncated: bool, mode: WalkMode) -> FlawPath {
    let mut steps: Vec<PathStep> = stack
        .iter()
        .enumerate()
        .map(|(depth, f)| PathStep {
            term: f.term,
            rule: f.rule,
            depth,
        })
        .collect();
    let sink = steps[0].term;
    let source = steps[steps.len() - 1].term;
    if !matches!(mode, WalkMode::Backward) {
        steps.reverse();
    }
    let score = score_path(&sink, &steps, truncated);
    FlawPath {
        source,
        sink,
        source_kind: classify_source(&source),
        truncated,
        score,
        severity: Severity::from_score(score),
        steps,
    }
}

/// Score a path 0–100: base by sink capability, bonuses for rule mix,
/// penalty by length. Deterministic in the path alone.
fn score_path(sink: &Term, steps: &[PathStep], truncated: bool) -> u32 {
    use crate::rules::labels;
    let base: i64 = match sink {
        Term::Ta(_) => 90,
        Term::Ti(..) => 80,
        Term::Pa(_) => 65,
        Term::Pi(..) => 55,
        Term::PiStar(..) => 45,
        Term::Eq(..) => 30,
    };
    let has = |pred: &dyn Fn(&'static str) -> bool| steps.iter().any(|s| pred(s.rule));
    let mut bonus: i64 = 0;
    // Information laundered through arithmetic: the paper's §3.2 quotient
    // trick and friends.
    if has(&|r| r.starts_with("basic function")) {
        bonus += 6;
    }
    // Capability transferred across an equality the attacker controls.
    if has(&|r| r == labels::ALTER_BY_EQ || r == labels::READ_RECEIVER) {
        bonus += 5;
    }
    if has(&|r| r == labels::INFER_BY_EQ) {
        bonus += 4;
    }
    // Joins mean several partial flows combined into a total one.
    if has(&|r| r == labels::PI_JOIN || r == labels::PI_STAR_JOIN) {
        bonus += 3;
    }
    let penalty = (2 * steps.len().saturating_sub(1) as i64).min(25);
    // A truncated chain never reached its axiom: discount the confidence.
    let cut = if truncated { 10 } else { 0 };
    (base + bonus - penalty - cut).clamp(1, 100) as u32
}

/// Render one path as aligned text lines (used by `secflow audit`'s text
/// format and the README example).
pub fn render_path(prog: &NProgram, path: &FlawPath) -> String {
    let rendered: Vec<String> = path
        .steps
        .iter()
        .map(|s| render_term(prog, &s.term))
        .collect();
    let width = rendered.iter().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (i, (step, text)) in path.steps.iter().zip(&rendered).enumerate() {
        let at_end = i == 0 || i + 1 == path.steps.len();
        let marker = match (at_end, step.term == path.sink, path.truncated) {
            (true, true, _) => "   <- sink",
            (true, false, false) => "   <- source",
            (true, false, true) => "   <- cut",
            _ => "",
        };
        out.push_str(&format!(
            "{text:width$}   ({rule}){marker}\n",
            rule = step.rule
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::Closure;
    use crate::unfold::NProgram;
    use oodb_lang::parse_schema;

    const STOCKBROKER: &str = r#"
        class Broker { salary: int, budget: int, profit: int }
        fn calcSalary(budget: int, profit: int): int { budget / 10 + profit / 2 }
        fn updateSalary(broker: Broker): null {
          w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
        }
        fn chkSalary(broker: Broker): bool { r_budget(broker) >= 10 * r_salary(broker) }
        user clerk { chkSalary, w_budget }
        "#;

    fn clerk_closure() -> (NProgram, Closure) {
        let schema = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let closure = Closure::compute(&prog).unwrap();
        (prog, closure)
    }

    fn clerk_witness(closure: &Closure) -> Term {
        // Node 5 is r_salary(broker) in the unfolded chkSalary (the
        // paper's Figure 1 flaw).
        closure.ti_witness(5).expect("the clerk flaw is derivable")
    }

    #[test]
    fn backward_paths_run_sink_to_axiom() {
        let (_prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let paths = flaw_paths(&closure, &sink, &ProvenanceOptions::default()).unwrap();
        assert!(!paths.is_empty(), "the Figure-1 flaw must have provenance");
        for p in &paths {
            assert_eq!(p.sink, sink);
            assert_eq!(
                p.steps.first().unwrap().term,
                sink,
                "backward starts at sink"
            );
            assert_eq!(p.steps.last().unwrap().term, p.source);
            assert!(!p.truncated);
            // The source end is an axiom: empty premises.
            let d = closure.proof(&p.source).unwrap();
            assert!(d.premises.is_empty(), "source must be an axiom");
            // Depths are the distance from the sink, ascending.
            for (i, s) in p.steps.iter().enumerate() {
                assert_eq!(s.depth, i);
            }
            // Every step is backed by a recorded derivation, and each
            // consecutive pair is a real premise edge.
            for pair in p.steps.windows(2) {
                let d = closure.proof(&pair[0].term).unwrap();
                assert!(
                    d.premises.contains(&pair[1].term),
                    "step edges must follow recorded premises"
                );
            }
        }
        // Backward mode deduplicates by source.
        let sources: Vec<Term> = paths.iter().map(|p| p.source).collect();
        let mut sorted = sources.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sources.len(), sorted.len(), "one path per distinct source");
    }

    #[test]
    fn forward_reverses_backward() {
        let (_prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let back = flaw_paths(&closure, &sink, &ProvenanceOptions::default()).unwrap();
        let fwd = flaw_paths(
            &closure,
            &sink,
            &ProvenanceOptions {
                mode: WalkMode::Forward,
                ..ProvenanceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(back.len(), fwd.len());
        for (b, f) in back.iter().zip(&fwd) {
            let mut rev = f.steps.clone();
            rev.reverse();
            assert_eq!(b.steps, rev, "forward is backward reversed");
            assert_eq!(b.score, f.score, "ordering must not change the score");
        }
    }

    #[test]
    fn complete_mode_finds_at_least_the_deduped_paths() {
        let (_prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let back = flaw_paths(&closure, &sink, &ProvenanceOptions::default()).unwrap();
        let all = flaw_paths(
            &closure,
            &sink,
            &ProvenanceOptions {
                mode: WalkMode::Complete,
                max_paths: 256,
                ..ProvenanceOptions::default()
            },
        )
        .unwrap();
        assert!(all.len() >= back.len());
    }

    #[test]
    fn max_depth_truncates_and_flags() {
        let (_prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let paths = flaw_paths(
            &closure,
            &sink,
            &ProvenanceOptions {
                max_depth: 1,
                ..ProvenanceOptions::default()
            },
        )
        .unwrap();
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(p.steps.len() <= 2, "depth 1 = at most one edge");
            if p.truncated {
                assert!(
                    !closure.proof(&p.source).unwrap().premises.is_empty(),
                    "a truncated chain ends below an interior term"
                );
            }
        }
        // The full walk reaches axioms that depth 1 cannot.
        let full = flaw_paths(&closure, &sink, &ProvenanceOptions::default()).unwrap();
        assert!(full.iter().all(|p| !p.truncated));
    }

    #[test]
    fn path_cap_is_honoured_and_reported() {
        let (_prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let report = audit_witness(
            &closure,
            &sink,
            &ProvenanceOptions {
                mode: WalkMode::Complete,
                max_paths: 1,
                ..ProvenanceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.paths.len(), 1);
        assert!(report.paths_capped);
    }

    #[test]
    fn severity_scoring_orders_sinks_and_penalises_length() {
        let short = [PathStep {
            term: Term::Ta(1),
            rule: "axiom",
            depth: 0,
        }];
        let ta = score_path(&Term::Ta(1), &short, false);
        let ti = score_path(&Term::Ti(1, crate::term::Origin::AXIOM), &short, false);
        let pi = score_path(&Term::Pi(1, crate::term::Origin::AXIOM), &short, false);
        assert!(ta > ti && ti > pi, "ta > ti > pi at equal length");
        let long: Vec<PathStep> = (0..10)
            .map(|i| PathStep {
                term: Term::Ta(i),
                rule: "rule for =",
                depth: i as usize,
            })
            .collect();
        assert!(
            score_path(&Term::Ta(1), &long, false) < ta,
            "longer chains score lower"
        );
        assert!(
            score_path(&Term::Ta(1), &long, true) < score_path(&Term::Ta(1), &long, false),
            "truncation discounts"
        );
        assert_eq!(Severity::from_score(85), Severity::Critical);
        assert_eq!(Severity::from_score(60), Severity::High);
        assert_eq!(Severity::from_score(45), Severity::Medium);
        assert_eq!(Severity::from_score(10), Severity::Low);
        assert!(Severity::Low < Severity::Critical);
    }

    #[test]
    fn witness_report_aggregates_max_score() {
        let (_prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let report = audit_witness(&closure, &sink, &ProvenanceOptions::default()).unwrap();
        assert_eq!(report.witness, sink);
        assert_eq!(
            report.score,
            report.paths.iter().map(|p| p.score).max().unwrap()
        );
        assert_eq!(report.severity, Severity::from_score(report.score));
    }

    #[test]
    fn proofs_off_is_an_error() {
        let schema = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let closure = Closure::compute_with_mode(
            &prog,
            &crate::rules::RuleConfig::default(),
            crate::closure::DEFAULT_TERM_LIMIT,
            ProofMode::Off,
        )
        .unwrap();
        let sink = closure.ti_witness(5).unwrap();
        assert_eq!(
            flaw_paths(&closure, &sink, &ProvenanceOptions::default()),
            Err(ProvenanceError::NoProofs)
        );
    }

    #[test]
    fn corrupted_proof_store_is_rejected_by_the_walk() {
        let (_prog, mut closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        // Point the sink's derivation at itself: a cycle.
        assert!(closure.replace_proof(&sink, "rule for =", vec![sink]));
        assert_eq!(
            flaw_paths(&closure, &sink, &ProvenanceOptions::default()),
            Err(ProvenanceError::CyclicProof(sink))
        );
        // Point it at a term that is not in the closure: a dangling edge.
        let ghost = Term::Ta(9999);
        assert!(closure.replace_proof(&sink, "rule for =", vec![ghost]));
        assert_eq!(
            flaw_paths(&closure, &sink, &ProvenanceOptions::default()),
            Err(ProvenanceError::MissingProof(ghost))
        );
    }

    #[test]
    fn walks_are_deterministic() {
        let (_prog, c1) = clerk_closure();
        let (_prog2, c2) = clerk_closure();
        let s1 = clerk_witness(&c1);
        let s2 = clerk_witness(&c2);
        let o = ProvenanceOptions {
            mode: WalkMode::Complete,
            max_paths: 64,
            ..ProvenanceOptions::default()
        };
        assert_eq!(
            flaw_paths(&c1, &s1, &o).unwrap(),
            flaw_paths(&c2, &s2, &o).unwrap()
        );
    }

    #[test]
    fn reachable_terms_counts_the_dag() {
        let (_prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let n = reachable_terms(&closure, &sink).unwrap();
        assert!(n >= 2, "the flaw derivation is not an axiom");
        assert!(n <= closure.len());
    }

    #[test]
    fn render_path_marks_both_ends() {
        let (prog, closure) = clerk_closure();
        let sink = clerk_witness(&closure);
        let paths = flaw_paths(&closure, &sink, &ProvenanceOptions::default()).unwrap();
        let text = render_path(&prog, &paths[0]);
        assert!(text.contains("<- sink"), "missing sink marker:\n{text}");
        assert!(text.contains("<- source"), "missing source marker:\n{text}");
        assert!(text.contains("(axiom"), "source line shows its axiom rule");
    }

    #[test]
    fn source_kinds_classify_by_capability() {
        assert_eq!(classify_source(&Term::Ta(1)), SourceKind::Grant);
        assert_eq!(
            classify_source(&Term::Ti(1, crate::term::Origin::AXIOM)),
            SourceKind::Observation
        );
        assert_eq!(classify_source(&Term::Eq(1, 2)), SourceKind::Structure);
        assert_eq!(SourceKind::Grant.name(), "grant");
    }

    #[test]
    fn mode_and_flag_parsers() {
        assert_eq!(WalkMode::parse("backward"), Some(WalkMode::Backward));
        assert_eq!(WalkMode::parse("forward"), Some(WalkMode::Forward));
        assert_eq!(WalkMode::parse("complete"), Some(WalkMode::Complete));
        assert_eq!(WalkMode::parse("sideways"), None);
        assert_eq!(Severity::parse("critical"), Some(Severity::Critical));
        assert_eq!(Severity::parse("none"), None);
        assert_eq!(WalkMode::Backward.name(), "backward");
    }
}
