//! The term language of the static inference system `F(F)` (§4.1):
//!
//! ```text
//! term ::= ta[e] | pa[e]
//!        | ti[e, num, dir] | pi[e, num, dir]
//!        | pi*[(e1, e2), num, dir]
//!        | =[e1, e2]
//! ```
//!
//! `ta`/`pa`: there *may* exist a function sequence where the user achieves
//! total/partial alterability on a correspondent of the occurrence `e`.
//! `ti`/`pi`: likewise for total/partial inferability. `pi*` says the user
//! may infer a *joint* constraint on a pair of expressions that does not
//! constrain either projection alone. `=[e1,e2]` says there may be a
//! sequence where the user can deduce the two occurrences denote the same
//! value.
//!
//! ## `num`/`dir` — the origin fields
//!
//! Inferability terms carry an [`Origin`] recording *how* the inference was
//! obtained: `num` is the serial number of the basic-function node the
//! inference last flowed through (0 for axioms and equality-derived terms)
//! and `dir` is [`Dir::Down`] (`+`, from arguments to result) or
//! [`Dir::Up`] (`−`, from result/siblings to an argument). The paper needs
//! them for two things (§4.1):
//!
//! 1. two `pi` terms on the same expression with *different* origins count
//!    as "two different ways", and their intersection may be a singleton —
//!    so they join to `ti`;
//! 2. an inference must never *feed back* into its own cause — the rule
//!    guards `(n,d) ≠ (l,−)` / `(n,d) ≠ (l,+)` implemented in
//!    [`crate::basics`].

use crate::unfold::ExprId;
use std::fmt;

/// Direction a piece of inferability flowed through a basic-function node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// `+`: from the arguments to the result.
    Down,
    /// `−`: from the result (and sibling arguments) to an argument.
    Up,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::Down => "+",
            Dir::Up => "-",
        })
    }
}

/// Origin of an inferability term: `(num, dir)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Origin {
    /// Serial number of the basic-function node last flowed through;
    /// 0 for axioms and equality-derived inferability.
    pub num: ExprId,
    /// Flow direction at that node.
    pub dir: Dir,
}

impl Origin {
    /// Origin of axioms on directly observed values (constants, arguments
    /// the user supplies, returned values of outer-most functions).
    pub const AXIOM: Origin = Origin {
        num: 0,
        dir: Dir::Down,
    };

    /// Construct an origin.
    pub fn new(num: ExprId, dir: Dir) -> Origin {
        Origin { num, dir }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}", self.num, self.dir)
    }
}

/// A term of `F(F)`.
///
/// `Eq` and `PiStar` are stored with their operands normalised
/// (`min ≤ max`), making symmetry structural instead of a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// Total alterability may be achievable on the occurrence.
    Ta(ExprId),
    /// Partial alterability may be achievable.
    Pa(ExprId),
    /// Total inferability may be achievable, with origin.
    Ti(ExprId, Origin),
    /// Partial inferability may be achievable, with origin.
    Pi(ExprId, Origin),
    /// A joint (pairwise) constraint may be inferable, with origin.
    PiStar(ExprId, ExprId, Origin),
    /// The two occurrences may be known to denote equal values.
    Eq(ExprId, ExprId),
}

impl Term {
    /// Build a normalised equality term. `a == b` is rejected (reflexive
    /// equalities carry no information and would bloat the closure).
    pub fn eq(a: ExprId, b: ExprId) -> Option<Term> {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => Some(Term::Eq(a, b)),
            std::cmp::Ordering::Greater => Some(Term::Eq(b, a)),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Build a normalised `pi*` term; degenerate pairs are rejected.
    pub fn pi_star(a: ExprId, b: ExprId, origin: Origin) -> Option<Term> {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => Some(Term::PiStar(a, b, origin)),
            std::cmp::Ordering::Greater => Some(Term::PiStar(b, a, origin)),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The expression(s) this term mentions.
    pub fn mentions(&self) -> (ExprId, Option<ExprId>) {
        match *self {
            Term::Ta(e) | Term::Pa(e) | Term::Ti(e, _) | Term::Pi(e, _) => (e, None),
            Term::PiStar(a, b, _) | Term::Eq(a, b) => (a, Some(b)),
        }
    }

    /// The origin, for inferability terms.
    pub fn origin(&self) -> Option<Origin> {
        match *self {
            Term::Ti(_, o) | Term::Pi(_, o) | Term::PiStar(_, _, o) => Some(o),
            _ => None,
        }
    }

    /// Same capability/shape ignoring origin — used for subsumption (a term
    /// that differs only in origin is still new, because origins matter for
    /// the pi-join rule, but reporting collapses them).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Term::Ta(_) => "ta",
            Term::Pa(_) => "pa",
            Term::Ti(..) => "ti",
            Term::Pi(..) => "pi",
            Term::PiStar(..) => "pi*",
            Term::Eq(..) => "=",
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Ta(e) => write!(f, "ta[{e}]"),
            Term::Pa(e) => write!(f, "pa[{e}]"),
            Term::Ti(e, o) => write!(f, "ti[{e}, {o}]"),
            Term::Pi(e, o) => write!(f, "pi[{e}, {o}]"),
            Term::PiStar(a, b, o) => write!(f, "pi*[({a}, {b}), {o}]"),
            Term::Eq(a, b) => write!(f, "=[{a}, {b}]"),
        }
    }
}

/// A [`Term`] packed into one 128-bit word — the interned key the fast-path
/// closure engine stores in its hash set instead of the enum.
///
/// Layout (low to high): `dir:1 | num:32 | b:32 | a:32 | tag:3`. Every field
/// of every variant is a small integer, so the packing is exact and
/// reversible ([`TermId::term`]); hashing and equality become single-word
/// operations instead of a derived walk over the enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u128);

const TAG_TA: u128 = 0;
const TAG_PA: u128 = 1;
const TAG_TI: u128 = 2;
const TAG_PI: u128 = 3;
const TAG_PISTAR: u128 = 4;
const TAG_EQ: u128 = 5;

#[inline]
fn pack(tag: u128, a: ExprId, b: ExprId, o: Option<Origin>) -> u128 {
    let (num, dir) = match o {
        Some(o) => (o.num, matches!(o.dir, Dir::Up) as u128),
        None => (0, 0),
    };
    dir | (num as u128) << 1 | (b as u128) << 33 | (a as u128) << 65 | tag << 97
}

impl TermId {
    /// Pack a term.
    #[inline]
    pub fn new(t: Term) -> TermId {
        TermId(match t {
            Term::Ta(e) => pack(TAG_TA, e, 0, None),
            Term::Pa(e) => pack(TAG_PA, e, 0, None),
            Term::Ti(e, o) => pack(TAG_TI, e, 0, Some(o)),
            Term::Pi(e, o) => pack(TAG_PI, e, 0, Some(o)),
            Term::PiStar(a, b, o) => pack(TAG_PISTAR, a, b, Some(o)),
            Term::Eq(a, b) => pack(TAG_EQ, a, b, None),
        })
    }

    /// Unpack back into the enum.
    #[inline]
    pub fn term(self) -> Term {
        let v = self.0;
        let a = (v >> 65) as ExprId;
        let b = (v >> 33) as ExprId;
        let o = Origin {
            num: (v >> 1) as ExprId,
            dir: if v & 1 == 1 { Dir::Up } else { Dir::Down },
        };
        match v >> 97 {
            TAG_TA => Term::Ta(a),
            TAG_PA => Term::Pa(a),
            TAG_TI => Term::Ti(a, o),
            TAG_PI => Term::Pi(a, o),
            TAG_PISTAR => Term::PiStar(a, b, o),
            _ => Term::Eq(a, b),
        }
    }
}

impl From<Term> for TermId {
    fn from(t: Term) -> TermId {
        TermId::new(t)
    }
}

impl From<TermId> for Term {
    fn from(id: TermId) -> Term {
        id.term()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_normalises_and_rejects_reflexive() {
        assert_eq!(Term::eq(5, 2), Some(Term::Eq(2, 5)));
        assert_eq!(Term::eq(2, 5), Some(Term::Eq(2, 5)));
        assert_eq!(Term::eq(3, 3), None);
    }

    #[test]
    fn pi_star_normalises() {
        let o = Origin::AXIOM;
        assert_eq!(Term::pi_star(7, 3, o), Some(Term::PiStar(3, 7, o)));
        assert_eq!(Term::pi_star(3, 3, o), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Term::Ta(9).to_string(), "ta[9]");
        assert_eq!(
            Term::Ti(5, Origin::new(7, Dir::Up)).to_string(),
            "ti[5, 7, -]"
        );
        assert_eq!(
            Term::PiStar(1, 2, Origin::AXIOM).to_string(),
            "pi*[(1, 2), 0, +]"
        );
        assert_eq!(Term::Eq(1, 8).to_string(), "=[1, 8]");
    }

    #[test]
    fn mentions_and_origin() {
        assert_eq!(Term::Pa(4).mentions(), (4, None));
        assert_eq!(Term::Eq(1, 2).mentions(), (1, Some(2)));
        assert_eq!(Term::Ta(1).origin(), None);
        assert_eq!(
            Term::Pi(1, Origin::new(3, Dir::Down)).origin(),
            Some(Origin::new(3, Dir::Down))
        );
    }

    #[test]
    fn term_id_round_trips_every_shape() {
        let origins = [
            Origin::AXIOM,
            Origin::new(7, Dir::Up),
            Origin::new(u32::MAX, Dir::Down),
        ];
        let mut terms = vec![
            Term::Ta(0),
            Term::Ta(u32::MAX),
            Term::Pa(3),
            Term::Eq(1, 2),
            Term::Eq(0, u32::MAX),
        ];
        for o in origins {
            terms.push(Term::Ti(5, o));
            terms.push(Term::Pi(u32::MAX, o));
            terms.push(Term::PiStar(1, u32::MAX, o));
        }
        for t in terms {
            assert_eq!(TermId::new(t).term(), t, "round trip of {t}");
        }
    }

    #[test]
    fn term_id_is_injective_across_kinds() {
        use std::collections::HashSet;
        // Same payload, different tags must stay distinct.
        let ids: HashSet<TermId> = [
            Term::Ta(1),
            Term::Pa(1),
            Term::Ti(1, Origin::AXIOM),
            Term::Pi(1, Origin::AXIOM),
            Term::PiStar(1, 2, Origin::AXIOM),
            Term::Eq(1, 2),
        ]
        .into_iter()
        .map(TermId::new)
        .collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn origins_distinguish_terms() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Term::Pi(1, Origin::new(2, Dir::Down)));
        assert!(s.insert(Term::Pi(1, Origin::new(2, Dir::Up))));
        assert!(s.insert(Term::Pi(1, Origin::new(3, Dir::Down))));
        assert!(!s.insert(Term::Pi(1, Origin::new(2, Dir::Down))));
    }
}
