//! Per-basic-function rule sets (§4.1).
//!
//! The paper specifies the rules on basic functions *by hand, following
//! metarules* that interrogate each function's algebraic properties:
//!
//! > *"if ∃v2. ∀r ∈ Dom(fb). ∃v1. fb(v1,v2) = r   then  `ta[e1] → ta[fb(e1,e2)]`"*
//! > *"if ∃r. ∃v1. ∀v2 ∈ Dom(e2). fb(v1,v2) = r   then  `ti[e1,n,d] →
//! >  ti[fb(e1,e2), l, +]`   ((n,d) ≠ (l,−))"* …
//!
//! This module does the same: every rule below is justified by one of the
//! metarules (noted per constructor), and the two rule sets the paper prints
//! verbatim — for `>=` and for `*` on integers — are unit-tested to be
//! exactly generated.
//!
//! ## Feedback guards
//!
//! Every generated inferability conclusion gets origin `(l, +)` when it lands
//! on the node's result and `(l, −)` when it lands on an argument, where `l`
//! is the node's serial number. Per the paper's restrictions:
//!
//! * downward rules (conclusion on the result) refuse premises whose origin
//!   is `(l, −)` — information inferred *from* this node must not re-derive
//!   the node;
//! * upward rules (conclusion on an argument) refuse premises whose origin
//!   mentions `l` at all — neither `(l,+)` nor `(l,−)` may feed back.
//!
//! ## Pessimism
//!
//! Where the paper's (OCR-damaged) Table 2 listing is ambiguous we include
//! the rule if it is *sound-side* — the analysis may only over-approximate
//! user capabilities, never under-approximate (Theorem 1 direction). Each
//! such inclusion is commented.

use oodb_lang::BasicOp;

/// A slot of a basic-function application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// The i-th argument.
    Arg(usize),
    /// The application's result.
    Ret,
}

/// Capability kinds usable in local rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LCap {
    /// Total alterability.
    Ta,
    /// Partial alterability.
    Pa,
    /// Total inferability.
    Ti,
    /// Partial inferability.
    Pi,
}

/// A premise or conclusion pattern, local to one application node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LTerm {
    /// A capability on a slot.
    Cap(LCap, Slot),
    /// A joint constraint between two slots.
    PiStar(Slot, Slot),
}

/// One rule instance attached to every application of an operator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalRule {
    /// Rule name for proofs (Figure-1 style: "(basic function)" plus detail).
    pub name: &'static str,
    /// Premises (all must hold, subject to feedback guards).
    pub premises: Vec<LTerm>,
    /// Conclusion.
    pub conclusion: LTerm,
}

/// Premise-kind bits, one per term kind a local rule can consume. The
/// semi-naive closure engine accumulates these per basic node as terms are
/// inserted on its slot expressions and re-evaluates only the rules whose
/// [`LocalRule::premise_kinds`] mask intersects the accumulated mask.
/// (`=[e1,e2]` has no bit: no local rule has an equality premise.)
pub mod kind {
    /// `ta[e]` premise.
    pub const TA: u8 = 1;
    /// `pa[e]` premise.
    pub const PA: u8 = 1 << 1;
    /// `ti[e,n,d]` premise.
    pub const TI: u8 = 1 << 2;
    /// `pi[e,n,d]` premise.
    pub const PI: u8 = 1 << 3;
    /// `pi*[(e1,e2),n,d]` premise.
    pub const PISTAR: u8 = 1 << 4;
    /// Every kind — the mask a naive (non-delta) evaluation uses.
    pub const ALL: u8 = TA | PA | TI | PI | PISTAR;
}

impl LocalRule {
    fn new(name: &'static str, premises: Vec<LTerm>, conclusion: LTerm) -> LocalRule {
        LocalRule {
            name,
            premises,
            conclusion,
        }
    }

    /// Bitmask (over [`kind`]) of the premise kinds this rule consumes. A
    /// rule can only derive something new after a premise-shaped term
    /// appears on one of its node's slots, so an evaluation may skip it
    /// whenever the inserted-kinds mask since the node's last evaluation
    /// misses this mask. A premise-less rule (none exist today) would
    /// answer [`kind::ALL`] so it is never skipped.
    pub fn premise_kinds(&self) -> u8 {
        let mut mask = 0u8;
        for p in &self.premises {
            mask |= match p {
                LTerm::Cap(LCap::Ta, _) => kind::TA,
                LTerm::Cap(LCap::Pa, _) => kind::PA,
                LTerm::Cap(LCap::Ti, _) => kind::TI,
                LTerm::Cap(LCap::Pi, _) => kind::PI,
                LTerm::PiStar(..) => kind::PISTAR,
            };
        }
        if mask == 0 {
            kind::ALL
        } else {
            mask
        }
    }
}

use LCap::*;
use LTerm::{Cap, PiStar};
use Slot::{Arg, Ret};

/// The rule set for an operator. Deterministic; safe to cache.
pub fn rules_for(op: BasicOp) -> Vec<LocalRule> {
    let mut r = Vec::new();
    match op {
        BasicOp::Add | BasicOp::Sub => {
            group_invertible_binary(&mut r);
        }
        BasicOp::Mul => {
            // Exactly the paper's `*` listing (§4.1), symmetrised.
            for (i, j) in [(0usize, 1usize), (1, 0)] {
                // ta[e1] → ta[*(e1,e2)]   — metarule 1 with v2 = 1.
                r.push(LocalRule::new(
                    "basic function: * alterability",
                    vec![Cap(Ta, Arg(i))],
                    Cap(Ta, Ret),
                ));
                // pa[e1] → pa[*(e1,e2)].
                r.push(LocalRule::new(
                    "basic function: * partial alterability",
                    vec![Cap(Pa, Arg(i))],
                    Cap(Pa, Ret),
                ));
                // pi[e1] → pi[*(e1,e2)]   — v1 = 0 pins the product to 0.
                r.push(LocalRule::new(
                    "basic function: * partial inference",
                    vec![Cap(Pi, Arg(i))],
                    Cap(Pi, Ret),
                ));
                // pi[e1], pi[*(e1,e2)] → ti[e2]  — the paper's worked
                // justification: e1 ∈ {2,3} and product ∈ {4,5} force e2 = 2.
                r.push(LocalRule::new(
                    "basic function: * quotient inference",
                    vec![Cap(Pi, Arg(i)), Cap(Pi, Ret)],
                    Cap(Ti, Arg(j)),
                ));
                // pa[e1], pi[*(e1,e2)] → ti[e2]  — alter e1, watch the
                // product move, divide out.
                r.push(LocalRule::new(
                    "basic function: * probe inference",
                    vec![Cap(Pa, Arg(i)), Cap(Pi, Ret)],
                    Cap(Ti, Arg(j)),
                ));
                // pi[*(e1,e2)] → pi[e2]  — a constrained product constrains
                // its factors.
                r.push(LocalRule::new(
                    "basic function: * factor constraint",
                    vec![Cap(Pi, Ret)],
                    Cap(Pi, Arg(j)),
                ));
                // pi[e1] → pi*[(e2, *(e1,e2))]  — knowing one factor links
                // the other factor to the product.
                r.push(LocalRule::new(
                    "basic function: * joint constraint",
                    vec![Cap(Pi, Arg(i))],
                    PiStar(Arg(j), Ret),
                ));
            }
            // ti[e1], ti[e2] → ti[*(e1,e2)]  — compute.
            r.push(compute_binary());
        }
        BasicOp::Div => {
            // ta only via the dividend (fix divisor = 1); the divisor cannot
            // drive the quotient onto every integer.
            r.push(LocalRule::new(
                "basic function: / alterability via dividend",
                vec![Cap(Ta, Arg(0))],
                Cap(Ta, Ret),
            ));
            for i in 0..2 {
                r.push(LocalRule::new(
                    "basic function: / partial alterability",
                    vec![Cap(Pa, Arg(i))],
                    Cap(Pa, Ret),
                ));
            }
            r.push(compute_binary());
            // pi[e1] → pi[ret]: dividend 0 pins the quotient.
            r.push(LocalRule::new(
                "basic function: / partial inference",
                vec![Cap(Pi, Arg(0))],
                Cap(Pi, Ret),
            ));
            // pi[ret] → pi[e1]: |quotient| ≥ k excludes small dividends.
            r.push(LocalRule::new(
                "basic function: / dividend constraint",
                vec![Cap(Pi, Ret)],
                Cap(Pi, Arg(0)),
            ));
            // Vary a known divisor and watch quotients: reconstructs the
            // dividend — the paper names integer division as an example of
            // alterability + inferability yielding exact inference (§3.2).
            r.push(search_rule(1, 0, "basic function: / divisor sweep"));
            for (i, j) in [(0usize, 1usize), (1, 0)] {
                r.push(LocalRule::new(
                    "basic function: / joint constraint",
                    vec![Cap(Pi, Arg(i))],
                    PiStar(Arg(j), Ret),
                ));
            }
        }
        BasicOp::Mod => {
            // No total alterability in either argument: |e1 % e2| < |e2|
            // bounds the image for every fixing.
            for i in 0..2 {
                r.push(LocalRule::new(
                    "basic function: % partial alterability",
                    vec![Cap(Pa, Arg(i))],
                    Cap(Pa, Ret),
                ));
                // Either argument constrains the remainder (e1 = 0 pins it;
                // a known modulus bounds it).
                r.push(LocalRule::new(
                    "basic function: % partial inference",
                    vec![Cap(Pi, Arg(i))],
                    Cap(Pi, Ret),
                ));
                // A known remainder constrains both operands (r ≠ 0 needs
                // |e2| > |r| and excludes e1 with e1 ≡ 0 for all moduli).
                r.push(LocalRule::new(
                    "basic function: % operand constraint",
                    vec![Cap(Pi, Ret)],
                    Cap(Pi, Arg(i)),
                ));
            }
            r.push(compute_binary());
            // CRT sweep: observe x mod m for enough known, alterable m to
            // pin x — the paper's "remainder operator" example (§3.2).
            r.push(search_rule(1, 0, "basic function: % modulus sweep"));
            for (i, j) in [(0usize, 1usize), (1, 0)] {
                r.push(LocalRule::new(
                    "basic function: % joint constraint",
                    vec![Cap(Pi, Arg(i))],
                    PiStar(Arg(j), Ret),
                ));
            }
        }
        BasicOp::Neg | BasicOp::Not => {
            // Bijective unary: everything flows both ways.
            r.push(LocalRule::new(
                "basic function: unary alterability",
                vec![Cap(Ta, Arg(0))],
                Cap(Ta, Ret),
            ));
            r.push(LocalRule::new(
                "basic function: unary partial alterability",
                vec![Cap(Pa, Arg(0))],
                Cap(Pa, Ret),
            ));
            r.push(LocalRule::new(
                "basic function: unary compute",
                vec![Cap(Ti, Arg(0))],
                Cap(Ti, Ret),
            ));
            r.push(LocalRule::new(
                "basic function: unary partial compute",
                vec![Cap(Pi, Arg(0))],
                Cap(Pi, Ret),
            ));
            r.push(LocalRule::new(
                "basic function: unary inversion",
                vec![Cap(Ti, Ret)],
                Cap(Ti, Arg(0)),
            ));
            r.push(LocalRule::new(
                "basic function: unary partial inversion",
                vec![Cap(Pi, Ret)],
                Cap(Pi, Arg(0)),
            ));
        }
        BasicOp::Ge | BasicOp::Gt | BasicOp::Le | BasicOp::Lt => {
            group_order_predicate(&mut r);
        }
        BasicOp::EqOp | BasicOp::NeOp => {
            // Equality tests behave like the order predicates for the
            // analysis: probing with an alterable operand narrows the other
            // (sound-side; the paper's §3.2 equality discussion).
            group_order_predicate(&mut r);
            // Unlike an order comparison (whose half-planes are unbounded,
            // constraining no marginal over ℤ), an observed equality pins
            // each side to the *image* of the other side's expression —
            // `2·a1 == e` observed true forces `e` even. Metarule form:
            // if ∃v. ∀args. e_j ≠ v may hold, add ti[fb] → pi[e_i].
            // Sound-side; found by the differential experiment E3.
            for i in 0..2 {
                r.push(LocalRule::new(
                    "basic function: equality image constraint",
                    vec![Cap(Ti, Ret)],
                    Cap(Pi, Arg(i)),
                ));
            }
        }
        BasicOp::And | BasicOp::Or => {
            for (i, j) in [(0usize, 1usize), (1, 0)] {
                // Fix the other operand to the identity (true for `and`,
                // false for `or`): the result mirrors e_i — metarule 1.
                r.push(LocalRule::new(
                    "basic function: boolean alterability",
                    vec![Cap(Ta, Arg(i))],
                    Cap(Ta, Ret),
                ));
                r.push(LocalRule::new(
                    "basic function: boolean partial alterability",
                    vec![Cap(Pa, Arg(i))],
                    Cap(Pa, Ret),
                ));
                // A known absorbing operand (false for `and`) pins the
                // result: pi (= ti on booleans) flows down…
                r.push(LocalRule::new(
                    "basic function: boolean partial inference",
                    vec![Cap(Pi, Arg(i))],
                    Cap(Pi, Ret),
                ));
                // …and a known result constrains the operands (true `and`
                // forces both true). Sound-side.
                r.push(LocalRule::new(
                    "basic function: boolean operand constraint",
                    vec![Cap(Pi, Ret)],
                    Cap(Pi, Arg(i)),
                ));
                // ti[ret], ti[e_j] → ti[e_i] where the pair determines e_i
                // (e.g. `or` = false, e2 = false ⇒ e1 = false). Sound-side.
                r.push(LocalRule::new(
                    "basic function: boolean inversion",
                    vec![Cap(Ti, Ret), Cap(Ti, Arg(j))],
                    Cap(Ti, Arg(i)),
                ));
            }
            r.push(compute_binary());
        }
        BasicOp::Concat => {
            for (i, j) in [(0usize, 1usize), (1, 0)] {
                // Fix the other side to "": surjective — metarule 1.
                r.push(LocalRule::new(
                    "basic function: ++ alterability",
                    vec![Cap(Ta, Arg(i))],
                    Cap(Ta, Ret),
                ));
                r.push(LocalRule::new(
                    "basic function: ++ partial alterability",
                    vec![Cap(Pa, Arg(i))],
                    Cap(Pa, Ret),
                ));
                // Knowing one side and the whole strips it off: ++ is
                // injective in each argument given the other.
                r.push(LocalRule::new(
                    "basic function: ++ strip",
                    vec![Cap(Ti, Ret), Cap(Ti, Arg(j))],
                    Cap(Ti, Arg(i)),
                ));
                r.push(LocalRule::new(
                    "basic function: ++ partial strip",
                    vec![Cap(Pi, Ret), Cap(Ti, Arg(j))],
                    Cap(Pi, Arg(i)),
                ));
                // A constrained whole constrains the parts (length/prefix).
                r.push(LocalRule::new(
                    "basic function: ++ part constraint",
                    vec![Cap(Pi, Ret)],
                    Cap(Pi, Arg(i)),
                ));
                // A constrained part constrains the whole.
                r.push(LocalRule::new(
                    "basic function: ++ whole constraint",
                    vec![Cap(Pi, Arg(i))],
                    Cap(Pi, Ret),
                ));
                r.push(LocalRule::new(
                    "basic function: ++ joint constraint",
                    vec![Cap(Pi, Arg(i))],
                    PiStar(Arg(j), Ret),
                ));
            }
            r.push(compute_binary());
        }
    }
    r
}

/// `ti[e1], ti[e2] → ti[ret]` — anyone who knows all inputs can run the
/// function (metarule: the function is a function).
fn compute_binary() -> LocalRule {
    LocalRule::new(
        "basic function: compute",
        vec![Cap(Ti, Arg(0)), Cap(Ti, Arg(1))],
        Cap(Ti, Ret),
    )
}

/// `ti[e_search], pa[e_search], ti[ret] → ti[e_target]` — the binary-search
/// pattern: repeatedly move a known, alterable operand and watch the result.
/// This is the rule that detects the paper's stockbroker flaw.
fn search_rule(search: usize, target: usize, name: &'static str) -> LocalRule {
    LocalRule::new(
        name,
        vec![Cap(Ti, Arg(search)), Cap(Pa, Arg(search)), Cap(Ti, Ret)],
        Cap(Ti, Arg(target)),
    )
}

/// The paper's `>=` rule set (§4.1), symmetrised over the two operands, and
/// shared by all four order comparisons and (sound-side) the equality tests.
fn group_order_predicate(r: &mut Vec<LocalRule>) {
    for (i, j) in [(0usize, 1usize), (1, 0)] {
        // ta[e1] → ta[>=(e1,e2)] — noted as an omitted-redundant rule in the
        // paper; needed explicitly here because our closure derives pa from
        // ta by the lattice, not vice versa.
        r.push(LocalRule::new(
            "basic function: comparison alterability",
            vec![Cap(Ta, Arg(i))],
            Cap(Ta, Ret),
        ));
        // pa[e1] → pa[>=(e1,e2)] — verbatim.
        r.push(LocalRule::new(
            "basic function: comparison partial alterability",
            vec![Cap(Pa, Arg(i))],
            Cap(Pa, Ret),
        ));
        // ti[e1], pa[e1], ti[>=(e1,e2)] → ti[e2] — verbatim: binary search.
        r.push(search_rule(i, j, "basic function: comparison search"));
        // pi[e1], ti[>=(e1,e2)] → pi[e2] — verbatim: one observed
        // comparison against a partially known operand halves the other.
        r.push(LocalRule::new(
            "basic function: comparison half-plane",
            vec![Cap(Pi, Arg(i)), Cap(Ti, Ret)],
            Cap(Pi, Arg(j)),
        ));
    }
    // ti[e1], ti[e2] → ti[>=(e1,e2)] — compute (implied by pi,pi→ti plus
    // the lattice, but kept for faithful proof labels).
    r.push(compute_binary());
    // pi[e1], pi[e2] → ti[>=(e1,e2)] — verbatim.
    r.push(LocalRule::new(
        "basic function: comparison from ranges",
        vec![Cap(Pi, Arg(0)), Cap(Pi, Arg(1))],
        Cap(Ti, Ret),
    ));
    // pi*[(e1,e2)] → ti[>=(e1,e2)] — verbatim: a joint constraint may fix
    // the comparison.
    r.push(LocalRule::new(
        "basic function: comparison from joint constraint",
        vec![PiStar(Arg(0), Arg(1))],
        Cap(Ti, Ret),
    ));
    // ti[>=(e1,e2)] → pi*[(e1, e2)] — verbatim: an observed comparison is a
    // joint half-plane constraint.
    r.push(LocalRule::new(
        "basic function: comparison joint constraint",
        vec![Cap(Ti, Ret)],
        PiStar(Arg(0), Arg(1)),
    ));
}

fn group_invertible_binary(r: &mut Vec<LocalRule>) {
    for (i, j) in [(0usize, 1usize), (1, 0)] {
        // metarule 1: fix the other operand, the op is a bijection.
        r.push(LocalRule::new(
            "basic function: affine alterability",
            vec![Cap(Ta, Arg(i))],
            Cap(Ta, Ret),
        ));
        r.push(LocalRule::new(
            "basic function: affine partial alterability",
            vec![Cap(Pa, Arg(i))],
            Cap(Pa, Ret),
        ));
        // Injective given the other operand: subtract it back out.
        r.push(LocalRule::new(
            "basic function: affine inversion",
            vec![Cap(Ti, Ret), Cap(Ti, Arg(j))],
            Cap(Ti, Arg(i)),
        ));
        r.push(LocalRule::new(
            "basic function: affine partial inversion",
            vec![Cap(Pi, Ret), Cap(Ti, Arg(j))],
            Cap(Pi, Arg(i)),
        ));
        r.push(LocalRule::new(
            "basic function: affine partial inversion (partial anchor)",
            vec![Cap(Ti, Ret), Cap(Pi, Arg(j))],
            Cap(Pi, Arg(i)),
        ));
        // Two partially known quantities partially pin the third —
        // sound-side inclusion.
        r.push(LocalRule::new(
            "basic function: affine range inversion",
            vec![Cap(Pi, Ret), Cap(Pi, Arg(j))],
            Cap(Pi, Arg(i)),
        ));
        // A constrained sum constrains each addend — sound-side: this
        // simulates the I(E) join of the `+` dependency with whatever else
        // the user knows about the sibling (e.g. an equality, §3.3 rule 5),
        // which the closure completes via the pi-join and diagonal rules.
        r.push(LocalRule::new(
            "basic function: affine range constraint",
            vec![Cap(Pi, Ret)],
            Cap(Pi, Arg(i)),
        ));
        // Knowing one operand links the other to the sum.
        r.push(LocalRule::new(
            "basic function: affine joint constraint",
            vec![Cap(Pi, Arg(i))],
            PiStar(Arg(j), Ret),
        ));
        // pi[e_i], pi[e_j] → pi[ret] — sound-side.
        r.push(LocalRule::new(
            "basic function: affine range compute",
            vec![Cap(Pi, Arg(i)), Cap(Pi, Arg(j))],
            Cap(Pi, Ret),
        ));
    }
    r.push(compute_binary());
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Arg(i) => write!(f, "e{}", i + 1),
            Slot::Ret => write!(f, "fb"),
        }
    }
}

impl std::fmt::Display for LTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LTerm::Cap(c, s) => {
                let name = match c {
                    LCap::Ta => "ta",
                    LCap::Pa => "pa",
                    LCap::Ti => "ti",
                    LCap::Pi => "pi",
                };
                write!(f, "{name}[{s}]")
            }
            LTerm::PiStar(a, b) => write!(f, "pi*[({a}, {b})]"),
        }
    }
}

impl std::fmt::Display for LocalRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, p) in self.premises.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " -> {}", self.conclusion)
    }
}

/// Render the full generated rule table for one operator, in the paper's
/// §4.1 listing style (used by the harness `tables` section).
pub fn render_rules(op: BasicOp) -> String {
    let mut out = String::new();
    out.push_str(&format!("rules for `{}`:\n", op.symbol()));
    for rule in rules_for(op) {
        out.push_str(&format!("  {rule}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(rules: &[LocalRule], premises: &[LTerm], conclusion: LTerm) -> bool {
        rules
            .iter()
            .any(|r| r.premises == premises && r.conclusion == conclusion)
    }

    /// The paper's printed `>=` rule set must be exactly generated
    /// (symmetric variants included, redundant pa-pa-ta omitted).
    #[test]
    fn ge_rules_match_paper() {
        let rules = rules_for(BasicOp::Ge);
        // pa[e1] → pa[>=(e1,e2)]
        assert!(has(&rules, &[Cap(Pa, Arg(0))], Cap(Pa, Ret)));
        assert!(has(&rules, &[Cap(Pa, Arg(1))], Cap(Pa, Ret)));
        // pi[e1], pi[e2] → ti[>=]
        assert!(has(
            &rules,
            &[Cap(Pi, Arg(0)), Cap(Pi, Arg(1))],
            Cap(Ti, Ret)
        ));
        // pi*[(e1,e2)] → ti[>=]
        assert!(has(&rules, &[PiStar(Arg(0), Arg(1))], Cap(Ti, Ret)));
        // ti[e1], pa[e1], ti[>=] → ti[e2]
        assert!(has(
            &rules,
            &[Cap(Ti, Arg(0)), Cap(Pa, Arg(0)), Cap(Ti, Ret)],
            Cap(Ti, Arg(1))
        ));
        // pi[e1], ti[>=] → pi[e2]
        assert!(has(
            &rules,
            &[Cap(Pi, Arg(0)), Cap(Ti, Ret)],
            Cap(Pi, Arg(1))
        ));
        // ti[>=] → pi*[(e1,e2)]
        assert!(has(&rules, &[Cap(Ti, Ret)], PiStar(Arg(0), Arg(1))));
    }

    /// The paper's printed `*` rule set must be exactly generated.
    #[test]
    fn mul_rules_match_paper() {
        let rules = rules_for(BasicOp::Mul);
        assert!(has(&rules, &[Cap(Ta, Arg(0))], Cap(Ta, Ret)));
        assert!(has(&rules, &[Cap(Pa, Arg(0))], Cap(Pa, Ret)));
        assert!(has(&rules, &[Cap(Pi, Arg(0))], Cap(Pi, Ret)));
        // pi[e1] → pi*[(e2, *(e1,e2))]
        assert!(has(&rules, &[Cap(Pi, Arg(0))], PiStar(Arg(1), Ret)));
        // pi[e1], pi[*] → ti[e2]
        assert!(has(
            &rules,
            &[Cap(Pi, Arg(0)), Cap(Pi, Ret)],
            Cap(Ti, Arg(1))
        ));
        // pa[e1], pi[*] → ti[e2]
        assert!(has(
            &rules,
            &[Cap(Pa, Arg(0)), Cap(Pi, Ret)],
            Cap(Ti, Arg(1))
        ));
        // pi[*] → pi[e2]
        assert!(has(&rules, &[Cap(Pi, Ret)], Cap(Pi, Arg(1))));
        // compute
        assert!(has(
            &rules,
            &[Cap(Ti, Arg(0)), Cap(Ti, Arg(1))],
            Cap(Ti, Ret)
        ));
    }

    #[test]
    fn mod_has_no_total_alterability() {
        let rules = rules_for(BasicOp::Mod);
        assert!(!rules.iter().any(|r| r.conclusion == Cap(Ta, Ret)));
        assert!(has(&rules, &[Cap(Pa, Arg(0))], Cap(Pa, Ret)));
    }

    #[test]
    fn div_alterability_only_via_dividend() {
        let rules = rules_for(BasicOp::Div);
        assert!(has(&rules, &[Cap(Ta, Arg(0))], Cap(Ta, Ret)));
        assert!(!has(&rules, &[Cap(Ta, Arg(1))], Cap(Ta, Ret)));
    }

    #[test]
    fn unary_ops_are_bijections() {
        for op in [BasicOp::Neg, BasicOp::Not] {
            let rules = rules_for(op);
            assert!(has(&rules, &[Cap(Ti, Arg(0))], Cap(Ti, Ret)));
            assert!(has(&rules, &[Cap(Ti, Ret)], Cap(Ti, Arg(0))));
            assert!(has(&rules, &[Cap(Ta, Arg(0))], Cap(Ta, Ret)));
        }
    }

    #[test]
    fn rules_render_in_paper_style() {
        let text = render_rules(BasicOp::Ge);
        assert!(text.contains("pa[e1] -> pa[fb]"));
        assert!(text.contains("ti[e1], pa[e1], ti[fb] -> ti[e2]"));
        assert!(text.contains("pi*[(e1, e2)] -> ti[fb]"));
    }

    #[test]
    fn every_op_has_rules_and_valid_slots() {
        for op in BasicOp::ALL {
            let rules = rules_for(op);
            assert!(!rules.is_empty(), "no rules for {op:?}");
            for rule in &rules {
                let check = |t: &LTerm| match t {
                    Cap(_, Arg(i)) => assert!(*i < op.arity(), "{op:?} {rule:?}"),
                    PiStar(a, b) => {
                        assert_ne!(a, b, "{op:?} {rule:?}");
                        for s in [a, b] {
                            if let Arg(i) = s {
                                assert!(*i < op.arity());
                            }
                        }
                    }
                    Cap(_, Ret) => {}
                };
                rule.premises.iter().for_each(&check);
                check(&rule.conclusion);
                assert!(!rule.premises.is_empty());
            }
        }
    }

    #[test]
    fn premise_kind_masks_cover_exactly_the_premises() {
        for op in BasicOp::ALL {
            for rule in rules_for(op) {
                let mask = rule.premise_kinds();
                assert_ne!(mask, 0, "no rule may be unconditionally skippable");
                for p in &rule.premises {
                    let bit = match p {
                        Cap(Ta, _) => kind::TA,
                        Cap(Pa, _) => kind::PA,
                        Cap(Ti, _) => kind::TI,
                        Cap(Pi, _) => kind::PI,
                        PiStar(..) => kind::PISTAR,
                    };
                    assert_ne!(mask & bit, 0, "{op:?} {rule:?} misses {bit:#b}");
                }
            }
        }
        // The search rule consumes ti+pa; a pure compute rule only ti.
        assert_eq!(search_rule(0, 1, "x").premise_kinds(), kind::TI | kind::PA);
        assert_eq!(compute_binary().premise_kinds(), kind::TI);
    }

    #[test]
    fn search_rules_cover_paper_examples() {
        // The comparison search rule is what detects the stockbroker flaw;
        // division and remainder are the paper's other §3.2 examples.
        for op in [BasicOp::Ge, BasicOp::Div, BasicOp::Mod] {
            let rules = rules_for(op);
            assert!(
                rules
                    .iter()
                    .any(|r| r.premises.len() == 3 && matches!(r.conclusion, Cap(Ti, Arg(_)))),
                "no search rule for {op:?}"
            );
        }
    }
}
