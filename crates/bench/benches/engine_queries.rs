//! E6 — substrate throughput: select-from-where evaluation over growing
//! extents, with and without a filtering where clause, plus the §3.1
//! probe-query shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oodb_engine::exec::run_query;
use oodb_lang::parse_query;
use oodb_model::UserName;
use secflow_bench::seeded_db;

fn engine_queries(c: &mut Criterion) {
    let admin = UserName::new("admin");
    let probe =
        parse_query("select checkBudget(b), r_name(b) from b in Broker where r_salary(b) > 100")
            .expect("query parses");
    let scan = parse_query("select r_name(b) from b in Broker").expect("query parses");
    let attack = parse_query(
        "select w_budget(b, 1500), checkBudget(b), w_budget(b, 1499), checkBudget(b) \
         from b in Broker where r_salary(b) > 100",
    )
    .expect("query parses");

    let mut group = c.benchmark_group("engine");
    for n in [100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        let db = seeded_db(n);
        group.bench_with_input(BenchmarkId::new("probe_query", n), &db, |b, db| {
            b.iter_batched(
                || db.clone(),
                |mut db| run_query(&mut db, Some(&admin), &probe).expect("runs"),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &db, |b, db| {
            b.iter_batched(
                || db.clone(),
                |mut db| run_query(&mut db, Some(&admin), &scan).expect("runs"),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("probing_attack", n), &db, |b, db| {
            b.iter_batched(
                || db.clone(),
                |mut db| run_query(&mut db, Some(&admin), &attack).expect("runs"),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, engine_queries);
criterion_main!(benches);
