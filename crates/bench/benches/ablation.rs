//! E7 timing — cost of each rule group: the full analysis on the
//! stockbroker fixture under every ablation variant. (The *detection*
//! effect of each variant is reported by the harness; this bench shows the
//! runtime each group costs or saves.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oodb_lang::parse_requirement;
use secflow::algorithm::{analyze_with_config, AnalysisConfig};
use secflow_bench::ablation_variants;
use secflow_workloads::scale::wide_grants;
use secflow_workloads::stockbroker;

fn ablation(c: &mut Criterion) {
    let schema = stockbroker();
    let req = parse_requirement("(clerk, r_salary(x) : ti)").expect("parses");

    let mut group = c.benchmark_group("ablation/stockbroker");
    for (name, rules) in ablation_variants() {
        let config = AnalysisConfig {
            rules,
            ..AnalysisConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                analyze_with_config(
                    std::hint::black_box(&schema),
                    std::hint::black_box(&req),
                    config,
                )
                .expect("runs")
            })
        });
    }
    group.finish();

    // Rule-group cost on a larger instance.
    let case = wide_grants(32);
    let mut group = c.benchmark_group("ablation/wide_grants_32");
    for (name, rules) in ablation_variants() {
        let config = AnalysisConfig {
            rules,
            ..AnalysisConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                analyze_with_config(
                    std::hint::black_box(&case.schema),
                    std::hint::black_box(&case.requirement),
                    config,
                )
                .expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
