//! E5 — scaling of `A(R)` (unfold + closure + check) across the four
//! schema families of `secflow_workloads::scale`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secflow::algorithm::check_against;
use secflow::closure::Closure;
use secflow::unfold::NProgram;
use secflow_workloads::scale::{attr_fanout, call_chain, deep_expr, wide_grants, ScaleCase};

fn run_analysis(case: &ScaleCase) -> bool {
    let caps = case.schema.user_str("u").expect("scale user");
    let prog = NProgram::unfold(&case.schema, caps).expect("unfolds");
    let closure = Closure::compute(&prog).expect("closure");
    check_against(&prog, &closure, &case.requirement).is_violated()
}

fn bench_family(c: &mut Criterion, name: &str, gen: fn(usize) -> ScaleCase, params: &[usize]) {
    let mut group = c.benchmark_group(name);
    for &p in params {
        let case = gen(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &case, |b, case| {
            b.iter(|| run_analysis(std::hint::black_box(case)))
        });
    }
    group.finish();
}

fn closure_scaling(c: &mut Criterion) {
    // Sizes are capped where a single analysis stays in the milliseconds:
    // the chain and deep-expression families grow superlinearly (origin
    // proliferation over equality chains — EXPERIMENTS.md E5 reports the
    // one-shot numbers for the larger instances).
    bench_family(c, "closure/call_chain", call_chain, &[1, 4, 8]);
    bench_family(c, "closure/wide_grants", wide_grants, &[1, 4, 16, 64]);
    bench_family(c, "closure/deep_expr", deep_expr, &[1, 2, 3, 4]);
    bench_family(c, "closure/attr_fanout", attr_fanout, &[1, 4, 8, 16]);
}

criterion_group!(benches, closure_scaling);
criterion_main!(benches);
