//! E1 timing — the full `A(R)` pipeline on the paper's own example, and
//! its phases (unfold, closure, check) separately.

use criterion::{criterion_group, criterion_main, Criterion};
use oodb_lang::parse_requirement;
use secflow::algorithm::{analyze, check_against};
use secflow::closure::Closure;
use secflow::unfold::NProgram;
use secflow_workloads::stockbroker;

fn figure1(c: &mut Criterion) {
    let schema = stockbroker();
    let req = parse_requirement("(clerk, r_salary(x) : ti)").expect("parses");
    let caps = schema.user_str("clerk").expect("clerk");

    c.bench_function("figure1/analyze_full", |b| {
        b.iter(|| analyze(std::hint::black_box(&schema), std::hint::black_box(&req)))
    });
    c.bench_function("figure1/unfold", |b| {
        b.iter(|| NProgram::unfold(std::hint::black_box(&schema), caps).expect("unfolds"))
    });
    let prog = NProgram::unfold(&schema, caps).expect("unfolds");
    c.bench_function("figure1/closure", |b| {
        b.iter(|| Closure::compute(std::hint::black_box(&prog)).expect("closure"))
    });
    let closure = Closure::compute(&prog).expect("closure");
    c.bench_function("figure1/check", |b| {
        b.iter(|| check_against(&prog, &closure, std::hint::black_box(&req)))
    });
}

criterion_group!(benches, figure1);
criterion_main!(benches);
