//! # secflow-bench
//!
//! Experiment implementations shared by the `harness` binary (which prints
//! the EXPERIMENTS.md rows) and the Criterion benches. See DESIGN.md §4 for
//! the experiment index E1–E7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
