//! Developer tool: find and print differential soundness violations.

use secflow_dynamic::differential::{classify, DiffOutcome};
use secflow_dynamic::strategy::StrategySpec;
use secflow_dynamic::AttackerConfig;
use secflow_workloads::random::{random_case, RandomSpec};

fn main() {
    let spec = RandomSpec::default();
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: 2,
            max_assignments: 2048,
            max_shapes: 64,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    for seed in 0..n {
        let case = random_case(seed, &spec);
        for req in &case.requirements {
            match classify(&case.schema, req, &cfg) {
                Ok(c) if c.outcome == DiffOutcome::DynamicOnly => {
                    println!("== seed {seed}: DYNAMIC-ONLY ==");
                    println!("requirement: {req}");
                    println!("witness: {:?}", c.witness);
                    println!("schema:\n{}", case.schema);
                }
                Ok(_) => {}
                Err(e) => println!("seed {seed}: error {e}"),
            }
        }
    }
}
