//! The experiment harness: regenerates every artefact in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p secflow-bench --release --bin harness           # all
//! cargo run -p secflow-bench --release --bin harness -- e1 e3  # subset
//! cargo run -p secflow-bench --release --bin harness -- e3=500 # corpus size
//! cargo run -p secflow-bench --release --bin harness -- fastpath          # old-vs-new closure
//! cargo run -p secflow-bench --release --bin harness -- fastpath --smoke  # CI-sized
//! ```
//!
//! The `fastpath` experiment additionally writes `BENCH_closure.json`: the
//! reference-vs-interned closure timings (with a term-set identity check
//! per case) and the batch-driver wall times per `--jobs` setting.
//!
//! The `demand` experiment (`-- demand [--smoke]`) writes
//! `BENCH_demand.json`: full-saturation vs demand-driven closure timings
//! and terms-derived counts per scale family, with a verdict-identity
//! assertion per row, plus the multi-requirement batch comparison.
//!
//! The `saturation` experiment (`-- saturation [--smoke]`) writes
//! `BENCH_saturation.json`: naive vs semi-naive saturation timings on the
//! re-firing-heavy families (`wide_grants`, `dense_equalities`) with a
//! closure-identity assertion per row and per-rule attempted/derived-new
//! counters for both modes.
//!
//! The `certify` experiment (`-- certify [--smoke]`) writes
//! `BENCH_certify.json`: proof-carrying analysis time vs the independent
//! proof checker's certification time per scale family, with a
//! certificate-completeness assertion and a `certify ≤ 2× analyze`
//! overhead bound per row.
//!
//! The `audit` experiment (`-- audit [--smoke]`) writes `BENCH_audit.json`:
//! the certified flaw-path report (`secflow audit --format=json`) measured
//! end to end per policy — proof-carrying analysis time, certify+walk+render
//! time, flaw paths per second and report size — with a validity assertion
//! on every rendered report.
//!
//! The `population` experiment (`-- population [--smoke]`) writes
//! `BENCH_population.json`: streamed Zipf-population throughput
//! (verdicts/sec, closure-cache hit rate, steal/eviction counts) up to a
//! million users, plus the fixed-partition vs work-stealing duel on the
//! clustered-giants skew workload, scored by critical path over the
//! recorded worker assignment — full runs assert the >99% hit rate and
//! the ≥1.5× stealing speedup.
//!
//! The `incremental` experiment (`-- incremental [--smoke]`) writes
//! `BENCH_incremental.json`: grant/revoke maintenance time vs from-scratch
//! recomputation on the `edit_trace` family (small edits against large
//! closures), per-edit term-set identity asserted — full runs additionally
//! assert the ≥5× maintenance speedup.
//!
//! Every run also writes `BENCH_obs.json` next to the working directory: a
//! machine-readable metrics blob with per-experiment wall times plus the
//! closure counters for the canonical stockbroker analysis (see
//! `secflow_obs` for the format). Pass `--no-obs` to skip it.

use secflow::closure::{Closure, DEFAULT_TERM_LIMIT};
use secflow::rules::RuleConfig;
use secflow::unfold::NProgram;
use secflow_bench::*;
use secflow_obs::{MetricsSink, Phases, Recorder};
use secflow_workloads::stockbroker;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| {
        args.iter().all(|a| a.starts_with("--")) || args.iter().any(|a| a.starts_with(name))
    };
    let param = |name: &str, default: usize| {
        args.iter()
            .find_map(|a| a.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };

    let mut phases = Phases::new();
    if want("e1") {
        phases.time("e1", run_e1);
    }
    if want("e2") {
        phases.time("e2", run_e2);
    }
    if want("e3") || want("e4") {
        phases.time("e3_e4", || run_e3_e4(param("e3", 500)));
    }
    if want("e5") {
        phases.time("e5", run_e5);
    }
    if want("e6") {
        phases.time("e6", run_e6);
    }
    if want("e7") {
        phases.time("e7", run_e7);
    }
    if want("e8") {
        phases.time("e8", || run_e8(param("e8", 60)));
    }
    if args.iter().any(|a| a == "tables") {
        phases.time("tables", run_tables);
    }
    if want("fastpath") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let write_json = !args.iter().any(|a| a == "--no-obs");
        phases.time("fastpath", || run_fastpath(smoke, write_json));
    }
    if want("demand") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let write_json = !args.iter().any(|a| a == "--no-obs");
        phases.time("demand", || run_demand(smoke, write_json));
    }
    if want("saturation") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let write_json = !args.iter().any(|a| a == "--no-obs");
        phases.time("saturation", || run_saturation(smoke, write_json));
    }
    if want("certify") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let write_json = !args.iter().any(|a| a == "--no-obs");
        phases.time("certify", || run_certify(smoke, write_json));
    }
    if want("audit") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let write_json = !args.iter().any(|a| a == "--no-obs");
        phases.time("audit", || run_audit(smoke, write_json));
    }
    if want("population") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let write_json = !args.iter().any(|a| a == "--no-obs");
        phases.time("population", || run_population(smoke, write_json));
    }
    if want("incremental") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let write_json = !args.iter().any(|a| a == "--no-obs");
        phases.time("incremental", || run_incremental(smoke, write_json));
    }

    if !args.iter().any(|a| a == "--no-obs") {
        write_obs_blob(&phases);
    }
}

/// Emit `BENCH_obs.json`: the harness phase timings plus the closure
/// counters for the stockbroker fixture (the paper's running example), so
/// regressions in both wall time and rule behaviour are diffable across
/// runs without re-parsing the human-readable tables.
fn write_obs_blob(phases: &Phases) {
    let mut rec = Recorder::new();
    phases.record_to(&mut rec);

    let schema = stockbroker();
    if let Some(caps) = schema.user_str("clerk") {
        if let Ok(prog) = NProgram::unfold(&schema, caps) {
            let (_, stats) =
                Closure::compute_with_stats(&prog, &RuleConfig::default(), DEFAULT_TERM_LIMIT);
            stats.record_to(&mut rec);
            rec.counter("fixture.program_nodes", prog.len() as u64);
        }
    }

    let report = rec.into_report();
    let path = "BENCH_obs.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

fn run_e1() {
    banner("E1 — Figure 1: derivation of the stockbroker flaw");
    let f = e1_figure1();
    println!("S'(F) for clerk = {{checkBudget, w_budget}}:");
    for u in &f.unfolded {
        println!("  {u}");
    }
    println!();
    println!("judgments of the paper's Figure 1:");
    for (j, ok) in &f.judgments {
        println!("  [{}] {}", if *ok { "ok" } else { "MISSING" }, j);
    }
    println!();
    println!("machine-checked derivation of the goal:");
    print!("{}", f.derivation);
}

fn run_e2() {
    banner("E2 — running examples (flawed policies flagged, repairs pass)");
    println!(
        "{:<12} {:<46} {:>8} {:>8} {:>6}",
        "scenario", "requirement", "expected", "got", "match"
    );
    for r in e2_running_examples() {
        println!(
            "{:<12} {:<46} {:>8} {:>8} {:>6}",
            r.scenario,
            r.requirement,
            if r.expected_flaw { "flaw" } else { "ok" },
            if r.got_flaw { "flaw" } else { "ok" },
            if r.expected_flaw == r.got_flaw {
                "yes"
            } else {
                "NO"
            },
        );
    }
}

fn run_e3_e4(cases: usize) {
    banner(&format!(
        "E3/E4 — differential soundness & pessimism ({cases} random policies, 2 requirements each)"
    ));
    let report = e3_e4_differential(cases);
    print!("{report}");
    println!(
        "soundness (Theorem 1): {}",
        if report.is_sound() {
            "HOLDS (0 dynamic-only cases)"
        } else {
            "VIOLATED — see cases below"
        }
    );
    for v in &report.violations {
        println!("  !! {} — {:?}", v.requirement, v.witness);
    }
}

fn run_e5() {
    banner("E5 — closure scaling (A(R) = unfold + closure + check)");
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>12}",
        "family", "param", "nodes", "terms", "time (us)"
    );
    for r in e5_scaling() {
        println!(
            "{:<12} {:>6} {:>8} {:>10} {:>12}",
            r.family, r.param, r.nodes, r.terms, r.micros
        );
    }
}

fn run_e6() {
    banner("E6 — engine probe-query throughput");
    println!(
        "{:>10} {:>10} {:>12} {:>14}",
        "objects", "rows", "time (us)", "objs/ms"
    );
    for r in e6_engine(&[10, 100, 1_000, 10_000]) {
        let per_ms = if r.micros == 0 {
            f64::INFINITY
        } else {
            r.objects as f64 * 1000.0 / r.micros as f64
        };
        println!(
            "{:>10} {:>10} {:>12} {:>14.1}",
            r.objects, r.rows, r.micros, per_ms
        );
    }
}

fn run_e8(cases: usize) {
    banner(&format!(
        "E8 — inferability deciders: idealized ⊆ finite-I(E), idealized ⊆ A(R) ({cases} cases)"
    ));
    let r = e8_containment(cases);
    println!("cases                : {}", r.cases);
    println!(
        "finite I(E) realises : {}  (bounded Table-1 engine)",
        r.finite_flags
    );
    println!(
        "idealized realises   : {}  (Z-valid deductions)",
        r.ideal_flags
    );
    println!("A(R) flags           : {}", r.static_flags);
    println!(
        "idealized \\ finite   : {}  (must be 0)",
        r.ideal_not_finite
    );
    println!(
        "idealized \\ A(R)     : {}  (must be 0 — Theorem 1)",
        r.ideal_not_static
    );
    println!(
        "finite \\ A(R)        : {}  (finite-domain truncation artefacts)",
        r.finite_artifacts
    );
}

fn run_tables() {
    banner("Table 2 (reconstructed) — the rules of F(F)");
    println!("structural axioms and rules (see secflow::rules for the");
    println!("reconstruction notes):");
    println!("  -> ta[x]                         x an outer argument variable");
    println!("  -> ti[c, l, +]                   basic-typed constants");
    println!("  -> ti[x, l, +]                   basic-typed outer arguments");
    println!("  -> ti[e, 0, -]                   observed results (outer body/read)");
    println!("  -> =[x1, x2]                     outer argument variables, same type");
    println!("  -> =[z, e]                       let-bound occurrence and binding");
    println!("  -> =[e, let ... in e end]");
    println!("  =[e1,e2], =[e2,e3] -> =[e1,e3]   (symmetry is structural)");
    println!("  =[e1,e2] -> =[r_att(e1), r_att(e2)]");
    println!("  =[e1,e2] -> =[e3, r_att(e2)]     when w_att(e1, e3) in S'(F)");
    println!("  =[n,e2]  -> =[a_j, r_att_j(e2)]  when n = new C(..., a_j, ...)");
    println!("  ta[e] -> pa[e]    ti[e,n,d] -> pi[e,n,d]");
    println!("  =[e1,e2] + any capability on e1 -> same capability on e2");
    println!("  ta/pa[recv] -> pa[r_att(recv)]   receiver alterability");
    println!("  pi[e,n1,d1], pi[e,n2,d2] -> ti[e,n2,d2]        (n1,d1) != (n2,d2)");
    println!("  pi*[(a,b),n1,d1], pi*[(b,c),n2,d2] -> pi*[(a,c),n1,d1]");
    println!("  =[e1,e2] -> pi*[(e1,e2), 0, +]");
    println!("  =[e1,e2], pi*[(e1,e2),n,d] -> pi[e1,n,d], pi[e2,n,d]   (n,d) != axiom");
    println!("  =[e1,e2], ti/pi[e1 (+|*|++) e2] -> ti/pi[e1], ti/pi[e2]  (diagonal)");
    println!();
    println!("per-basic-function rules (generated by the §4.1 metarules):");
    println!();
    for op in oodb_lang::BasicOp::ALL {
        print!("{}", secflow::basics::render_rules(op));
        println!();
    }
}

fn run_fastpath(smoke: bool, write_json: bool) {
    banner(&format!(
        "fastpath — interned/dense closure vs the reference engine{}",
        if smoke { " (smoke sizes)" } else { "" }
    ));
    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8} {:>10}",
        "family", "param", "nodes", "terms", "ref (us)", "fast (us)", "speedup", "identical"
    );
    let rows = closure_fastpath(smoke);
    for r in &rows {
        println!(
            "{:<12} {:>6} {:>8} {:>8} {:>10} {:>10} {:>7.2}x {:>10}",
            r.family,
            r.param,
            r.nodes,
            r.terms,
            r.ref_micros,
            r.fast_micros,
            r.speedup(),
            if r.identical { "yes" } else { "NO" },
        );
    }

    let brows = batch_throughput(smoke);
    if let Some(first) = brows.first() {
        println!();
        println!(
            "batch driver: {} users x {} requirement(s), one unfold+closure per user",
            first.users,
            first.requirements / first.users.max(1)
        );
        println!(
            "host parallelism: {} core(s) — jobs beyond that cannot speed up",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
        println!("{:>6} {:>12} {:>8}", "jobs", "time (us)", "speedup");
        let base = first.micros;
        for b in &brows {
            let speedup = if b.micros == 0 {
                f64::INFINITY
            } else {
                base as f64 / b.micros as f64
            };
            println!("{:>6} {:>12} {:>7.2}x", b.jobs, b.micros, speedup);
        }
    }

    if write_json {
        write_fastpath_blob(&rows, &brows);
    }
}

/// Emit `BENCH_closure.json`: per-case old-vs-new closure timings with the
/// identity check, plus batch-driver wall times per jobs setting.
fn write_fastpath_blob(rows: &[FastpathRow], brows: &[BatchRow]) {
    let mut rec = Recorder::new();
    for r in rows {
        let key = format!("fastpath.{}.{}", r.family, r.param);
        rec.counter(&format!("{key}.nodes"), r.nodes as u64);
        rec.counter(&format!("{key}.terms"), r.terms as u64);
        rec.counter(&format!("{key}.ref_micros"), r.ref_micros as u64);
        rec.counter(&format!("{key}.fast_micros"), r.fast_micros as u64);
        rec.counter(&format!("{key}.identical"), u64::from(r.identical));
        rec.gauge(&format!("{key}.speedup"), r.speedup());
    }
    for b in brows {
        let key = format!("batch.jobs{}", b.jobs);
        rec.counter(&format!("{key}.users"), b.users as u64);
        rec.counter(&format!("{key}.requirements"), b.requirements as u64);
        rec.counter(&format!("{key}.micros"), b.micros as u64);
    }
    let report = rec.into_report();
    let path = "BENCH_closure.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn run_demand(smoke: bool, write_json: bool) {
    banner(&format!(
        "demand — goal-directed slicing + early exit vs full saturation{}",
        if smoke { " (smoke sizes)" } else { "" }
    ));
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>12} {:>10} {:>12} {:>8} {:>6} {:>10}",
        "family",
        "param",
        "nodes",
        "full terms",
        "demand terms",
        "full (us)",
        "demand (us)",
        "speedup",
        "early",
        "identical"
    );
    let rows = demand_vs_full(smoke);
    for r in &rows {
        println!(
            "{:<12} {:>6} {:>8} {:>10} {:>12} {:>10} {:>12} {:>7.2}x {:>6} {:>10}",
            r.family,
            r.param,
            r.nodes,
            r.full_terms,
            r.demand_terms,
            r.full_micros,
            r.demand_micros,
            r.speedup(),
            if r.early_exit { "yes" } else { "no" },
            if r.identical { "yes" } else { "NO" },
        );
        assert!(r.identical, "{}/{}: verdicts diverged", r.family, r.param);
    }

    let b = demand_batch(smoke);
    println!();
    println!(
        "batch driver: {} user(s) x {} requirement(s), serial, full vs demand",
        b.users, b.requirements
    );
    println!(
        "  full saturation : {:>10} terms {:>12} us",
        b.full_terms, b.full_micros
    );
    println!(
        "  demand-driven   : {:>10} terms {:>12} us   ({:.2}x)",
        b.demand_terms,
        b.demand_micros,
        b.speedup()
    );
    assert!(b.identical, "batch: verdicts diverged");

    if write_json {
        write_demand_blob(&rows, &b);
    }
}

/// Emit `BENCH_demand.json`: per-family full-vs-demand closure timings and
/// terms-derived counts (with the verdict-identity bit), plus the batch
/// full-vs-demand measurement.
fn write_demand_blob(rows: &[DemandRow], b: &DemandBatchRow) {
    let mut rec = Recorder::new();
    for r in rows {
        let key = format!("demand.{}.{}", r.family, r.param);
        rec.counter(&format!("{key}.nodes"), r.nodes as u64);
        rec.counter(&format!("{key}.full_terms"), r.full_terms as u64);
        rec.counter(&format!("{key}.demand_terms"), r.demand_terms as u64);
        rec.counter(&format!("{key}.full_micros"), r.full_micros as u64);
        rec.counter(&format!("{key}.demand_micros"), r.demand_micros as u64);
        rec.counter(&format!("{key}.early_exit"), u64::from(r.early_exit));
        rec.counter(&format!("{key}.identical"), u64::from(r.identical));
        rec.gauge(&format!("{key}.speedup"), r.speedup());
    }
    let key = "demand.batch";
    rec.counter(&format!("{key}.users"), b.users as u64);
    rec.counter(&format!("{key}.requirements"), b.requirements as u64);
    rec.counter(&format!("{key}.full_terms"), b.full_terms);
    rec.counter(&format!("{key}.demand_terms"), b.demand_terms);
    rec.counter(&format!("{key}.full_micros"), b.full_micros as u64);
    rec.counter(&format!("{key}.demand_micros"), b.demand_micros as u64);
    rec.counter(&format!("{key}.identical"), u64::from(b.identical));
    rec.gauge(&format!("{key}.speedup"), b.speedup());
    let report = rec.into_report();
    let path = "BENCH_demand.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn run_saturation(smoke: bool, write_json: bool) {
    banner(&format!(
        "saturation — chunked kernels vs scalar semi-naive vs naive sweeps{}",
        if smoke { " (smoke sizes)" } else { "" }
    ));
    println!(
        "{:<16} {:>6} {:>6} {:>9} {:>11} {:>10} {:>10} {:>8} {:>12} {:>12} {:>10}",
        "family",
        "param",
        "nodes",
        "terms",
        "naive (us)",
        "semi (us)",
        "chunk (us)",
        "speedup",
        "semi tps",
        "chunk tps",
        "identical"
    );
    let rows = saturation_modes(smoke);
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>6} {:>9} {:>11} {:>10} {:>10} {:>7.2}x {:>12.0} {:>12.0} {:>10}",
            r.family,
            r.param,
            r.nodes,
            r.terms,
            r.naive_micros
                .map_or_else(|| "-".to_owned(), |us| us.to_string()),
            r.semi_micros,
            r.chunked_micros,
            r.chunked_speedup(),
            r.semi_terms_per_sec(),
            r.chunked_terms_per_sec(),
            if r.identical { "yes" } else { "NO" },
        );
        // Byte identity of the chunked engine against the scalar baseline
        // is checked per row — same insertion order, rounds, witnesses.
        assert!(r.identical, "{}/{}: closures diverged", r.family, r.param);
        // Per-row no-regression: chunked must not lose to the scalar
        // baseline. The absolute floor absorbs timer noise on the
        // smoke-sized instances where both runs finish in microseconds.
        assert!(
            r.chunked_micros <= r.semi_micros + r.semi_micros / 4 + 2_000,
            "{}/{}: chunked {}us regressed past semi-naive {}us",
            r.family,
            r.param,
            r.chunked_micros,
            r.semi_micros
        );
    }
    if let Some(last) = rows.last() {
        println!();
        println!(
            "per-rule derive attempts, {}({}) — attempted vs derived-new:",
            last.family, last.param
        );
        println!(
            "{:<44} {:>12} {:>12} {:>10}",
            "rule", "semi fired", "chunk fired", "new"
        );
        for rule in last.rules.iter().take(8) {
            println!(
                "{:<44} {:>12} {:>12} {:>10}",
                rule.label, rule.semi_attempts, rule.chunked_attempts, rule.new_terms
            );
        }
    }

    if write_json {
        write_saturation_blob(&rows);
    }
}

/// Emit `BENCH_saturation.json`: per-family closure timings, terms/sec
/// throughput, and derive-attempt counts for every saturation mode (with
/// the closure-identity bit), plus per-rule fired/derived-new counters.
fn write_saturation_blob(rows: &[SaturationRow]) {
    let mut rec = Recorder::new();
    for r in rows {
        let key = format!("saturation.{}.{}", r.family, r.param);
        rec.counter(&format!("{key}.nodes"), r.nodes as u64);
        rec.counter(&format!("{key}.terms"), r.terms as u64);
        if let Some(us) = r.naive_micros {
            rec.counter(&format!("{key}.naive_micros"), us as u64);
        }
        rec.counter(&format!("{key}.semi_micros"), r.semi_micros as u64);
        rec.counter(&format!("{key}.chunked_micros"), r.chunked_micros as u64);
        if let Some(d) = r.naive_derives {
            rec.counter(&format!("{key}.naive_derives"), d);
        }
        rec.counter(&format!("{key}.semi_derives"), r.semi_derives);
        rec.counter(&format!("{key}.chunked_derives"), r.chunked_derives);
        rec.counter(&format!("{key}.identical"), u64::from(r.identical));
        if let Some(s) = r.naive_speedup() {
            rec.gauge(&format!("{key}.naive_over_semi"), s);
        }
        rec.gauge(&format!("{key}.speedup"), r.chunked_speedup());
        rec.gauge(&format!("{key}.semi_terms_per_sec"), r.semi_terms_per_sec());
        rec.gauge(
            &format!("{key}.chunked_terms_per_sec"),
            r.chunked_terms_per_sec(),
        );
        for rule in &r.rules {
            let rk = format!("{key}.rule.{}", rule.label);
            if let Some(n) = rule.naive_attempts {
                rec.counter(&format!("{rk}.naive_fired"), n);
            }
            rec.counter(&format!("{rk}.semi_fired"), rule.semi_attempts);
            rec.counter(&format!("{rk}.chunked_fired"), rule.chunked_attempts);
            rec.counter(&format!("{rk}.new"), rule.new_terms);
        }
    }
    let report = rec.into_report();
    let path = "BENCH_saturation.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn run_certify(smoke: bool, write_json: bool) {
    banner(&format!(
        "certify — independent proof checker vs proof-carrying analysis{}",
        if smoke { " (smoke sizes)" } else { "" }
    ));
    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>8} {:>12} {:>12} {:>9} {:>9}",
        "family",
        "param",
        "nodes",
        "terms",
        "axioms",
        "analyze (us)",
        "certify (us)",
        "overhead",
        "complete"
    );
    let rows = certify_overhead(smoke);
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>8} {:>8} {:>8} {:>12} {:>12} {:>8.2}x {:>9}",
            r.family,
            r.param,
            r.nodes,
            r.terms,
            r.axioms,
            r.analyze_micros,
            r.certify_micros,
            r.overhead(),
            if r.complete { "yes" } else { "NO" },
        );
        assert!(
            r.complete,
            "{}/{}: certificate does not cover the closure",
            r.family, r.param
        );
        // Acceptance bound: re-checking proofs must cost at most 2× the
        // proof-carrying analysis itself (small floor for timer noise on
        // sub-millisecond instances).
        assert!(
            r.certify_micros <= 2 * r.analyze_micros || r.certify_micros < 2_000,
            "{}/{}: certify {}us exceeds 2x analyze {}us",
            r.family,
            r.param,
            r.certify_micros,
            r.analyze_micros
        );
    }
    println!();
    println!("every closure re-validated by the checker; `complete` asserts the");
    println!("certificate accounts for every recorded term (axioms + derived).");

    if write_json {
        write_certify_blob(&rows);
    }
}

/// Emit `BENCH_certify.json`: per-family analysis-vs-certification timings
/// and certificate coverage counts (terms/axioms and the completeness bit),
/// plus the certify/analyze overhead ratio as a gauge.
fn write_certify_blob(rows: &[CertifyRow]) {
    let mut rec = Recorder::new();
    for r in rows {
        let key = format!("certify.{}.{}", r.family, r.param);
        rec.counter(&format!("{key}.nodes"), r.nodes as u64);
        rec.counter(&format!("{key}.terms"), r.terms as u64);
        rec.counter(&format!("{key}.axioms"), r.axioms as u64);
        rec.counter(&format!("{key}.analyze_micros"), r.analyze_micros as u64);
        rec.counter(&format!("{key}.certify_micros"), r.certify_micros as u64);
        rec.counter(&format!("{key}.complete"), u64::from(r.complete));
        rec.gauge(&format!("{key}.overhead"), r.overhead());
    }
    let report = rec.into_report();
    let path = "BENCH_certify.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn run_audit(smoke: bool, write_json: bool) {
    banner(&format!(
        "audit — certified flaw-path reports end to end{}",
        if smoke { " (smoke sizes)" } else { "" }
    ));
    println!(
        "{:<20} {:>5} {:>8} {:>6} {:>12} {:>12} {:>11} {:>10}",
        "policy", "reqs", "violated", "paths", "analyze (us)", "render (us)", "paths/sec", "bytes"
    );
    let rows = audit_provenance(smoke);
    for r in &rows {
        println!(
            "{:<20} {:>5} {:>8} {:>6} {:>12} {:>12} {:>11.0} {:>10}",
            r.name,
            r.requirements,
            r.violated,
            r.paths,
            r.analyze_micros,
            r.render_micros,
            r.paths_per_sec(),
            r.report_bytes,
        );
        assert!(r.requirements > 0, "{}: nothing audited", r.name);
        assert!(
            r.violated == 0 || r.paths > 0,
            "{}: violations without provenance",
            r.name
        );
    }
    println!();
    println!("every report is schema-versioned JSON whose paths are backed by");
    println!("certifier-accepted derivations (render = certify + walk + emit).");

    if write_json {
        write_audit_blob(&rows);
    }
}

/// Emit `BENCH_audit.json`: per-policy audit timings, flaw-path counts and
/// report sizes, plus the paths/second enumeration rate as a gauge.
fn write_audit_blob(rows: &[AuditRow]) {
    let mut rec = Recorder::new();
    for r in rows {
        let key = format!("audit.{}", r.name);
        rec.counter(&format!("{key}.requirements"), r.requirements as u64);
        rec.counter(&format!("{key}.violated"), r.violated as u64);
        rec.counter(&format!("{key}.paths"), r.paths as u64);
        rec.counter(&format!("{key}.analyze_micros"), r.analyze_micros as u64);
        rec.counter(&format!("{key}.render_micros"), r.render_micros as u64);
        rec.counter(&format!("{key}.report_bytes"), r.report_bytes as u64);
        rec.gauge(&format!("{key}.paths_per_sec"), r.paths_per_sec());
    }
    let report = rec.into_report();
    let path = "BENCH_audit.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn run_population(smoke: bool, write_json: bool) {
    banner(&format!(
        "population — streamed Zipf batches and the skew scheduler duel{}",
        if smoke { " (smoke sizes)" } else { "" }
    ));
    println!(
        "{:<12} {:>12} {:>10} {:>6} {:>12} {:>14} {:>9} {:>8} {:>10}",
        "users",
        "fingerprints",
        "peak group",
        "jobs",
        "wall (us)",
        "verdicts/sec",
        "hit rate",
        "steals",
        "evictions"
    );
    let rows = population_throughput(smoke);
    for r in &rows {
        println!(
            "{:<12} {:>12} {:>10} {:>6} {:>12} {:>14.0} {:>8.2}% {:>8} {:>10}",
            r.users,
            r.fingerprints,
            r.peak_group,
            r.jobs,
            r.micros,
            r.verdicts_per_sec(),
            100.0 * r.hit_rate(),
            r.steals,
            r.cache_evictions,
        );
        if !smoke {
            // Acceptance: the million-user Zipf batch collapses onto its
            // fingerprints — hit rate above 99%.
            assert!(
                r.hit_rate() > 0.99,
                "{} users: hit rate {:.4} below the 99% bar",
                r.users,
                r.hit_rate()
            );
        }
    }

    let skew = skew_schedule_comparison(smoke);
    println!();
    println!(
        "clustered giants ({} users, {} giants of width {} in worker 0's chunk, tiny width {}, jobs {}):",
        skew.users, skew.giants, skew.giant_width, skew.tiny_width, skew.jobs
    );
    println!(
        "  critical path: fixed {:>9} us   work-stealing {:>9} us   speedup {:.2}x   steals {}",
        skew.fixed_critical_micros,
        skew.stealing_critical_micros,
        skew.speedup(),
        skew.steals
    );
    println!(
        "  measured wall: fixed {:>9} us   work-stealing {:>9} us   (degenerates to total work on a core-starved host)",
        skew.fixed_wall_micros, skew.stealing_wall_micros
    );
    if !smoke {
        // Acceptance: stealing beats the static partition by >= 1.5x on
        // the clustered-giants skew at --jobs 8. The score is the critical
        // path over the recorded worker assignment (the wall time on one
        // core per worker) — the schedule-sensitive quantity that raw wall
        // time stops being once the host timeshares the workers.
        assert!(
            skew.speedup() >= 1.5,
            "work-stealing speedup {:.2}x below the 1.5x bar",
            skew.speedup()
        );
    }
    println!();
    println!("streamed verdicts buffer nothing per-group; the cache hit rate is");
    println!("the fraction of users served from an already-saturated fingerprint.");

    if write_json {
        write_population_blob(&rows, &skew);
    }
}

/// Emit `BENCH_population.json`: per-population streamed throughput
/// (verdicts/sec, cache hit rate, steal and eviction counts, hottest
/// fingerprint group) plus the fixed-vs-stealing critical paths, walls and
/// speedup on the clustered-giants skew workload.
fn write_population_blob(rows: &[PopulationRow], skew: &SkewRow) {
    let mut rec = Recorder::new();
    for r in rows {
        let key = format!("population.zipf.{}x{}", r.users, r.fingerprints);
        rec.counter(&format!("{key}.users"), r.users as u64);
        rec.counter(&format!("{key}.fingerprints"), r.fingerprints as u64);
        rec.counter(&format!("{key}.peak_group"), r.peak_group as u64);
        rec.counter(&format!("{key}.jobs"), r.jobs as u64);
        rec.counter(&format!("{key}.micros"), r.micros as u64);
        rec.counter(&format!("{key}.verdicts"), r.verdicts);
        rec.counter(&format!("{key}.violated"), r.violated);
        rec.counter(&format!("{key}.steals"), r.steals);
        rec.counter(&format!("{key}.cache_hits"), r.cache_hits);
        rec.counter(&format!("{key}.cache_misses"), r.cache_misses);
        rec.counter(&format!("{key}.cache_evictions"), r.cache_evictions);
        rec.gauge(&format!("{key}.hit_rate"), r.hit_rate());
        rec.gauge(&format!("{key}.verdicts_per_sec"), r.verdicts_per_sec());
    }
    let key = format!(
        "population.skew.{}x{}g{}t{}",
        skew.users, skew.giants, skew.giant_width, skew.tiny_width
    );
    rec.counter(&format!("{key}.users"), skew.users as u64);
    rec.counter(&format!("{key}.giants"), skew.giants as u64);
    rec.counter(&format!("{key}.giant_width"), skew.giant_width as u64);
    rec.counter(&format!("{key}.tiny_width"), skew.tiny_width as u64);
    rec.counter(&format!("{key}.jobs"), skew.jobs as u64);
    rec.counter(
        &format!("{key}.fixed_critical_micros"),
        skew.fixed_critical_micros as u64,
    );
    rec.counter(
        &format!("{key}.stealing_critical_micros"),
        skew.stealing_critical_micros as u64,
    );
    rec.counter(
        &format!("{key}.fixed_wall_micros"),
        skew.fixed_wall_micros as u64,
    );
    rec.counter(
        &format!("{key}.stealing_wall_micros"),
        skew.stealing_wall_micros as u64,
    );
    rec.counter(&format!("{key}.steals"), skew.steals);
    rec.gauge(&format!("{key}.speedup"), skew.speedup());
    let report = rec.into_report();
    let path = "BENCH_population.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn run_incremental(smoke: bool, write_json: bool) {
    banner(&format!(
        "incremental — grant/revoke maintenance vs from-scratch recompute{}",
        if smoke { " (smoke sizes)" } else { "" }
    ));
    println!(
        "{:<8} {:<12} {:>6} {:>5} {:>6} {:>7} {:>9} {:>11} {:>12} {:>8} {:>9} {:>9} {:>10}",
        "family",
        "mode",
        "width",
        "core",
        "edits",
        "nodes",
        "terms",
        "incr (us)",
        "scratch (us)",
        "speedup",
        "deleted",
        "rederived",
        "identical"
    );
    let rows = incremental_maintenance(smoke);
    for r in &rows {
        println!(
            "{:<8} {:<12} {:>6} {:>5} {:>6} {:>7} {:>9} {:>11} {:>12} {:>7.2}x {:>9} {:>9} {:>10}",
            r.family,
            r.mode,
            r.width,
            r.core,
            r.edits,
            r.nodes,
            r.terms,
            r.incremental_micros,
            r.scratch_micros,
            r.speedup(),
            r.deleted,
            r.rederived,
            if r.identical { "yes" } else { "NO" },
        );
    }
    for r in &rows {
        // Per-row from-scratch identity: every edit's maintained closure
        // was compared term-for-term against a fresh saturation.
        assert!(
            r.identical,
            "{} edit_trace({},{}) {}: maintained closure diverged from scratch",
            r.family, r.width, r.core, r.mode
        );
        // Full runs pin the headline claim: small edits against a large
        // (rule-dense) closure are maintained at least 5× faster than
        // recomputing the same closure in the same mode. The gate covers
        // the largest semi-naive dense row (core >= 20), where recompute
        // pays the full attempt storm the maintenance path skips and the
        // ratio has noise headroom on a loaded 1-core box; core 12–16 sit
        // in the crossover region (~4.5–5.2×) and are reported only. The
        // chunked rows are also reported ungated: the chunked engine's
        // derive prefilters already skip most of the storm from scratch,
        // so its recompute baseline is ~3x cheaper and the maintenance win
        // settles near 2x. The sparse family is the absorb-bound floor
        // where break-even is the honest result. Smoke sizes are too small
        // for stable ratios either way, so CI checks identity only.
        if !smoke && r.family == "dense" && r.mode == "semi_naive" && r.core >= 20 {
            assert!(
                r.speedup() >= 5.0,
                "dense edit_trace({},{}) {}: maintenance speedup {:.2}x fell below 5x",
                r.width,
                r.core,
                r.mode,
                r.speedup()
            );
        }
    }
    if write_json {
        write_incremental_blob(&rows);
    }
}

/// Emit `BENCH_incremental.json`: per-row maintenance vs recompute timings,
/// the speedup and edit throughput, the cascade/restart term counters, and
/// the per-row identity bit.
fn write_incremental_blob(rows: &[IncrementalRow]) {
    let mut rec = Recorder::new();
    for r in rows {
        let key = format!(
            "incremental.edit_trace.{}.{}x{}.{}",
            r.family, r.width, r.core, r.mode
        );
        rec.counter(&format!("{key}.width"), r.width as u64);
        rec.counter(&format!("{key}.core"), r.core as u64);
        rec.counter(&format!("{key}.edits"), r.edits as u64);
        rec.counter(&format!("{key}.nodes"), r.nodes as u64);
        rec.counter(&format!("{key}.terms"), r.terms as u64);
        rec.counter(
            &format!("{key}.incremental_micros"),
            r.incremental_micros as u64,
        );
        rec.counter(&format!("{key}.scratch_micros"), r.scratch_micros as u64);
        rec.counter(&format!("{key}.deleted"), r.deleted);
        rec.counter(&format!("{key}.rederived"), r.rederived);
        rec.counter(&format!("{key}.survivors"), r.survivors);
        rec.counter(&format!("{key}.identical"), u64::from(r.identical));
        rec.gauge(&format!("{key}.speedup"), r.speedup());
        rec.gauge(&format!("{key}.edits_per_sec"), r.edits_per_sec());
    }
    let report = rec.into_report();
    let path = "BENCH_incremental.json";
    match std::fs::write(path, report.to_json().pretty()) {
        Ok(()) => eprintln!("metrics: wrote {path}"),
        Err(e) => eprintln!("metrics: could not write {path}: {e}"),
    }
}

fn run_e7() {
    banner("E7 — rule-group ablation over the fixture requirements");
    println!(
        "{:<20} {:>10} {:>14}",
        "disabled group", "detected", "false alarms"
    );
    for r in e7_ablation() {
        println!(
            "{:<20} {:>6}/{:<3} {:>14}",
            r.disabled, r.detected, r.total, r.false_alarms
        );
    }
    println!();
    println!("every group except the feedback guard is load-bearing for");
    println!("detection; removing the guard instead adds false alarms.");
}
