//! The E1–E7 experiment implementations.
//!
//! The paper has no measurement tables; its reproducible artefacts are
//! Figure 1 (a derivation), the two running examples, and the claims of
//! soundness (Theorem 1), pessimism (§4 closing remark) and tractability
//! (§1 "reasonable amount of computation"). Each experiment regenerates one
//! of those; EXPERIMENTS.md records the outcomes.

use oodb_engine::exec::run_query;
use oodb_engine::Database;
use oodb_lang::{parse_query, parse_requirement};
use oodb_model::{UserName, Value};
use secflow::algorithm::{
    analyze, analyze_batch, analyze_batch_streaming, analyze_with_config, AnalysisConfig,
    AnalysisSink, BatchOptions, BatchSchedule, ClosureCache, GroupRecord,
};
use secflow::closure::{Closure, ProofMode, SaturationMode, DEFAULT_TERM_LIMIT};
use secflow::reference::RefClosure;
use secflow::report::render_derivation;
use secflow::rules::RuleConfig;
use secflow::term::Term;
use secflow::unfold::NProgram;
use secflow_dynamic::differential::{classify, DiffReport};
use secflow_dynamic::infer::{infer, Probe};
use secflow_dynamic::strategy::{assignments, shapes, ArgChoice, StrategySpec};
use secflow_dynamic::worlds::{enumerate_worlds, WorldSpec};
use secflow_dynamic::{attack_requirement, AttackerConfig};
use secflow_workloads::random::{random_case, RandomSpec};
use secflow_workloads::scale::{
    attr_fanout, call_chain, clustered_giants, deep_expr, dense_equalities, multi_user,
    multi_user_deep, wide_grants, zipf_population, ScaleCase,
};
use secflow_workloads::{fixtures, stockbroker};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// --------------------------------------------------------------------- E1

/// E1 result: the regenerated Figure-1 derivation plus structural checks.
pub struct Figure1 {
    /// The unfolded program rendered in the paper's numbered notation.
    pub unfolded: Vec<String>,
    /// The derivation text.
    pub derivation: String,
    /// The judgments of the paper's Figure 1, with whether each was
    /// derived.
    pub judgments: Vec<(String, bool)>,
}

/// E1 — regenerate Figure 1: the derivation showing `ti` on
/// `5r_salary(4broker)` for the clerk.
pub fn e1_figure1() -> Figure1 {
    let schema = stockbroker();
    let caps = schema.user_str("clerk").expect("fixture has clerk");
    let prog = NProgram::unfold(&schema, caps).expect("fixture unfolds");
    let closure = Closure::compute(&prog).expect("closure within budget");

    let unfolded = prog
        .outers
        .iter()
        .map(|o| format!("{}: {}", o.fn_ref, prog.render(o.root)))
        .collect();

    // The paper's Figure 1 judgments, in its order. Node numbering for the
    // fixture (which also grants calcSalary-free checkBudget): verified by
    // the unfold tests: 1broker 2r_budget 3:10 4broker 5r_salary 6* 7>=,
    // then w_budget: 8a1 9a2 10w_budget.
    let judgments: Vec<(String, bool)> = [
        ("=[8o, 1broker]", closure.contains(&secflow::Term::Eq(1, 8))),
        (
            "=[9v, 2r_budget(1broker)]",
            closure.contains(&secflow::Term::Eq(2, 9)),
        ),
        ("ti[9v]", closure.has_ti(9)),
        ("ti[2r_budget(1broker)]", closure.has_ti(2)),
        ("pa[9v]", closure.has_pa(9)),
        ("pa[2r_budget(1broker)]", closure.has_pa(2)),
        ("ti[7>=(...)]", closure.has_ti(7)),
        ("ti[6*(10, 5r_salary(4broker))]", closure.has_ti(6)),
        ("ti[3:10]", closure.has_ti(3)),
        ("ti[5r_salary(4broker)]  <-- the flaw", closure.has_ti(5)),
    ]
    .into_iter()
    .map(|(s, b)| (s.to_owned(), b))
    .collect();

    let goal = closure.ti_witness(5).expect("figure 1 goal derivable");
    let derivation = render_derivation(&prog, &closure, &goal);
    Figure1 {
        unfolded,
        derivation,
        judgments,
    }
}

// --------------------------------------------------------------------- E2

/// One E2 row: a fixture requirement with expected and computed verdicts.
pub struct E2Row {
    /// Scenario name.
    pub scenario: &'static str,
    /// Requirement text.
    pub requirement: String,
    /// Paper-expected verdict (true = flaw).
    pub expected_flaw: bool,
    /// Verdict computed by `A(R)`.
    pub got_flaw: bool,
}

/// E2 — the running examples: flawed policies flagged, repaired policies
/// pass.
pub fn e2_running_examples() -> Vec<E2Row> {
    let mut rows = Vec::new();
    let stock = fixtures::stockbroker();
    let person = fixtures::person();
    let hospital = fixtures::hospital();
    let expectations: [(&str, &oodb_lang::Schema, &[bool]); 3] = [
        ("stockbroker", &stock, &[true, true, false, false]),
        ("person", &person, &[false]),
        ("hospital", &hospital, &[true, false, false]),
    ];
    for (name, schema, expected) in expectations {
        for (req, &expected_flaw) in schema.requirements.iter().zip(expected) {
            let verdict = analyze(schema, req).expect("fixture analyses run");
            rows.push(E2Row {
                scenario: name,
                requirement: req.to_string(),
                expected_flaw,
                got_flaw: verdict.is_violated(),
            });
        }
    }
    rows
}

// --------------------------------------------------------------- E3 / E4

/// E3/E4 — differential soundness and pessimism over a seeded corpus.
/// Returns the aggregate report; `dynamic_only == 0` is the soundness
/// check, `realised_alarm_rate` the pessimism measure.
pub fn e3_e4_differential(cases: usize) -> DiffReport {
    let spec = RandomSpec::default();
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: 2,
            max_assignments: 2048,
            max_shapes: 64,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };
    let mut report = DiffReport::default();
    for seed in 0..cases as u64 {
        let case = random_case(seed, &spec);
        for req in &case.requirements {
            report.record(classify(&case.schema, req, &cfg));
        }
    }
    report
}

// --------------------------------------------------------------------- E5

/// Per-family E5 descriptor: name, generator, parameter list.
type ScaleFamily<'a> = (&'static str, fn(usize) -> ScaleCase, &'a [usize]);

/// One scaling measurement.
pub struct E5Row {
    /// Schema family.
    pub family: &'static str,
    /// Size parameter.
    pub param: usize,
    /// Unfolded program size (numbered occurrences).
    pub nodes: usize,
    /// Closure size (terms).
    pub terms: usize,
    /// Wall time of unfold + closure + check, microseconds.
    pub micros: u128,
}

/// E5 — closure scaling across the four schema families (full sweep; use
/// release mode — the biggest instances saturate large equality cliques).
pub fn e5_scaling() -> Vec<E5Row> {
    // The chain and deep-expression families grow superlinearly (origin
    // proliferation over long equality chains — see EXPERIMENTS.md E5);
    // the sweeps stop where a single run stays within ~10 s.
    e5_scaling_sized(
        &[1, 2, 4, 8, 16],
        &[1, 2, 4, 8, 16, 32, 64],
        &[1, 2, 3, 4, 5],
        &[1, 2, 4, 8, 16],
    )
}

/// E5 with explicit size lists per family (tests use small instances).
pub fn e5_scaling_sized(
    chain: &[usize],
    wide: &[usize],
    deep: &[usize],
    fanout: &[usize],
) -> Vec<E5Row> {
    let mut rows = Vec::new();
    let families: [ScaleFamily<'_>; 4] = [
        ("call_chain", call_chain, chain),
        ("wide_grants", wide_grants, wide),
        ("deep_expr", deep_expr, deep),
        ("attr_fanout", attr_fanout, fanout),
    ];
    for (family, gen, params) in families {
        for &param in params {
            let case = gen(param);
            let caps = case.schema.user_str("u").expect("scale user");
            let start = Instant::now();
            let prog = NProgram::unfold(&case.schema, caps).expect("scale unfolds");
            let closure = Closure::compute(&prog).expect("scale closure");
            let verdict = secflow::algorithm::check_against(&prog, &closure, &case.requirement);
            let micros = start.elapsed().as_micros();
            let _ = verdict;
            rows.push(E5Row {
                family,
                param,
                nodes: prog.len(),
                terms: closure.len(),
                micros,
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- E6

/// One engine-throughput measurement.
pub struct E6Row {
    /// Number of brokers in the extent.
    pub objects: usize,
    /// Rows the query produced.
    pub rows: usize,
    /// Wall time, microseconds.
    pub micros: u128,
}

/// Build a stockbroker database with `n` brokers (deterministic values).
pub fn seeded_db(n: usize) -> Database {
    let mut db = Database::new(stockbroker()).expect("fixture checks");
    for i in 0..n {
        db.create(
            "Broker",
            vec![
                Value::str(format!("b{i}")),
                Value::Int((i as i64 % 200) + 1),
                Value::Int((i as i64 * 7) % 3000),
                Value::Int((i as i64 * 13) % 500 - 250),
            ],
        )
        .expect("seeding fits");
    }
    db
}

/// E6 — substrate sanity: probe-query throughput over growing extents.
pub fn e6_engine(sizes: &[usize]) -> Vec<E6Row> {
    let query =
        parse_query("select checkBudget(b), r_name(b) from b in Broker where r_salary(b) > 100")
            .expect("query parses");
    let admin = UserName::new("admin");
    sizes
        .iter()
        .map(|&n| {
            let mut db = seeded_db(n);
            let start = Instant::now();
            let out = run_query(&mut db, Some(&admin), &query).expect("query runs");
            E6Row {
                objects: n,
                rows: out.rows.len(),
                micros: start.elapsed().as_micros(),
            }
        })
        .collect()
}

// --------------------------------------------------------------------- E8

/// E8 aggregate: the three inferability deciders compared over a seeded
/// corpus — the finite Table-1 engine (bounded priors), the idealized
/// engine (ℤ-valid deductions) and the static `A(R)`.
///
/// Invariants: `ideal ⊆ finite` (less information can only deduce less)
/// and `ideal ⊆ static` (Theorem 1 against the honest attacker). The
/// finite engine may exceed both — exactly the finite-domain truncation
/// artefacts the idealized engine exists to filter; their count is the
/// measured size of that effect.
pub struct E8Report {
    /// Requirement checks performed.
    pub cases: usize,
    /// Cases the bounded Table-1 engine (`secflow_dynamic::infer`) realises.
    pub finite_flags: usize,
    /// Cases the idealized engine realises.
    pub ideal_flags: usize,
    /// Cases `A(R)` flags.
    pub static_flags: usize,
    /// Idealized successes the finite engine misses — must be 0.
    pub ideal_not_finite: usize,
    /// Idealized successes `A(R)` misses — must be 0 (Theorem 1).
    pub ideal_not_static: usize,
    /// Finite-engine successes `A(R)` does not flag: truncation artefacts.
    pub finite_artifacts: usize,
}

/// Does the bounded I(E) engine realise the requirement's inferability
/// capability at any occurrence, for any probe sequence within the bounds?
fn ie_achieves(
    schema: &oodb_lang::Schema,
    req: &oodb_lang::Requirement,
    spec: &StrategySpec,
    world_spec: &WorldSpec,
) -> bool {
    use secflow::algorithm::occurrences;
    use secflow::unfold::NProgram;
    let Some(caps) = schema.user(&req.user) else {
        return false;
    };
    let Ok(prog) = NProgram::unfold(schema, caps) else {
        return false;
    };
    let occs = occurrences(&prog, &req.target);
    if occs.is_empty() {
        return false;
    }
    let Ok(worlds) = enumerate_worlds(schema, world_spec) else {
        return false;
    };
    let want_total = req.ret_caps.contains(&oodb_lang::Cap::Ti);
    for shape in shapes(&prog, spec) {
        let Some(asgs) = assignments(&prog, &shape, spec) else {
            continue;
        };
        for asg in asgs {
            for world in &worlds {
                let probes: Vec<Probe> = shape
                    .iter()
                    .zip(&asg)
                    .map(|(&outer, choices)| Probe {
                        outer,
                        args: choices
                            .iter()
                            .map(|c| match c {
                                ArgChoice::Val(v) => v.clone(),
                                ArgChoice::Object(class, idx) => world
                                    .extent(class)
                                    .get(*idx)
                                    .copied()
                                    .map(Value::Obj)
                                    .unwrap_or(Value::Null),
                            })
                            .collect(),
                    })
                    .collect();
                let d = infer(&prog, &probes, world, &worlds);
                for occ in &occs {
                    let Some(outer_idx) = prog.outer_index_of(occ.ret) else {
                        continue;
                    };
                    for (t, &o) in shape.iter().enumerate() {
                        if o != outer_idx {
                            continue;
                        }
                        let site = (t, occ.ret);
                        let hit = if want_total {
                            d.is_total(site)
                        } else {
                            d.is_partial(site) || d.is_total(site)
                        };
                        if hit {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// E8 — run the three deciders over the inferability half of the corpus.
pub fn e8_containment(cases: usize) -> E8Report {
    let spec = RandomSpec::default();
    let strategy = StrategySpec {
        max_steps: 2,
        max_assignments: 512,
        max_shapes: 32,
        ..StrategySpec::default()
    };
    let world_spec = WorldSpec {
        objects_per_class: 1,
        int_domain: vec![0, 1, 2],
        max_worlds: 512,
    };
    // The idealized decider is the inferability arbiter inside
    // attack_requirement (the corpus requirement's caps are inferability
    // only, so the alterability arm never runs).
    let attacker = AttackerConfig {
        strategies: strategy.clone(),
        worlds: world_spec.clone(),
        ..AttackerConfig::default()
    };
    let mut report = E8Report {
        cases: 0,
        finite_flags: 0,
        ideal_flags: 0,
        static_flags: 0,
        ideal_not_finite: 0,
        ideal_not_static: 0,
        finite_artifacts: 0,
    };
    for seed in 0..cases as u64 {
        let case = random_case(seed, &spec);
        // Only the inferability requirement (the first one) — I(E) has no
        // alterability notion.
        let req = &case.requirements[0];
        let finite = ie_achieves(&case.schema, req, &strategy, &world_spec);
        let ideal = attack_requirement(&case.schema, req, &attacker)
            .map(|o| o.achieved)
            .unwrap_or(false);
        let st = analyze(&case.schema, req)
            .map(|v| v.is_violated())
            .unwrap_or(false);
        report.cases += 1;
        report.finite_flags += finite as usize;
        report.ideal_flags += ideal as usize;
        report.static_flags += st as usize;
        report.ideal_not_finite += (ideal && !finite) as usize;
        report.ideal_not_static += (ideal && !st) as usize;
        report.finite_artifacts += (finite && !st) as usize;
    }
    report
}

// --------------------------------------------------------------------- E7

/// One ablation row.
pub struct E7Row {
    /// Which rule group was disabled.
    pub disabled: &'static str,
    /// Of the E2 fixture flaws, how many were still detected.
    pub detected: usize,
    /// Total expected detections.
    pub total: usize,
    /// False alarms introduced on the repaired policies.
    pub false_alarms: usize,
}

/// The rule-config variants for E7.
pub fn ablation_variants() -> Vec<(&'static str, RuleConfig)> {
    let full = RuleConfig::default();
    vec![
        ("none (full rules)", full),
        (
            "eq_transfer",
            RuleConfig {
                eq_transfer: false,
                ..full
            },
        ),
        (
            "pi_join",
            RuleConfig {
                pi_join: false,
                ..full
            },
        ),
        (
            "pi_star",
            RuleConfig {
                pi_star: false,
                ..full
            },
        ),
        (
            "write_read",
            RuleConfig {
                write_read: false,
                ..full
            },
        ),
        (
            "basic_rules",
            RuleConfig {
                basic_rules: false,
                ..full
            },
        ),
        (
            "feedback_guard",
            RuleConfig {
                feedback_guard: false,
                ..full
            },
        ),
    ]
}

/// A policy whose flaw is only derivable through the pi-join rule: two
/// probes against *different constants* each halve the secret; two
/// different partial inferences join to a total one.
fn pi_join_case() -> oodb_lang::Schema {
    let s = oodb_lang::parse_schema(
        r#"
        class C { a: int }
        fn atLeastOne(c: C): bool { r_a(c) >= 1 }
        fn exactlyTwo(c: C): bool { r_a(c) == 2 }
        user probes { atLeastOne, exactlyTwo }
        require (probes, r_a(x) : ti)
        "#,
    )
    .expect("pi-join fixture parses");
    oodb_lang::check_schema(&s).expect("pi-join fixture checks");
    s
}

/// A policy whose flaw is only derivable through the pi* joint-constraint
/// machinery: the comparison's left side is `a1*a0 - (a1+a0)` with `a1`
/// readable. Partial inferability cannot flow *down* into the subtraction
/// (knowing one operand of `-` constrains nothing), so the only route to
/// `pi[a0]` is the chain of joint constraints
/// `(a0, +) ∘ (+, lhs) ∘ (lhs, a0')` collapsed on the equal pair
/// `(a0, a0')` — found by the differential experiment E3.
fn pi_star_case() -> oodb_lang::Schema {
    let s = oodb_lang::parse_schema(
        r#"
        class C { a0: int, a1: int }
        fn skew(c: C): bool {
          r_a1(c) * r_a0(c) - (r_a1(c) + r_a0(c)) >= r_a0(c)
        }
        user watcher { skew, r_a1 }
        require (watcher, r_a0(x) : pi)
        "#,
    )
    .expect("pi* fixture parses");
    oodb_lang::check_schema(&s).expect("pi* fixture checks");
    s
}

/// E7 — disable one rule group at a time and re-run the fixture
/// requirements: every group except the guard loses detections; disabling
/// the guard adds false alarms instead.
pub fn e7_ablation() -> Vec<E7Row> {
    // (schema, requirement, expected flaw) — the E2 set plus the pi-join
    // fixture.
    let stock = fixtures::stockbroker();
    let hospital = fixtures::hospital();
    let pijoin = pi_join_case();
    let mut cases: Vec<(&oodb_lang::Schema, String, bool)> = Vec::new();
    for (req, expect) in stock.requirements.iter().zip([true, true, false, false]) {
        cases.push((&stock, req.to_string(), expect));
    }
    for (req, expect) in hospital.requirements.iter().zip([true, false, false]) {
        cases.push((&hospital, req.to_string(), expect));
    }
    for req in &pijoin.requirements {
        cases.push((&pijoin, req.to_string(), true));
    }
    let pistar = pi_star_case();
    for req in &pistar.requirements {
        cases.push((&pistar, req.to_string(), true));
    }

    ablation_variants()
        .into_iter()
        .map(|(name, rules)| {
            let config = AnalysisConfig {
                rules,
                ..AnalysisConfig::default()
            };
            let mut detected = 0;
            let mut total = 0;
            let mut false_alarms = 0;
            for (schema, req_text, expect) in &cases {
                let req = parse_requirement(req_text).expect("round-trip");
                let verdict =
                    analyze_with_config(schema, &req, &config).expect("ablation analyses run");
                if *expect {
                    total += 1;
                    if verdict.is_violated() {
                        detected += 1;
                    }
                } else if verdict.is_violated() {
                    false_alarms += 1;
                }
            }
            E7Row {
                disabled: name,
                detected,
                total,
                false_alarms,
            }
        })
        .collect()
}

// --------------------------------------------------------------- fastpath

/// One old-vs-new closure measurement (`fastpath` experiment).
pub struct FastpathRow {
    /// Schema family.
    pub family: &'static str,
    /// Size parameter.
    pub param: usize,
    /// Unfolded program size (numbered occurrences).
    pub nodes: usize,
    /// Closure size (terms) — identical for both engines by construction.
    pub terms: usize,
    /// Reference-engine closure time, microseconds.
    pub ref_micros: u128,
    /// Fast-path closure time (proofs off), microseconds.
    pub fast_micros: u128,
    /// Whether the two closures derived exactly the same term set.
    pub identical: bool,
}

impl FastpathRow {
    /// Reference time over fast time.
    pub fn speedup(&self) -> f64 {
        if self.fast_micros == 0 {
            f64::INFINITY
        } else {
            self.ref_micros as f64 / self.fast_micros as f64
        }
    }
}

/// `fastpath` — time the retained reference engine (SipHash maps, always-on
/// proofs) against the interned dense engine (`ProofMode::Off`) on the E5
/// schema families, verifying the closures stay term-for-term identical.
///
/// `smoke` shrinks every family to CI-sized instances.
pub fn closure_fastpath(smoke: bool) -> Vec<FastpathRow> {
    type Gen = fn(usize) -> ScaleCase;
    let families: [(&'static str, Gen, &'static [usize]); 4] = if smoke {
        [
            ("call_chain", call_chain, &[4]),
            ("wide_grants", wide_grants, &[8]),
            ("deep_expr", deep_expr, &[3]),
            ("attr_fanout", attr_fanout, &[4]),
        ]
    } else {
        [
            ("call_chain", call_chain, &[8, 12]),
            ("wide_grants", wide_grants, &[32, 64]),
            ("deep_expr", deep_expr, &[4, 5]),
            ("attr_fanout", attr_fanout, &[8, 16]),
        ]
    };
    let rules = RuleConfig::default();
    let mut rows = Vec::new();
    for (family, gen, params) in families {
        for &param in params {
            let case = gen(param);
            let caps = case.schema.user_str("u").expect("scale user");
            let prog = NProgram::unfold(&case.schema, caps).expect("scale unfolds");
            let start = Instant::now();
            let slow = RefClosure::compute_with(&prog, &rules, DEFAULT_TERM_LIMIT)
                .expect("reference closure");
            let ref_micros = start.elapsed().as_micros();
            let start = Instant::now();
            let fast =
                Closure::compute_with_mode(&prog, &rules, DEFAULT_TERM_LIMIT, ProofMode::Off)
                    .expect("fast closure");
            let fast_micros = start.elapsed().as_micros();
            let mut tf: Vec<Term> = fast.iter().collect();
            let mut ts: Vec<Term> = slow.iter().collect();
            tf.sort();
            ts.sort();
            rows.push(FastpathRow {
                family,
                param,
                nodes: prog.len(),
                terms: fast.len(),
                ref_micros,
                fast_micros,
                identical: tf == ts,
            });
        }
    }
    rows
}

/// One batch-driver throughput measurement.
pub struct BatchRow {
    /// Users (= groups) in the workload.
    pub users: usize,
    /// Requirements checked.
    pub requirements: usize,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Wall time for the whole batch, microseconds.
    pub micros: u128,
}

/// `fastpath` part 2 — the batch driver on a multi-user workload at
/// increasing `--jobs`, asserting the verdict vector never drifts.
pub fn batch_throughput(smoke: bool) -> Vec<BatchRow> {
    // Each group must be heavy enough (a few ms of closure) for the pool
    // to beat thread-spawn overhead; smoke just checks agreement.
    let (users, width) = if smoke { (4, 4) } else { (8, 64) };
    let case = multi_user(users, width);
    let config = AnalysisConfig::default();
    let mut baseline: Option<Vec<bool>> = None;
    let mut rows = Vec::new();
    for jobs in [1usize, 2, 4, 8] {
        if jobs > users {
            break;
        }
        let opts = BatchOptions {
            jobs,
            ..BatchOptions::default()
        };
        let start = Instant::now();
        let out = analyze_batch(&case.schema, &case.requirements, &config, &opts);
        let micros = start.elapsed().as_micros();
        let verdicts: Vec<bool> = out
            .verdicts
            .iter()
            .map(|v| v.as_ref().expect("batch verdict").is_violated())
            .collect();
        match &baseline {
            None => baseline = Some(verdicts),
            Some(b) => assert_eq!(b, &verdicts, "batch verdicts drift at jobs={jobs}"),
        }
        rows.push(BatchRow {
            users,
            requirements: case.requirements.len(),
            jobs: out.jobs_used,
            micros,
        });
    }
    rows
}

// ----------------------------------------------------------------- demand

/// One demand-vs-full measurement on a scale family instance.
pub struct DemandRow {
    /// Schema family.
    pub family: &'static str,
    /// Size parameter.
    pub param: usize,
    /// Unfolded program size (numbered occurrences).
    pub nodes: usize,
    /// Terms derived by full saturation.
    pub full_terms: usize,
    /// Terms derived by the demand-driven run (slice + early exit).
    pub demand_terms: usize,
    /// Full-saturation closure + check time, microseconds.
    pub full_micros: u128,
    /// Demand time (occurrence scan + plan + closure + check), microseconds.
    pub demand_micros: u128,
    /// Did the demand run stop before draining its sliced worklist?
    pub early_exit: bool,
    /// Whether both modes produced the identical verdict (witnesses
    /// included).
    pub identical: bool,
}

impl DemandRow {
    /// Full time over demand time.
    pub fn speedup(&self) -> f64 {
        if self.demand_micros == 0 {
            f64::INFINITY
        } else {
            self.full_micros as f64 / self.demand_micros as f64
        }
    }
}

/// `demand` — time full saturation against the demand-driven engine
/// (relevance slice + goal-directed early exit) on the E5 schema families,
/// verifying the verdicts stay byte-identical. Both timings exclude the
/// shared unfolding; the demand side pays for its occurrence scan and plan
/// construction inside the measured region.
///
/// `smoke` shrinks every family to CI-sized instances.
pub fn demand_vs_full(smoke: bool) -> Vec<DemandRow> {
    use secflow::algorithm::{check_against, check_with_occurrences, occurrences};
    use secflow::demand::DemandPlan;
    type Gen = fn(usize) -> ScaleCase;
    let families: [(&'static str, Gen, &'static [usize]); 4] = if smoke {
        [
            ("call_chain", call_chain, &[4]),
            ("wide_grants", wide_grants, &[8]),
            ("deep_expr", deep_expr, &[3]),
            ("attr_fanout", attr_fanout, &[4]),
        ]
    } else {
        [
            ("call_chain", call_chain, &[8, 12]),
            ("wide_grants", wide_grants, &[32, 64]),
            ("deep_expr", deep_expr, &[4, 5]),
            ("attr_fanout", attr_fanout, &[8, 16]),
        ]
    };
    let rules = RuleConfig::default();
    let mut rows = Vec::new();
    for (family, gen, params) in families {
        for &param in params {
            let case = gen(param);
            let caps = case.schema.user_str("u").expect("scale user");
            let prog = NProgram::unfold(&case.schema, caps).expect("scale unfolds");

            let start = Instant::now();
            let full =
                Closure::compute_with_mode(&prog, &rules, DEFAULT_TERM_LIMIT, ProofMode::Off)
                    .expect("full closure");
            let full_verdict = check_against(&prog, &full, &case.requirement);
            let full_micros = start.elapsed().as_micros();

            let start = Instant::now();
            let occs = occurrences(&prog, &case.requirement.target);
            let plan = DemandPlan::build(&prog, [(&case.requirement, occs.as_slice())]);
            let demand = Closure::compute_demand(&prog, &rules, DEFAULT_TERM_LIMIT, &plan)
                .expect("demand closure");
            let demand_verdict = check_with_occurrences(&prog, &demand, &case.requirement, &occs);
            let demand_micros = start.elapsed().as_micros();

            rows.push(DemandRow {
                family,
                param,
                nodes: prog.len(),
                full_terms: full.len(),
                demand_terms: demand.len(),
                full_micros,
                demand_micros,
                early_exit: demand.early_exited(),
                identical: full_verdict == demand_verdict,
            });
        }
    }
    rows
}

// ------------------------------------------------------------- saturation

/// Per-rule attempt/insertion counters for one [`SaturationRow`].
pub struct SaturationRuleRow {
    /// Table-2 rule label.
    pub label: &'static str,
    /// Derive attempts under naive saturation (full rule sweeps) — `None`
    /// past the naive-affordable sizes, where only the delta engines run.
    pub naive_attempts: Option<u64>,
    /// Derive attempts under semi-naive saturation (delta-gated).
    pub semi_attempts: u64,
    /// Derive attempts under the chunked kernels — at most `semi_attempts`
    /// per rule, since the diff-row prefilters only ever skip calls that
    /// were certain to dedup.
    pub chunked_attempts: u64,
    /// New terms the rule inserted — identical in every mode.
    pub new_terms: u64,
}

/// One saturation measurement: naive full sweeps (small sizes only) vs the
/// retained semi-naive scalar baseline vs the chunked kernel engine.
pub struct SaturationRow {
    /// Schema family.
    pub family: &'static str,
    /// Size parameter.
    pub param: usize,
    /// Unfolded program size (numbered occurrences).
    pub nodes: usize,
    /// Closure size (terms) — identical for every mode by construction.
    pub terms: usize,
    /// Naive-saturation closure time (proofs off), microseconds — `None`
    /// once the sweep passes the sizes where naive stays affordable.
    pub naive_micros: Option<u128>,
    /// Semi-naive closure time (proofs off), microseconds (best of 2).
    pub semi_micros: u128,
    /// Chunked-kernel closure time (proofs off), microseconds (best of 2).
    pub chunked_micros: u128,
    /// Total derive attempts, naive mode (when it ran).
    pub naive_derives: Option<u64>,
    /// Total derive attempts, semi-naive mode.
    pub semi_derives: u64,
    /// Total derive attempts, chunked mode.
    pub chunked_derives: u64,
    /// Whether every mode matched term-for-term, round-for-round,
    /// witness-for-witness — with chunked additionally matching the scalar
    /// baseline in exact insertion order (byte identity).
    pub identical: bool,
    /// Per-rule counters, sorted by semi-naive attempt count descending.
    pub rules: Vec<SaturationRuleRow>,
}

impl SaturationRow {
    /// Naive time over semi-naive time (when naive ran).
    pub fn naive_speedup(&self) -> Option<f64> {
        self.naive_micros
            .map(|n| n as f64 / self.semi_micros.max(1) as f64)
    }

    /// Semi-naive (scalar baseline) time over chunked-kernel time — the
    /// headline single-closure speedup.
    pub fn chunked_speedup(&self) -> f64 {
        self.semi_micros as f64 / self.chunked_micros.max(1) as f64
    }

    /// Closure terms per second under the scalar semi-naive baseline.
    pub fn semi_terms_per_sec(&self) -> f64 {
        self.terms as f64 * 1e6 / self.semi_micros.max(1) as f64
    }

    /// Closure terms per second under the chunked kernels.
    pub fn chunked_terms_per_sec(&self) -> f64 {
        self.terms as f64 * 1e6 / self.chunked_micros.max(1) as f64
    }
}

/// `saturation` — time the saturation modes against each other on the two
/// re-firing-heavy families (`wide_grants` and `dense_equalities`),
/// verifying the closures stay byte-identical: same term set, same round
/// count, same witnesses, and (for chunked vs the scalar baseline) the
/// same exact insertion order. The timed runs are uninstrumented
/// (`ProofMode::Off`, best of 2 for the delta engines); the per-rule
/// fired/derived-new counters come from separate stats-collecting runs.
///
/// Naive full sweeps blow up super-linearly (the equality-clique family
/// saturates in O(n⁴⁺) naive time, ~4 s at n = 16), so the sweep runs
/// naive only up to `naive_cap` and lets the two delta engines carry the
/// comparison into the thousands-of-nodes sizes (`wide_grants(512)`
/// unfolds to 2051 numbered occurrences).
///
/// `smoke` shrinks both families to CI-sized instances.
pub fn saturation_modes(smoke: bool) -> Vec<SaturationRow> {
    type Gen = fn(usize) -> ScaleCase;
    let families: [(&'static str, Gen, &'static [usize], usize); 2] = if smoke {
        [
            ("wide_grants", wide_grants, &[8], 8),
            ("dense_equalities", dense_equalities, &[8], 8),
        ]
    } else {
        [
            ("wide_grants", wide_grants, &[64, 128, 192, 512], 192),
            (
                "dense_equalities",
                dense_equalities,
                &[8, 12, 16, 32, 48],
                16,
            ),
        ]
    };
    let rules = RuleConfig::default();
    let mut rows = Vec::new();
    for (family, gen, params, naive_cap) in families {
        for &param in params {
            let case = gen(param);
            let caps = case.schema.user_str("u").expect("scale user");
            let prog = NProgram::unfold(&case.schema, caps).expect("scale unfolds");

            let timed = |mode, reps: u32| {
                let mut best = u128::MAX;
                let mut closure = None;
                for _ in 0..reps {
                    let start = Instant::now();
                    let c = Closure::compute_with_saturation(
                        &prog,
                        &rules,
                        DEFAULT_TERM_LIMIT,
                        ProofMode::Off,
                        mode,
                    )
                    .expect("scale closure");
                    best = best.min(start.elapsed().as_micros());
                    closure = Some(c);
                }
                (closure.expect("reps >= 1"), best)
            };
            let naive = (param <= naive_cap).then(|| timed(SaturationMode::Naive, 1));
            // Small rows finish in ~1 ms where a single descheduling event
            // swamps the measurement; take the best of more repetitions
            // there (large rows amortize the noise on their own). The two
            // delta modes are interleaved rep by rep so slow drift of the
            // host (frequency scaling, noisy neighbours) hits both modes
            // alike instead of whichever happens to run second.
            let reps = if prog.len() < 1000 { 7 } else { 3 };
            let mut semi_micros = u128::MAX;
            let mut chunked_micros = u128::MAX;
            let mut semi_run = None;
            let mut chunked_run = None;
            for _ in 0..reps {
                let (c, t) = timed(SaturationMode::SemiNaive, 1);
                semi_micros = semi_micros.min(t);
                semi_run = Some(c);
                let (c, t) = timed(SaturationMode::Chunked, 1);
                chunked_micros = chunked_micros.min(t);
                chunked_run = Some(c);
            }
            let semi = semi_run.expect("reps >= 1");
            let chunked = chunked_run.expect("reps >= 1");

            // Chunked must reproduce the scalar baseline *byte for byte*:
            // exact insertion order, not just the same set.
            let semi_order: Vec<Term> = semi.iter().collect();
            let chunked_order: Vec<Term> = chunked.iter().collect();
            let mut identical = semi_order == chunked_order
                && semi.len() == chunked.len()
                && semi.rounds() == chunked.rounds();
            if let Some((naive, _)) = &naive {
                let mut tn: Vec<Term> = naive.iter().collect();
                let mut ts = semi_order.clone();
                tn.sort();
                ts.sort();
                identical &=
                    tn == ts && naive.len() == semi.len() && naive.rounds() == semi.rounds();
            }
            for e in 1..=prog.len() as secflow::unfold::ExprId {
                identical &= semi.ti_witness(e) == chunked.ti_witness(e)
                    && semi.pi_witness(e) == chunked.pi_witness(e);
                if let Some((naive, _)) = &naive {
                    identical &= naive.ti_witness(e) == semi.ti_witness(e)
                        && naive.pi_witness(e) == semi.pi_witness(e);
                }
            }

            let stats_for = |mode| {
                let (c, stats) = Closure::compute_with_stats_saturation(
                    &prog,
                    &rules,
                    DEFAULT_TERM_LIMIT,
                    ProofMode::Off,
                    mode,
                );
                c.expect("stats closure");
                stats
            };
            let naive_stats = naive.as_ref().map(|_| stats_for(SaturationMode::Naive));
            let semi_stats = stats_for(SaturationMode::SemiNaive);
            let chunked_stats = stats_for(SaturationMode::Chunked);
            let mut rule_rows: Vec<SaturationRuleRow> = semi_stats
                .rule_attempts
                .iter()
                .map(|&(label, semi_attempts)| SaturationRuleRow {
                    label,
                    naive_attempts: naive_stats.as_ref().map(|n| n.rule_attempts_of(label)),
                    semi_attempts,
                    chunked_attempts: chunked_stats.rule_attempts_of(label),
                    new_terms: semi_stats.firings_of(label),
                })
                .collect();
            rule_rows.sort_by_key(|r| std::cmp::Reverse(r.semi_attempts));
            for r in &rule_rows {
                identical &= chunked_stats.firings_of(r.label) == r.new_terms;
                if let Some(n) = &naive_stats {
                    identical &= n.firings_of(r.label) == r.new_terms;
                }
            }

            rows.push(SaturationRow {
                family,
                param,
                nodes: prog.len(),
                terms: semi.len(),
                naive_micros: naive.as_ref().map(|(_, us)| *us),
                semi_micros,
                chunked_micros,
                naive_derives: naive_stats.as_ref().map(|n| n.derive_calls),
                semi_derives: semi_stats.derive_calls,
                chunked_derives: chunked_stats.derive_calls,
                identical,
                rules: rule_rows,
            });
        }
    }
    rows
}

/// One proof-checker overhead measurement: analysis (proof-carrying
/// saturation) against the independent certification pass over the same
/// closure.
pub struct CertifyRow {
    /// Schema family.
    pub family: &'static str,
    /// Size parameter.
    pub param: usize,
    /// Unfolded program size (numbered occurrences).
    pub nodes: usize,
    /// Closure size = derivations certified.
    pub terms: usize,
    /// Terms justified by axiom schemas.
    pub axioms: usize,
    /// Proof-carrying saturation time, microseconds.
    pub analyze_micros: u128,
    /// Certification time over the recorded proofs, microseconds.
    pub certify_micros: u128,
    /// Whether the certificate covered every term of the closure.
    pub complete: bool,
}

impl CertifyRow {
    /// Certification time as a fraction of analysis time.
    pub fn overhead(&self) -> f64 {
        if self.analyze_micros == 0 {
            f64::INFINITY
        } else {
            self.certify_micros as f64 / self.analyze_micros as f64
        }
    }
}

/// `certify` — the cost of re-validating every recorded derivation with
/// the independent proof checker, against the cost of deriving them in the
/// first place, across the four scaling families. The analysis runs are
/// proof-carrying (`ProofMode::Full`) semi-naive saturation — the exact
/// configuration `secflow check --certify` uses.
///
/// `smoke` shrinks the sweep to CI-sized instances.
pub fn certify_overhead(smoke: bool) -> Vec<CertifyRow> {
    type Gen = fn(usize) -> ScaleCase;
    let families: [(&'static str, Gen, &'static [usize]); 4] = if smoke {
        [
            ("call_chain", call_chain, &[8]),
            ("wide_grants", wide_grants, &[8]),
            ("deep_expr", deep_expr, &[3]),
            ("attr_fanout", attr_fanout, &[8]),
        ]
    } else {
        [
            ("call_chain", call_chain, &[8, 12]),
            ("wide_grants", wide_grants, &[32, 64, 128]),
            ("deep_expr", deep_expr, &[4, 5]),
            ("attr_fanout", attr_fanout, &[8, 16]),
        ]
    };
    let rules = RuleConfig::default();
    let mut rows = Vec::new();
    for (family, gen, params) in families {
        for &param in params {
            let case = gen(param);
            let caps = case.schema.user_str("u").expect("scale user");
            let prog = NProgram::unfold(&case.schema, caps).expect("scale unfolds");

            // Best-of-three on both phases: single-shot micro timings on
            // the smoke sizes are dominated by allocator/cache warm-up,
            // which would make the overhead ratio flake under load.
            let mut analyze_micros = u128::MAX;
            let mut closure = None;
            for _ in 0..3 {
                let start = Instant::now();
                let c = Closure::compute(&prog).expect("proof-carrying closure");
                analyze_micros = analyze_micros.min(start.elapsed().as_micros());
                closure = Some(c);
            }
            let closure = closure.expect("at least one analysis run");

            let mut certify_micros = u128::MAX;
            let mut cert = None;
            for _ in 0..3 {
                let start = Instant::now();
                let c = closure
                    .certify(&prog, &rules)
                    .unwrap_or_else(|e| panic!("{family}({param}): certification failed: {e}"));
                certify_micros = certify_micros.min(start.elapsed().as_micros());
                cert = Some(c);
            }
            let cert = cert.expect("at least one certification run");

            rows.push(CertifyRow {
                family,
                param,
                nodes: prog.len(),
                terms: closure.len(),
                axioms: cert.axioms,
                analyze_micros,
                certify_micros,
                complete: cert.terms_checked == closure.len()
                    && cert.axioms + cert.derived == cert.terms_checked,
            });
        }
    }
    rows
}

/// The `demand` batch measurement: the multi-requirement workload through
/// the batch driver, full saturation vs. demand-driven.
pub struct DemandBatchRow {
    /// Users (= groups) in the workload.
    pub users: usize,
    /// Requirements checked.
    pub requirements: usize,
    /// Terms derived across all groups, full saturation.
    pub full_terms: u64,
    /// Terms derived across all groups, demand-driven.
    pub demand_terms: u64,
    /// Full-saturation batch wall time, microseconds.
    pub full_micros: u128,
    /// Demand-driven batch wall time, microseconds.
    pub demand_micros: u128,
    /// Whether both modes produced identical verdict vectors.
    pub identical: bool,
}

impl DemandBatchRow {
    /// Full time over demand time.
    pub fn speedup(&self) -> f64 {
        if self.demand_micros == 0 {
            f64::INFINITY
        } else {
            self.full_micros as f64 / self.demand_micros as f64
        }
    }
}

/// `demand` part 2 — the multi-requirement batch workload,
/// `full_saturation` against the default demand engine (serial, so the
/// comparison measures the engines and not the pool). The workload is
/// [`multi_user_deep`]: each user's closure is deep-expression sized, the
/// regime the slice prunes. Term counts come from separate
/// stats-collecting runs so the timed runs stay uninstrumented.
pub fn demand_batch(smoke: bool) -> DemandBatchRow {
    let (users, depth) = if smoke { (4, 2) } else { (8, 4) };
    let case = multi_user_deep(users, depth);
    let config = AnalysisConfig::default();
    let opts_full = BatchOptions {
        full_saturation: true,
        ..BatchOptions::default()
    };
    let opts_demand = BatchOptions::default();

    let start = Instant::now();
    let full = analyze_batch(&case.schema, &case.requirements, &config, &opts_full);
    let full_micros = start.elapsed().as_micros();
    let start = Instant::now();
    let demand = analyze_batch(&case.schema, &case.requirements, &config, &opts_demand);
    let demand_micros = start.elapsed().as_micros();

    let count_terms = |full_saturation: bool| {
        let opts = BatchOptions {
            collect_stats: true,
            full_saturation,
            ..BatchOptions::default()
        };
        analyze_batch(&case.schema, &case.requirements, &config, &opts)
            .groups
            .iter()
            .map(|g| g.stats.closure.total_terms())
            .sum()
    };
    DemandBatchRow {
        users,
        requirements: case.requirements.len(),
        full_terms: count_terms(true),
        demand_terms: count_terms(false),
        full_micros,
        demand_micros,
        identical: full.verdicts == demand.verdicts,
    }
}

/// One `audit` measurement: a full provenance audit (proof-carrying batch
/// analysis, certification, flaw-path walk, JSON report) over one policy.
pub struct AuditRow {
    /// Case label.
    pub name: String,
    /// Requirements audited.
    pub requirements: usize,
    /// Requirements violated.
    pub violated: usize,
    /// Flaw paths enumerated across all witnesses.
    pub paths: usize,
    /// Proof-carrying batch analysis time, microseconds.
    pub analyze_micros: u128,
    /// Certify + walk + render time for the JSON report, microseconds.
    pub render_micros: u128,
    /// Size of the rendered JSON report.
    pub report_bytes: usize,
}

impl AuditRow {
    /// Flaw paths enumerated per second of certify+walk+render time.
    pub fn paths_per_sec(&self) -> f64 {
        if self.render_micros == 0 {
            f64::INFINITY
        } else {
            self.paths as f64 * 1e6 / self.render_micros as f64
        }
    }
}

/// `audit` — the cost of the certified provenance report on the fixture
/// policies and the multi-user scaling families: the proof-carrying batch
/// analysis on one axis, and certification + flaw-path enumeration +
/// JSON rendering on the other. `smoke` shrinks the sweep to CI sizes.
pub fn audit_provenance(smoke: bool) -> Vec<AuditRow> {
    let mut cases: Vec<(String, oodb_lang::Schema)> = vec![
        ("stockbroker".into(), fixtures::stockbroker()),
        ("hospital".into(), fixtures::hospital()),
    ];
    let sizes: &[(usize, usize)] = if smoke { &[(4, 4)] } else { &[(8, 8), (16, 8)] };
    for &(users, width) in sizes {
        let mut case = multi_user(users, width);
        case.schema.requirements = case.requirements.clone();
        cases.push((format!("multi_user_{users}x{width}"), case.schema));
    }
    let mut rows = Vec::new();
    for (name, schema) in cases {
        let opts = secflow_cli::AuditOptions {
            policy: name.clone(),
            format: secflow_cli::AuditFormat::Json,
            severity: None,
            provenance: secflow::ProvenanceOptions::default(),
        };
        // Best-of-three on both phases, matching `certify_overhead`.
        let mut analyze_micros = u128::MAX;
        let mut outcome = None;
        for _ in 0..3 {
            let start = Instant::now();
            let o = secflow_cli::audit_batch(&schema, 1);
            analyze_micros = analyze_micros.min(start.elapsed().as_micros());
            outcome = Some(o);
        }
        let outcome = outcome.expect("at least one analysis run");
        let mut render_micros = u128::MAX;
        let mut rendered = None;
        for _ in 0..3 {
            let start = Instant::now();
            let r = secflow_cli::render_audit(&schema, &outcome, &opts);
            render_micros = render_micros.min(start.elapsed().as_micros());
            rendered = Some(r);
        }
        let (report, _code) = rendered.expect("at least one render run");
        let doc = secflow_obs::Json::parse(&report)
            .unwrap_or_else(|e| panic!("{name}: audit JSON invalid: {e}"));
        let field = |k: &str| {
            doc.get(k)
                .and_then(secflow_obs::Json::as_u64)
                .unwrap_or_else(|| panic!("{name}: audit JSON missing {k}"))
        };
        rows.push(AuditRow {
            requirements: field("requirements") as usize,
            violated: field("violated") as usize,
            paths: doc
                .get("summary")
                .and_then(|s| s.get("paths"))
                .and_then(secflow_obs::Json::as_u64)
                .unwrap_or_else(|| panic!("{name}: audit JSON missing summary.paths"))
                as usize,
            analyze_micros,
            render_micros,
            report_bytes: report.len(),
            name,
        });
    }
    rows
}

// ----------------------------------------------------------- population

/// One Zipf-population streaming throughput measurement: verdicts/sec is
/// the headline metric (the ROADMAP north-star is population-scale
/// serving), with the closure-cache hit rate and the scheduler's steal
/// count recorded alongside.
pub struct PopulationRow {
    /// Users in the population (= groups = verdicts, one requirement each).
    pub users: usize,
    /// Distinct capability fingerprints the Zipf draw collapses onto.
    pub fingerprints: usize,
    /// Users sharing the most popular fingerprint.
    pub peak_group: usize,
    /// Worker threads requested.
    pub jobs: usize,
    /// Wall time for the streamed batch, microseconds.
    pub micros: u128,
    /// Verdicts emitted through the sink.
    pub verdicts: u64,
    /// Verdicts that flagged a flaw.
    pub violated: u64,
    /// Steal operations performed by the work-stealing pool.
    pub steals: u64,
    /// Closure-cache hits over the run.
    pub cache_hits: u64,
    /// Closure-cache misses over the run (= distinct fingerprints seen).
    pub cache_misses: u64,
    /// Closure-cache evictions over the run.
    pub cache_evictions: u64,
}

impl PopulationRow {
    /// Fraction of group analyses served from the closure cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Verdicts delivered per second of wall time.
    pub fn verdicts_per_sec(&self) -> f64 {
        if self.micros == 0 {
            f64::INFINITY
        } else {
            self.verdicts as f64 * 1e6 / self.micros as f64
        }
    }
}

/// Fixed-partition vs work-stealing on the clustered-giants skew workload:
/// the heavy groups sit contiguously in worker 0's static chunk, so the
/// fixed partition runs them back to back while its neighbours idle.
///
/// Each schedule is scored by its *critical path*: every group is priced
/// at its measured serial cost, each worker's attributed work is summed
/// over the groups it actually executed (the pool tags every streamed
/// record with its worker index), and the critical path is the loaded-est
/// worker's total. That is exactly the batch's wall time on a machine with
/// one core per worker — and unlike raw wall time it stays meaningful on a
/// core-starved CI container, where the OS timeshares all eight workers
/// onto the same core and wall time degenerates to total work for *any*
/// schedule. Raw walls are recorded alongside for reference.
pub struct SkewRow {
    /// Groups in the workload.
    pub users: usize,
    /// Heavy groups, clustered at the front of group order.
    pub giants: usize,
    /// Probe width of each giant group (closure cost grows ~width²).
    pub giant_width: usize,
    /// Probe width of every other group.
    pub tiny_width: usize,
    /// Worker threads requested.
    pub jobs: usize,
    /// Critical path under static contiguous partitioning, microseconds:
    /// max over workers of the summed serial cost of the groups it ran.
    pub fixed_critical_micros: u128,
    /// Critical path under the work-stealing scheduler, microseconds.
    pub stealing_critical_micros: u128,
    /// Measured wall time of the fixed run, microseconds (degenerate on a
    /// single-core host — see the type docs).
    pub fixed_wall_micros: u128,
    /// Measured wall time of the work-stealing run, microseconds.
    pub stealing_wall_micros: u128,
    /// Steals performed by the best work-stealing run.
    pub steals: u64,
}

impl SkewRow {
    /// Work-stealing speedup over the fixed partition, by critical path.
    pub fn speedup(&self) -> f64 {
        if self.stealing_critical_micros == 0 {
            f64::INFINITY
        } else {
            self.fixed_critical_micros as f64 / self.stealing_critical_micros as f64
        }
    }
}

/// `population` part 1 — stream a Zipf-distributed population through
/// `analyze_batch_streaming` with a fresh sharded cache and count verdicts
/// without buffering anything per-group. `smoke` is the CI size (10^4
/// users); the full run peaks at a million users over 4000 fingerprints.
pub fn population_throughput(smoke: bool) -> Vec<PopulationRow> {
    // Fingerprint counts leave the >99% hit-rate bar attainable: misses
    // are at least one per distinct fingerprint, so users/fingerprints
    // must exceed 100 with margin for racy duplicate misses under the
    // parallel pool.
    let sizes: &[(usize, usize)] = if smoke {
        &[(10_000, 100)]
    } else {
        &[(100_000, 500), (1_000_000, 4_000)]
    };
    let config = AnalysisConfig::default();
    let mut rows = Vec::new();
    for &(users, fingerprints) in sizes {
        let case = zipf_population(users, fingerprints, 0xF1A7);
        // Popularity of the hottest fingerprint, from the per-user
        // requirement goals (each names its profile's probed attribute).
        let mut popularity: HashMap<String, usize> = HashMap::new();
        for r in &case.requirements {
            *popularity.entry(r.target.to_string()).or_default() += 1;
        }
        let peak_group = popularity.values().copied().max().unwrap_or(0);

        /// Counts verdicts as they stream past — the population run keeps
        /// nothing per-group, which is what lets memory stay flat.
        struct CountingSink {
            verdicts: AtomicU64,
            violated: AtomicU64,
        }
        impl AnalysisSink for CountingSink {
            fn emit(&self, record: GroupRecord) {
                for (_, verdict) in &record.verdicts {
                    let v = verdict.as_ref().expect("population verdict");
                    self.verdicts.fetch_add(1, Ordering::Relaxed);
                    if v.is_violated() {
                        self.violated.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        let jobs = 8usize;
        let opts = BatchOptions {
            jobs,
            ..BatchOptions::default()
        };
        // Fresh cache per row: the hit rate must reflect this population
        // alone. Two entries of headroom per fingerprint, 16 stripes.
        let cache = ClosureCache::with_shards(2 * fingerprints, 16);
        let sink = CountingSink {
            verdicts: AtomicU64::new(0),
            violated: AtomicU64::new(0),
        };
        let start = Instant::now();
        let summary = analyze_batch_streaming(
            &case.schema,
            &case.requirements,
            &config,
            &opts,
            Some(&cache),
            &sink,
        );
        let micros = start.elapsed().as_micros();
        let stats = cache.stats();
        let verdicts = sink.verdicts.load(Ordering::Relaxed);
        assert_eq!(verdicts as usize, users, "every user gets one verdict");
        assert_eq!(summary.groups, users, "one group per user");
        rows.push(PopulationRow {
            users,
            fingerprints,
            peak_group,
            jobs,
            micros,
            verdicts,
            violated: sink.violated.load(Ordering::Relaxed),
            steals: summary.steals,
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            cache_evictions: stats.evictions,
        });
    }
    rows
}

/// `population` part 2 — the scheduler comparison the work-stealing pool
/// exists for: a cluster of giant groups seeded into one worker's static
/// chunk, duelled best-of-three under both schedules at `--jobs 8`
/// (uncached, so the cost model is real closure work). Each run streams
/// through [`analyze_batch_streaming`] with a sink that records which
/// worker executed each group; the per-schedule score is the critical path
/// over that *actual* assignment, priced by per-group serial cost measured
/// up front (see [`SkewRow`] for why critical path, not raw wall). Verdict
/// agreement across schedules is asserted on every run.
pub fn skew_schedule_comparison(smoke: bool) -> SkewRow {
    // `giants == users / jobs` puts the whole cluster in worker 0's chunk.
    let (users, giants, giant_width, tiny_width) = if smoke {
        (64, 8, 48, 6)
    } else {
        (128, 16, 96, 8)
    };
    let case = clustered_giants(users, giants, giant_width, tiny_width);
    let config = AnalysisConfig::default();
    let jobs = 8usize;

    // Price each group by its serial analysis cost (best of two). Every
    // user holds exactly one requirement, so group i is requirement i.
    let cost: Vec<u128> = case
        .requirements
        .iter()
        .map(|r| {
            let mut best = u128::MAX;
            for _ in 0..2 {
                let start = Instant::now();
                analyze(&case.schema, r).expect("skew verdict");
                best = best.min(start.elapsed().as_micros());
            }
            best
        })
        .collect();

    /// One group's assignment trace: the worker that executed it and its
    /// violation flags.
    type Assignment = (usize, Vec<bool>);

    /// Records, per group, the worker that executed it and its violation
    /// flags — the assignment trace the critical path is computed from.
    struct AssignSink {
        slots: Mutex<Vec<Option<Assignment>>>,
    }
    impl AnalysisSink for AssignSink {
        fn emit(&self, record: GroupRecord) {
            let flags = record
                .verdicts
                .iter()
                .map(|(_, v)| v.as_ref().expect("skew verdict").is_violated())
                .collect();
            let mut slots = self.slots.lock().expect("sink lock");
            let slot = &mut slots[record.group_index];
            assert!(slot.is_none(), "group {} emitted twice", record.group_index);
            *slot = Some((record.worker, flags));
        }
    }

    // Best-of-three per schedule, scored by critical path.
    let measure = |schedule: BatchSchedule| {
        let opts = BatchOptions {
            jobs,
            schedule,
            ..BatchOptions::default()
        };
        let mut best_wall = u128::MAX;
        let mut best_critical = u128::MAX;
        let mut best_steals = 0u64;
        let mut flags: Option<Vec<Vec<bool>>> = None;
        for _ in 0..3 {
            let sink = AssignSink {
                slots: Mutex::new((0..users).map(|_| None).collect()),
            };
            let start = Instant::now();
            let summary = analyze_batch_streaming(
                &case.schema,
                &case.requirements,
                &config,
                &opts,
                None,
                &sink,
            );
            let wall = start.elapsed().as_micros();
            let slots = sink.slots.into_inner().expect("sink lock");
            let mut per_worker = vec![0u128; jobs];
            let mut run_flags = Vec::with_capacity(users);
            for (gi, slot) in slots.into_iter().enumerate() {
                let (worker, group_flags) = slot.expect("every group emitted");
                per_worker[worker] += cost[gi];
                run_flags.push(group_flags);
            }
            let critical = per_worker.iter().copied().max().unwrap_or(0);
            best_wall = best_wall.min(wall);
            if critical < best_critical {
                best_critical = critical;
                best_steals = summary.steals;
            }
            if let Some(prev) = &flags {
                assert_eq!(prev, &run_flags, "verdicts drifted across runs");
            }
            flags = Some(run_flags);
        }
        (
            best_wall,
            best_critical,
            best_steals,
            flags.expect("3 runs"),
        )
    };

    let (fixed_wall, fixed_critical, fixed_steals, fixed_flags) = measure(BatchSchedule::Fixed);
    let (stealing_wall, stealing_critical, steals, stealing_flags) =
        measure(BatchSchedule::WorkStealing);
    assert_eq!(
        fixed_flags, stealing_flags,
        "schedules disagree on the skewed workload"
    );
    assert_eq!(fixed_steals, 0, "the fixed partition never steals");
    SkewRow {
        users,
        giants,
        giant_width,
        tiny_width,
        jobs,
        fixed_critical_micros: fixed_critical,
        stealing_critical_micros: stealing_critical,
        fixed_wall_micros: fixed_wall,
        stealing_wall_micros: stealing_wall,
        steals,
    }
}

// --------------------------------------------------- incremental edits

/// One edit-trace measurement: a grant/revoke script replayed against a
/// maintained incremental closure ([`secflow::IncrementalUser`]) vs a
/// from-scratch recompute after every edit, in one saturation mode.
pub struct IncrementalRow {
    /// Family label: `sparse` ([`edit_trace`]-only probes — absorb-bound,
    /// the honest worst case) or `dense` (an always-granted
    /// equality-clique core under the probes — the small-edit/large-closure
    /// regime the maintenance path is built for).
    pub family: &'static str,
    /// Probe-pool width of the `edit_trace` family.
    pub width: usize,
    /// Dense-core size (`0` for the sparse family).
    pub core: usize,
    /// Edits in the script.
    pub edits: usize,
    /// Saturation mode label (`semi_naive` / `chunked`).
    pub mode: &'static str,
    /// Unfolded program size (numbered occurrences) before the first edit.
    pub nodes: usize,
    /// Closure size (terms) before the first edit.
    pub terms: usize,
    /// Total incremental maintenance time across the script, microseconds.
    pub incremental_micros: u128,
    /// Total re-unfold + full-recompute time across the script,
    /// microseconds (proof-carrying, like the maintained closure).
    pub scratch_micros: u128,
    /// Did every edit leave the maintained closure identical (as a sorted
    /// term set) to the from-scratch recompute?
    pub identical: bool,
    /// Terms removed by deletion cascades, summed over the script.
    pub deleted: u64,
    /// Terms re-derived by warm restarts, summed over the script.
    pub rederived: u64,
    /// Terms carried over by absorption, summed over the script.
    pub survivors: u64,
}

impl IncrementalRow {
    /// From-scratch time over incremental time — the headline speedup of
    /// maintenance over recompute.
    pub fn speedup(&self) -> f64 {
        self.scratch_micros as f64 / self.incremental_micros.max(1) as f64
    }

    /// Edits maintained per second.
    pub fn edits_per_sec(&self) -> f64 {
        self.edits as f64 * 1e6 / self.incremental_micros.max(1) as f64
    }
}

/// `incremental` — time incremental grant/revoke maintenance against
/// from-scratch recomputation on the edit-trace families: scripts of
/// single-capability toggles against a standing closure. The `sparse`
/// family (probes only) is the absorb-bound floor — scratch saturation
/// there is mostly successful derives, which absorption merely replays, so
/// maintenance roughly breaks even. The `dense` family parks an
/// equality-clique core ([`secflow_workloads::scale::edit_trace_dense`])
/// under the probes: from-scratch saturation re-pays the `O(core²)`
/// equality/transfer attempt storm on every edit, the maintenance path
/// absorbs those terms without re-attempting a single rule, and the
/// speedup grows with the core. The win is mode-dependent: the chunked
/// engine's derive prefilters already skip most of the attempt storm from
/// scratch, so its recompute baseline is several times cheaper than the
/// scalar one and the maintenance ratio settles lower — both modes are
/// timed so the table shows that honestly. After every edit the maintained closure is
/// checked identical — as a sorted term set — to a fresh proof-carrying
/// saturation of the edited capability list, so the timing rows can never
/// drift from a correctness bug silently.
///
/// `smoke` shrinks both families to CI-sized instances.
pub fn incremental_maintenance(smoke: bool) -> Vec<IncrementalRow> {
    use secflow::incremental::IncrementalUser;
    use secflow_workloads::scale::{edit_trace_dense, EditOp};

    // (family, probe width, dense core, edits). The sparse rows measure the
    // absorb-bound floor; the dense rows are the headline regime, where
    // from-scratch saturation re-pays the equality-clique attempt storm on
    // every edit and maintenance does not.
    let fams: &[(&'static str, usize, usize, usize)] = if smoke {
        &[("sparse", 8, 0, 6), ("dense", 4, 6, 6)]
    } else {
        &[
            ("sparse", 64, 0, 12),
            ("dense", 8, 12, 12),
            ("dense", 8, 16, 12),
            ("dense", 8, 20, 12),
        ]
    };
    let mut rows = Vec::new();
    for &(family, width, core, edits) in fams {
        for (mode, sat) in [
            ("semi_naive", SaturationMode::SemiNaive),
            ("chunked", SaturationMode::Chunked),
        ] {
            let case = edit_trace_dense(width, core, edits, 0xED17 + width as u64);
            let config = AnalysisConfig {
                saturation: sat,
                ..AnalysisConfig::default()
            };
            let mut inc = IncrementalUser::new(&case.schema, &case.requirement.user, &config)
                .expect("edit_trace materializes");
            let nodes = inc.program().len();
            let terms = inc.closure().len();
            let mut caps = inc.caps().clone();

            let mut incremental_micros = 0u128;
            let mut scratch_micros = 0u128;
            let mut identical = true;
            let (mut deleted, mut rederived, mut survivors) = (0u64, 0u64, 0u64);
            for op in &case.edits {
                let start = Instant::now();
                let outcome = match op {
                    EditOp::Grant(f) => inc.grant(&case.schema, f),
                    EditOp::Revoke(f) => inc.revoke(&case.schema, f),
                }
                .expect("edit_trace edits apply");
                incremental_micros += start.elapsed().as_micros();
                deleted += outcome.deleted as u64;
                rederived += outcome.rederived as u64;
                survivors += outcome.survivors as u64;

                // The from-scratch contender re-does what maintenance
                // avoided: unfold the edited list and saturate with proofs.
                match op {
                    EditOp::Grant(f) => caps.grant(f.clone()),
                    EditOp::Revoke(f) => caps.revoke(f),
                };
                let start = Instant::now();
                let prog = NProgram::unfold(&case.schema, &caps).expect("edit_trace unfolds");
                let scratch = Closure::compute_with_saturation(
                    &prog,
                    &config.rules,
                    config.term_limit,
                    ProofMode::Full,
                    sat,
                )
                .expect("edit_trace saturates");
                scratch_micros += start.elapsed().as_micros();

                let mut a: Vec<Term> = inc.closure().iter().collect();
                let mut b: Vec<Term> = scratch.iter().collect();
                a.sort_unstable();
                b.sort_unstable();
                identical &= a == b;
            }
            rows.push(IncrementalRow {
                family,
                width,
                core,
                edits,
                mode,
                nodes,
                terms,
                incremental_micros,
                scratch_micros,
                identical,
                deleted,
                rederived,
                survivors,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_smoke_stays_identical_to_scratch() {
        for r in incremental_maintenance(true) {
            assert!(
                r.identical,
                "edit_trace({}) {}: maintained closure diverged from scratch",
                r.width, r.mode
            );
            assert!(r.terms > 0, "edit_trace({}): empty closure", r.width);
            assert!(
                r.deleted + r.rederived > 0,
                "edit_trace({}) {}: the script never exercised retraction or re-derivation",
                r.width,
                r.mode
            );
            assert!(
                r.survivors > 0,
                "edit_trace({}) {}: edits never carried terms over",
                r.width,
                r.mode
            );
        }
    }

    #[test]
    fn population_smoke_hits_cache_and_steals() {
        let rows = population_throughput(true);
        for r in &rows {
            assert!(
                r.hit_rate() > 0.95,
                "{} users / {} fingerprints: hit rate {:.4} too low",
                r.users,
                r.fingerprints,
                r.hit_rate()
            );
            assert!(
                r.violated > 0 && r.violated < r.verdicts,
                "Zipf population must mix verdicts ({} / {} violated)",
                r.violated,
                r.verdicts
            );
        }
        // Uniform Zipf groups can drain without ever opening a steal
        // window, so the non-zero-steal guarantee comes from the skewed
        // batch: the giant cluster pins worker 0 while the other seven
        // drain their tiny chunks, and the pool must steal the pinned
        // worker's queued giants.
        let skew = skew_schedule_comparison(true);
        assert!(skew.steals > 0, "work-stealing idle on the skewed batch");
        assert!(
            skew.stealing_critical_micros <= skew.fixed_critical_micros,
            "stealing must not lengthen the critical path (fixed {} us, stealing {} us)",
            skew.fixed_critical_micros,
            skew.stealing_critical_micros
        );
        let total: u64 = rows.iter().map(|r| r.steals).sum::<u64>() + skew.steals;
        assert!(total > 0, "population smoke never engaged the stealer");
    }

    #[test]
    fn audit_smoke_reports_are_valid_and_productive() {
        for r in audit_provenance(true) {
            assert!(r.requirements > 0, "{}: nothing audited", r.name);
            assert!(
                r.violated == 0 || r.paths > 0,
                "{}: violations without provenance",
                r.name
            );
            assert!(r.report_bytes > 0, "{}: empty report", r.name);
        }
    }

    #[test]
    fn demand_smoke_verdicts_identical_and_sliced() {
        for r in demand_vs_full(true) {
            assert!(r.identical, "{} {} verdicts diverged", r.family, r.param);
            assert!(
                r.demand_terms > 0,
                "{} {} empty demand run",
                r.family,
                r.param
            );
            assert!(
                r.demand_terms <= r.full_terms,
                "{} {}: demand derived more than full",
                r.family,
                r.param
            );
        }
        let b = demand_batch(true);
        assert!(b.identical, "batch verdicts diverged");
        assert!(b.demand_terms <= b.full_terms);
    }

    #[test]
    fn saturation_smoke_closures_identical_and_attempts_shrink() {
        for r in saturation_modes(true) {
            assert!(r.identical, "{} {} diverged", r.family, r.param);
            assert!(r.terms > 0, "{} {} empty closure", r.family, r.param);
            let naive_derives = r.naive_derives.expect("smoke sizes run naive");
            assert!(
                r.semi_derives <= naive_derives,
                "{} {}: semi-naive attempted more",
                r.family,
                r.param
            );
            assert!(
                r.chunked_derives <= r.semi_derives,
                "{} {}: chunked attempted more than the scalar baseline",
                r.family,
                r.param
            );
            let total: u64 = r.rules.iter().map(|x| x.semi_attempts).sum();
            assert_eq!(total, r.semi_derives, "per-rule rows partition attempts");
            for rule in &r.rules {
                let naive_attempts = rule.naive_attempts.expect("smoke sizes run naive");
                assert!(
                    rule.semi_attempts <= naive_attempts,
                    "{} {} {}: attempts grew",
                    r.family,
                    r.param,
                    rule.label
                );
                assert!(
                    rule.chunked_attempts <= rule.semi_attempts,
                    "{} {} {}: chunked attempts grew past semi-naive",
                    r.family,
                    r.param,
                    rule.label
                );
                assert!(rule.new_terms <= rule.semi_attempts);
            }
        }
    }

    #[test]
    fn certify_smoke_validates_every_closure_within_budget() {
        for r in certify_overhead(true) {
            assert!(
                r.complete,
                "{} {}: certificate incomplete",
                r.family, r.param
            );
            assert!(r.terms > 0, "{} {} empty closure", r.family, r.param);
            assert!(r.axioms > 0, "{} {}: no axioms?", r.family, r.param);
            // The release harness enforces the acceptance bound of 2×; the
            // unoptimised test profile skews against the checker's
            // index-heavy inner loop, so allow 3× here, with a floor so
            // millisecond-scale timer noise cannot flake the assertion.
            assert!(
                r.certify_micros <= 3 * r.analyze_micros || r.certify_micros < 5_000,
                "{} {}: certify {}us > 3x analyze {}us",
                r.family,
                r.param,
                r.certify_micros,
                r.analyze_micros
            );
        }
    }

    #[test]
    fn e1_reproduces_every_judgment() {
        let f = e1_figure1();
        for (j, ok) in &f.judgments {
            assert!(ok, "judgment not derived: {j}");
        }
        assert!(f.derivation.lines().count() >= 8);
        assert_eq!(f.unfolded.len(), 2);
    }

    #[test]
    fn e2_matches_paper_expectations() {
        for row in e2_running_examples() {
            assert_eq!(
                row.got_flaw, row.expected_flaw,
                "{}: {}",
                row.scenario, row.requirement
            );
        }
    }

    #[test]
    fn e3_small_corpus_is_sound() {
        let report = e3_e4_differential(10);
        assert!(report.is_sound(), "soundness violations: {report}");
        assert!(report.total() > 0);
    }

    #[test]
    fn e5_rows_monotone_nodes() {
        let rows = e5_scaling_sized(&[1, 2, 4], &[1, 2, 4], &[1, 2, 3], &[1, 2, 4]);
        assert!(!rows.is_empty());
        // Within each family, nodes grow with the parameter.
        for f in ["call_chain", "wide_grants", "deep_expr", "attr_fanout"] {
            let fam: Vec<&E5Row> = rows.iter().filter(|r| r.family == f).collect();
            for w in fam.windows(2) {
                assert!(w[0].nodes <= w[1].nodes, "{f} nodes not monotone");
            }
        }
    }

    #[test]
    fn e6_counts_rows() {
        let rows = e6_engine(&[10, 100]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].rows <= 10);
        assert!(rows[1].rows <= 100);
    }

    #[test]
    fn e8_containment_chain_holds() {
        let r = e8_containment(15);
        assert_eq!(
            r.ideal_not_finite, 0,
            "the idealized engine must not out-deduce the finite one"
        );
        assert_eq!(r.ideal_not_static, 0, "Theorem 1 over the E8 corpus");
        assert!(r.static_flags >= r.ideal_flags);
    }

    #[test]
    fn fastpath_smoke_closures_identical() {
        for r in closure_fastpath(true) {
            assert!(r.identical, "{} {} diverged", r.family, r.param);
            assert!(r.terms > 0, "{} {} empty closure", r.family, r.param);
        }
    }

    #[test]
    fn batch_throughput_smoke_covers_serial_and_parallel() {
        let rows = batch_throughput(true);
        assert!(rows.len() >= 2, "need jobs=1 and a parallel point");
        assert_eq!(rows[0].jobs, 1);
        for r in &rows {
            assert_eq!(r.requirements, r.users);
        }
    }

    #[test]
    fn e7_full_rules_detect_everything() {
        let rows = e7_ablation();
        let full = &rows[0];
        assert_eq!(full.detected, full.total);
        assert_eq!(full.false_alarms, 0);
        // Each non-guard ablation loses at least one detection.
        for row in &rows[1..] {
            if row.disabled != "feedback_guard" {
                assert!(
                    row.detected < row.total,
                    "disabling {} lost nothing — not load-bearing?",
                    row.disabled
                );
            }
        }
    }
}
