//! The security-requirement language (§3.1).
//!
//! ```text
//! req   ::= (u, f(x1 : clist, …, xn : clist) : clist)
//! clist ::= cap : … : cap          (possibly empty)
//! cap   ::= ti | pi | ta | pa
//! ```
//!
//! *"A requirement `(u, f(x1:c…,…):c…)` means that the user `u` should not be
//! able to invoke the function `f` in a context where he can simultaneously
//! achieve all specified capabilities on each argument and on the returned
//! value."* `f` may be an access function or one of the special functions
//! `r_att` / `w_att` / `new C`.

use oodb_model::{FnRef, UserName, VarName};
use std::fmt;

/// One of the four capabilities of §3.1.
///
/// * **Total inferability** (`ti`): the user can infer the exact value.
/// * **Partial inferability** (`pi`): the user can infer a proper subset of
///   the domain the value must lie in — "at least one value that an
///   expression can NOT be".
/// * **Total alterability** (`ta`): the user can steer the value to *any*
///   value of its type.
/// * **Partial alterability** (`pa`): the user can steer the value within
///   some set of at least two values.
///
/// Controllability = inferability + alterability (§3.1 decomposes it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cap {
    /// Total inferability.
    Ti,
    /// Partial inferability.
    Pi,
    /// Total alterability.
    Ta,
    /// Partial alterability.
    Pa,
}

impl Cap {
    /// Surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Cap::Ti => "ti",
            Cap::Pi => "pi",
            Cap::Ta => "ta",
            Cap::Pa => "pa",
        }
    }

    /// The capability implied by this one (`ti ⇒ pi`, `ta ⇒ pa`), if any.
    pub fn weakened(self) -> Option<Cap> {
        match self {
            Cap::Ti => Some(Cap::Pi),
            Cap::Ta => Some(Cap::Pa),
            Cap::Pi | Cap::Pa => None,
        }
    }

    /// Is this an inferability capability?
    pub fn is_inferability(self) -> bool {
        matches!(self, Cap::Ti | Cap::Pi)
    }

    /// All four capabilities.
    pub const ALL: [Cap; 4] = [Cap::Ti, Cap::Pi, Cap::Ta, Cap::Pa];
}

impl fmt::Display for Cap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A parsed security requirement.
///
/// `arg_caps[i]` holds the capability list attached to the i-th argument
/// position; `ret_caps` the list attached to the returned value. Positions
/// without capabilities carry empty vectors. `arg_names` records the bound
/// variable names purely for display (the paper writes `(u, r_salary(x):ti)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Requirement {
    /// The constrained user.
    pub user: UserName,
    /// The function whose invocation context is constrained.
    pub target: FnRef,
    /// Display names for the argument positions.
    pub arg_names: Vec<VarName>,
    /// Capabilities required (by the attacker) on each argument position.
    pub arg_caps: Vec<Vec<Cap>>,
    /// Capabilities required on the returned value.
    pub ret_caps: Vec<Cap>,
}

impl Requirement {
    /// A requirement with capabilities only on the returned value, e.g. the
    /// paper's `(u, r_salary(x) : ti)`.
    pub fn on_return(
        user: impl Into<UserName>,
        target: FnRef,
        arity: usize,
        caps: Vec<Cap>,
    ) -> Requirement {
        Requirement {
            user: user.into(),
            target,
            arg_names: (0..arity)
                .map(|i| VarName::new(format!("x{}", i + 1)))
                .collect(),
            arg_caps: vec![Vec::new(); arity],
            ret_caps: caps,
        }
    }

    /// A requirement with capabilities on a single argument position, e.g.
    /// the paper's `(u, w_salary(x, v:ta))`.
    pub fn on_arg(
        user: impl Into<UserName>,
        target: FnRef,
        arity: usize,
        position: usize,
        caps: Vec<Cap>,
    ) -> Requirement {
        let mut arg_caps = vec![Vec::new(); arity];
        arg_caps[position] = caps;
        Requirement {
            user: user.into(),
            target,
            arg_names: (0..arity)
                .map(|i| VarName::new(format!("x{}", i + 1)))
                .collect(),
            arg_caps,
            ret_caps: Vec::new(),
        }
    }

    /// Total number of capabilities mentioned. A requirement with zero
    /// capabilities is vacuous (trivially violated whenever the function is
    /// reachable); the type checker rejects it.
    pub fn cap_count(&self) -> usize {
        self.arg_caps.iter().map(Vec::len).sum::<usize>() + self.ret_caps.len()
    }

    /// Arity implied by the requirement's argument list.
    pub fn arity(&self) -> usize {
        self.arg_caps.len()
    }
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}(", self.user, self.target)?;
        for i in 0..self.arg_caps.len() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let name = self
                .arg_names
                .get(i)
                .cloned()
                .unwrap_or_else(|| VarName::new(format!("x{}", i + 1)));
            write!(f, "{name}")?;
            for c in &self.arg_caps[i] {
                write!(f, ":{c}")?;
            }
        }
        write!(f, ")")?;
        for c in &self.ret_caps {
            write!(f, ":{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_lattice() {
        assert_eq!(Cap::Ti.weakened(), Some(Cap::Pi));
        assert_eq!(Cap::Ta.weakened(), Some(Cap::Pa));
        assert_eq!(Cap::Pi.weakened(), None);
        assert!(Cap::Ti.is_inferability());
        assert!(!Cap::Pa.is_inferability());
    }

    #[test]
    fn display_paper_style() {
        let r = Requirement::on_return("u", FnRef::read("salary"), 1, vec![Cap::Ti]);
        assert_eq!(r.to_string(), "(u, r_salary(x1):ti)");

        let r = Requirement::on_arg("u", FnRef::write("salary"), 2, 1, vec![Cap::Ta]);
        assert_eq!(r.to_string(), "(u, w_salary(x1, x2:ta))");
    }

    #[test]
    fn cap_count() {
        let mut r = Requirement::on_return("u", FnRef::access("f"), 2, vec![Cap::Ti, Cap::Pa]);
        r.arg_caps[0] = vec![Cap::Pi];
        assert_eq!(r.cap_count(), 3);
        assert_eq!(r.arity(), 2);
    }
}
