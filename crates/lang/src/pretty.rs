//! Precedence-aware pretty-printer.
//!
//! `parse_expr(pretty(e)) == e` is property-tested in the crate's tests;
//! the printer emits parentheses only where the grammar requires them.

use crate::ast::{AccessFnDef, BasicOp, Expr, Schema};
use std::fmt;

/// Binding strength of an expression for parenthesisation.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Basic(op, _) => match op {
            BasicOp::Or => 1,
            BasicOp::And => 2,
            BasicOp::Not => 3,
            BasicOp::Ge
            | BasicOp::Gt
            | BasicOp::Le
            | BasicOp::Lt
            | BasicOp::EqOp
            | BasicOp::NeOp => 4,
            BasicOp::Add | BasicOp::Sub | BasicOp::Concat => 5,
            BasicOp::Mul | BasicOp::Div | BasicOp::Mod => 6,
            BasicOp::Neg => 7,
        },
        // `let … in … end` has explicit delimiters but its body extends as
        // far right as possible; print it parenthesised when nested inside
        // an operator to stay unambiguous.
        Expr::Let { .. } => 0,
        _ => 8,
    }
}

fn write_prec(f: &mut fmt::Formatter<'_>, e: &Expr, min: u8) -> fmt::Result {
    if prec(e) < min {
        write!(f, "(")?;
        write_expr(f, e)?;
        write!(f, ")")
    } else {
        write_expr(f, e)
    }
}

fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
    match e {
        Expr::Const(l) => write!(f, "{l}"),
        Expr::Var(v) => write!(f, "{v}"),
        Expr::Basic(op, args) => match op {
            BasicOp::Not => {
                write!(f, "not ")?;
                write_prec(f, &args[0], 3)
            }
            BasicOp::Neg => {
                write!(f, "-")?;
                write_prec(f, &args[0], 7)
            }
            _ => {
                let p = prec(e);
                // All binary operators are left-associative except the
                // comparisons, which are non-associative: both operands of a
                // comparison must bind strictly tighter.
                let (lmin, rmin) = if p == 4 { (p + 1, p + 1) } else { (p, p + 1) };
                write_prec(f, &args[0], lmin)?;
                write!(f, " {} ", op.symbol())?;
                write_prec(f, &args[1], rmin)
            }
        },
        Expr::Call(name, args) => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, a)?;
            }
            write!(f, ")")
        }
        Expr::Read(attr, recv) => {
            write!(f, "r_{attr}(")?;
            write_expr(f, recv)?;
            write!(f, ")")
        }
        Expr::Write(attr, recv, val) => {
            write!(f, "w_{attr}(")?;
            write_expr(f, recv)?;
            write!(f, ", ")?;
            write_expr(f, val)?;
            write!(f, ")")
        }
        Expr::New(class, args) => {
            write!(f, "new {class}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, a)?;
            }
            write!(f, ")")
        }
        Expr::Let { bindings, body } => {
            write!(f, "let ")?;
            for (i, (name, value)) in bindings.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name} = ")?;
                write_expr(f, value)?;
            }
            write!(f, " in ")?;
            write_expr(f, body)?;
            write!(f, " end")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self)
    }
}

impl fmt::Display for AccessFnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, (p, t)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}: {t}")?;
        }
        write!(f, "): {} {{ {} }}", self.ret, self.body)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in self.classes.iter() {
            writeln!(f, "{class}")?;
        }
        for func in self.functions.values() {
            writeln!(f, "{func}")?;
        }
        for (user, caps) in &self.users {
            writeln!(f, "user {user} {caps}")?;
        }
        for req in &self.requirements {
            writeln!(f, "require {req}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {

    use crate::parse::parse_expr;

    #[track_caller]
    fn round_trip(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("re-parse of `{printed}` failed: {err}"));
        assert_eq!(reparsed, e, "round trip of `{src}` via `{printed}`");
    }

    #[test]
    fn round_trips() {
        round_trip("r_budget(broker) >= 10 * r_salary(broker)");
        round_trip("1 + 2 * 3 - 4 / 5 % 6");
        round_trip("(1 + 2) * 3");
        round_trip("-(x + 1) * -y");
        round_trip("not (a and b) or c");
        round_trip("let x = 1, y = x + 1 in y * y end");
        round_trip("w_salary(b, calcSalary(r_budget(b), r_profit(b)))");
        round_trip("new Point(1 + 2, \"label\")");
        round_trip("(let x = 1 in x end) + 1");
        round_trip("\"a\" ++ \"b\" ++ \"c\"");
    }

    #[test]
    fn minimal_parens() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e = parse_expr("a and (b or c)").unwrap();
        assert_eq!(e.to_string(), "a and (b or c)");
    }

    #[test]
    fn comparison_is_nonassociative() {
        // A comparison under a comparison must print parenthesised.
        use crate::ast::{BasicOp, Expr};
        let e = Expr::bin(
            BasicOp::EqOp,
            Expr::bin(BasicOp::Ge, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(e.to_string(), "(a >= b) == c");
        round_trip(&e.to_string());
    }

    #[test]
    fn fn_def_display() {
        let s = crate::parse::parse_schema(
            "fn checkBudget(broker: Broker): bool { r_budget(broker) >= 10 * r_salary(broker) }",
        )
        .unwrap();
        assert_eq!(
            s.function_str("checkBudget").unwrap().to_string(),
            "fn checkBudget(broker: Broker): bool { r_budget(broker) >= 10 * r_salary(broker) }"
        );
    }
}
